"""The paper's headline scenario, miniature edition.

Drives the bursty Spotify workload (Table 2 op mix, Pareto load) at a
small scale against both λFS and vanilla HopsFS, and prints the
per-second throughput curves, latency, and monetary cost side by
side — a pocket Figure 8(a)/Figure 9.

Run with:  python examples/spotify_burst.py    (~1 minute)
"""

from repro.bench.harness import build_hopsfs, build_lambdafs, drive
from repro.metrics.ascii_plot import sparkline
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment
from repro.workloads import SpotifyConfig, SpotifyWorkload

BASE_THROUGHPUT = 6_000.0   # bursts exceed HopsFS' store-bound ceiling
DURATION_MS = 30_000.0
CLIENTS = 128
SEED = 8                    # schedule: calm, 5x burst, calm


def run(system: str):
    tree = generate_tree(TreeSpec(depth=3, dirs_per_dir=4, files_per_dir=8))
    env = Environment()
    builder = build_lambdafs if system == "λFS" else build_hopsfs
    handle = builder(env, tree, seed=SEED)
    clients = handle.make_clients(CLIENTS)
    if handle.prewarm is not None:
        drive(env, handle.prewarm())
    workload = SpotifyWorkload(
        env,
        SpotifyConfig(base_throughput=BASE_THROUGHPUT,
                      duration_ms=DURATION_MS, seed=SEED),
        tree,
    )
    drive(env, workload.run(clients))
    return handle, workload


def main() -> None:
    results = {}
    for system in ("λFS", "HopsFS"):
        handle, workload = run(system)
        metrics = handle.metrics
        results[system] = {
            "timeline": metrics.throughput_timeline(1_000.0),
            "avg": metrics.average_throughput(),
            "latency": metrics.average_latency(),
            "cost": handle.cost_usd(DURATION_MS),
            "servers": handle.active_servers(),
        }
        print(f"{system}: done ({workload.completed} ops)")

    print(f"\n{'t (s)':>6} {'λFS ops/s':>10} {'HopsFS ops/s':>13}")
    hops = dict(results["HopsFS"]["timeline"])
    for t, ops in results["λFS"]["timeline"][::2]:
        print(f"{int(t / 1000):>6} {ops:>10,.0f} {hops.get(t, 0):>13,.0f}")

    print("\nthroughput over time:")
    print(f"  λFS    {sparkline([ops for _, ops in results['λFS']['timeline']])}")
    print(f"  HopsFS {sparkline([ops for _, ops in results['HopsFS']['timeline']])}")

    print(f"\n{'':14}{'λFS':>12} {'HopsFS':>12}")
    lam, hop = results["λFS"], results["HopsFS"]
    print(f"{'avg ops/s':14}{lam['avg']:>12,.0f} {hop['avg']:>12,.0f}")
    print(f"{'avg latency':14}{lam['latency']:>10.2f}ms {hop['latency']:>10.2f}ms")
    print(f"{'cost':14}{'$' + format(lam['cost'], '.4f'):>12} "
          f"{'$' + format(hop['cost'], '.4f'):>12}")
    print(f"{'servers':14}{lam['servers']:>12} {hop['servers']:>12}")
    print("\nλFS rides the burst by scaling out; HopsFS saturates its "
          "store and falls behind — at a fraction of the cost.")


if __name__ == "__main__":
    main()
