"""Watch λFS scale out and back in as load waxes and wanes (§3.4).

A fleet of readers ramps up, holds, and drains; we sample the number
of live serverless NameNodes once a second and print the load/fleet
curves together — elasticity in action, including scale-in via the
platform's idle reclamation.

Run with:  python examples/elastic_scaling.py
"""

import random

from repro.bench.harness import build_lambdafs, drive
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import AllOf, Environment

PHASES = [
    # (duration_ms, concurrent clients)
    (5_000, 16),
    (5_000, 192),   # the burst
    (5_000, 32),
    (20_000, 4),    # quiet: idle reclamation shrinks the fleet
]


def main() -> None:
    tree = generate_tree(TreeSpec(depth=3, dirs_per_dir=4, files_per_dir=8))
    env = Environment()
    handle = build_lambdafs(
        env, tree,
        faas_overrides={"idle_reclaim_ms": 6_000.0},
        client_overrides={"replacement_probability": 0.02},
    )
    fs = handle.system
    clients = handle.make_clients(max(count for _, count in PHASES))
    drive(env, handle.prewarm())

    samples = []
    in_phase = [0]

    def sampler(env):
        while True:
            samples.append((env.now, in_phase[0], fs.active_namenodes()))
            yield env.timeout(1_000.0)

    env.process(sampler(env))

    def reader(env, client, stop_at):
        rng = random.Random(client.id)
        while env.now < stop_at:
            yield from client.read_file(rng.choice(tree.files))

    def conductor(env):
        for duration, count in PHASES:
            in_phase[0] = count
            stop_at = env.now + duration
            procs = [
                env.process(reader(env, clients[i], stop_at))
                for i in range(count)
            ]
            yield AllOf(env, procs)
        in_phase[0] = 0
        yield env.timeout(10_000)  # let reclamation finish

    drive(env, conductor(env))

    print(f"{'t (s)':>6} {'clients':>8} {'NameNodes':>10}  fleet")
    for t, load, namenodes in samples:
        bar = "#" * namenodes
        print(f"{int(t / 1000):>6} {load:>8} {namenodes:>10}  {bar}")
    print(f"\ncold starts: {fs.platform.cold_starts}, "
          f"reclaimed instances: "
          f"{sum(1 for e in fs.platform.scale_events if e.kind == 'terminate')}")


if __name__ == "__main__":
    main()
