"""Kill NameNodes while clients hammer the system (§5.6).

Every 2 seconds a live serverless NameNode is terminated round-robin
across deployments.  Clients detect dropped TCP connections and
resubmit transparently (other connections → sibling TCP servers →
HTTP fallback), so every operation still completes.

Run with:  python examples/fault_tolerance.py
"""

import random

from repro.bench.harness import build_lambdafs, drive
from repro.faas.chaos import NameNodeKiller
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import AllOf, Environment

CLIENTS = 64
OPS_PER_CLIENT = 600
KILL_INTERVAL_MS = 150.0


def main() -> None:
    tree = generate_tree(TreeSpec(depth=3, dirs_per_dir=4, files_per_dir=8))
    env = Environment()
    handle = build_lambdafs(env, tree)
    fs = handle.system
    clients = handle.make_clients(CLIENTS)
    drive(env, handle.prewarm())

    killer = NameNodeKiller(env, fs.platform, KILL_INTERVAL_MS)
    killer.start()
    outcomes = {"ok": 0, "failed": 0}

    def worker(env, client, index):
        rng = random.Random(index)
        for _ in range(OPS_PER_CLIENT):
            response = yield from client.read_file(rng.choice(tree.files))
            outcomes["ok" if response.ok else "failed"] += 1

    def run_all(env):
        procs = [
            env.process(worker(env, client, i))
            for i, client in enumerate(clients)
        ]
        yield AllOf(env, procs)

    drive(env, run_all(env))
    killer.stop()

    total = outcomes["ok"] + outcomes["failed"]
    retries = sum(c.stats_retries for c in clients)
    print(f"operations completed : {outcomes['ok']}/{total}")
    print(f"NameNodes killed     : {len(killer.kills)}")
    for kill in killer.kills[:8]:
        print(f"   t={kill.time_ms / 1000:6.1f}s  terminated {kill.instance_id}")
    if len(killer.kills) > 8:
        print(f"   ... and {len(killer.kills) - 8} more")
    print(f"client-side retries  : {retries}")
    print(f"avg latency          : {handle.metrics.average_latency():.2f} ms")
    print("\nEvery operation completed despite the failures — clients "
          "recovered via resubmission and fresh instances.")


if __name__ == "__main__":
    main()
