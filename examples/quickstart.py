"""Quickstart: a λFS metadata service in ~40 lines.

Builds the full stack (FaaS platform, NDB-like store, Coordinator,
serverless NameNode deployments), then runs a client through the
basic metadata operations and prints what happened.

Run with:  python examples/quickstart.py
"""

from repro.core import LambdaFS
from repro.sim import Environment


def main() -> None:
    env = Environment()
    fs = LambdaFS(env)
    fs.format()   # install "/" in the persistent store
    fs.start()    # platform maintenance + DataNode block reports

    client = fs.new_client()

    def workload(env):
        response = yield from client.mkdirs("/demo/docs")
        print(f"mkdirs  -> ok={response.ok}")

        response = yield from client.create_file("/demo/docs/paper.pdf")
        print(f"create  -> inode id {response.value.id}")

        response = yield from client.stat("/demo/docs/paper.pdf")
        print(f"stat    -> {response.value.name}, cache hit: {response.cache_hit}")

        response = yield from client.ls("/demo/docs")
        print(f"ls      -> {response.value}")

        response = yield from client.read_file("/demo/docs/paper.pdf")
        print(f"read    -> block locations {response.value['locations']}")

        response = yield from client.mv("/demo/docs/paper.pdf", "/demo/docs/final.pdf")
        print(f"mv      -> now named {response.value.name}")

        response = yield from client.delete("/demo/docs/final.pdf")
        print(f"delete  -> ok={response.ok}")

    done = env.process(workload(env))
    env.run(until=done)

    print(f"\nsimulated time elapsed : {env.now:,.1f} ms")
    print(f"active NameNodes       : {fs.active_namenodes()}")
    print(f"average op latency     : {fs.metrics.average_latency():.2f} ms")
    print(f"pay-per-use cost so far: ${fs.cost_usd():.6f}")


if __name__ == "__main__":
    main()
