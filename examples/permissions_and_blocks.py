"""HDFS-style permissions and block placement through λFS.

Shows the metadata a DFS client actually consumes: permission
enforcement on the resolution path (with coherent enforcement across
NameNode caches after a `set_permission`) and per-block replica
locations computed from the DataNodes' published reports.

Run with:  python examples/permissions_and_blocks.py
"""

from repro.core import LambdaFS
from repro.sim import Environment


def main() -> None:
    env = Environment()
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    alice = fs.new_client()
    bob = fs.new_client(fs.new_vm())

    def scenario(env):
        yield from alice.mkdirs("/projects/secret")
        yield from alice.create_file("/projects/secret/plan.txt")
        yield env.timeout(4_000)  # let DataNode block reports publish

        response = yield from bob.read_file("/projects/secret/plan.txt")
        print(f"bob reads plan.txt        -> ok={response.ok}")
        for block_id, replicas in response.value["blocks"].items():
            print(f"   block {block_id} replicated on {replicas}")

        # Alice locks the directory down; Bob's cached view must be
        # invalidated fleet-wide before the change persists.
        response = yield from alice.set_permission("/projects/secret", 0o600)
        print(f"alice chmod 600 secret/   -> ok={response.ok}")

        response = yield from bob.read_file("/projects/secret/plan.txt")
        print(f"bob reads plan.txt again  -> ok={response.ok}"
              f"  ({response.error})")

        response = yield from alice.set_permission("/projects/secret", 0o755)
        print(f"alice chmod 755 secret/   -> ok={response.ok}")
        response = yield from bob.read_file("/projects/secret/plan.txt")
        print(f"bob reads plan.txt again  -> ok={response.ok}")

    done = env.process(scenario(env))
    env.run(until=done)
    print("\nPermission changes propagate through the coherence protocol: "
          "no NameNode ever serves a stale mode from its cache.")


if __name__ == "__main__":
    main()
