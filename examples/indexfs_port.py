"""λIndexFS: the λFS port onto IndexFS/BeeGFS (§4, §5.7).

Runs IndexFS' tree-test (mknod writes then random getattr reads)
against vanilla IndexFS and λIndexFS side by side, demonstrating the
portability of the λFS design beyond HopsFS.

Run with:  python examples/indexfs_port.py
"""

from repro.baselines import (
    IndexFSCluster,
    IndexFSConfig,
    LambdaIndexFS,
    LambdaIndexFSConfig,
)
from repro.bench.harness import drive
from repro.sim import Environment
from repro.workloads import TreeTest, TreeTestConfig

CLIENTS = 64
CONFIG = TreeTestConfig(writes_per_client=150, reads_per_client=150)


def main() -> None:
    env = Environment()
    vanilla = IndexFSCluster(env, IndexFSConfig())
    clients = [vanilla.new_client() for _ in range(CLIENTS)]
    vanilla_result = drive(env, TreeTest(env, CONFIG).run(clients))

    env2 = Environment()
    ported = LambdaIndexFS(env2, LambdaIndexFSConfig())
    ported.start()
    drive(env2, ported.prewarm())
    lambda_clients = [ported.new_client() for _ in range(CLIENTS)]
    lambda_result = drive(env2, TreeTest(env2, CONFIG).run(lambda_clients))

    print(f"tree-test, {CLIENTS} clients, "
          f"{CONFIG.writes_per_client} writes + {CONFIG.reads_per_client} reads each\n")
    print(f"{'':24}{'IndexFS':>12} {'λIndexFS':>12}")
    print(f"{'write throughput':24}{vanilla_result.write_throughput:>10,.0f}/s "
          f"{lambda_result.write_throughput:>10,.0f}/s")
    print(f"{'read throughput':24}{vanilla_result.read_throughput:>10,.0f}/s "
          f"{lambda_result.read_throughput:>10,.0f}/s")
    print(f"{'aggregate':24}{vanilla_result.aggregate_throughput:>10,.0f}/s "
          f"{lambda_result.aggregate_throughput:>10,.0f}/s")
    print(f"\nλIndexFS functions running: {ported.platform.total_live_instances()}")
    print("The same caching + hybrid-RPC + auto-scaling design carries "
          "over to a different DFS substrate.")


if __name__ == "__main__":
    main()
