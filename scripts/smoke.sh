#!/usr/bin/env bash
# Tier-1 smoke run: the unit/integration suite minus anything marked
# slow or bench.  Target budget: under ~60 seconds.
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -x -q -m "not slow and not bench" "$@"
