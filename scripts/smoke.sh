#!/usr/bin/env bash
# Tier-1 smoke run: the unit/integration suite minus anything marked
# slow or bench, then one traced+telemetry microbenchmark whose
# exports must parse.  Target budget: under ~90 seconds.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q -m "not slow and not bench" "$@"

# Telemetry smoke: a small traced + instrumented run; every export
# format must round-trip through its parser.
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
python -m repro telemetry --trace --clients 32 --ops 24 --warmup 16 \
    --deployments 4 --out "$out" > "$out/dashboard.txt"
grep -q "fleet (NameNodes per deployment)" "$out/dashboard.txt"
grep -q "invariant violation" "$out/dashboard.txt"
python - "$out" <<'EOF'
import csv
import sys

from repro.telemetry import parse_prometheus_text, read_jsonl

out = sys.argv[1]
ts = read_jsonl(f"{out}/telemetry.jsonl")
assert len(ts.samples) > 0, "JSONL export is empty"
assert ts.keys(), "JSONL export has no series"
samples = parse_prometheus_text(open(f"{out}/telemetry.prom").read())
assert samples, "Prometheus export is empty"
assert any(k.startswith("ops_total") for k in samples), samples.keys()
rows = list(csv.reader(open(f"{out}/telemetry.csv")))
assert rows and rows[0][0] == "t_ms", "CSV header malformed"
assert len(rows) == len(ts.samples) + 1, "CSV row count mismatch"
print(f"telemetry smoke ok: {len(ts.samples)} samples, "
      f"{len(ts.keys())} series, {len(samples)} prom samples")
EOF

# Profiler smoke: a profiled microbenchmark; the Chrome trace must be
# valid (finite, non-negative timestamps), the stage attribution must
# tile each op's latency exactly, and a self-diff must be clean.
python -m repro profile run --clients 32 --ops 24 --warmup 16 \
    --deployments 4 --out "$out/profile" \
    --bench-json BENCH_profile.json > "$out/profile.txt"
grep -q "critical-path latency by op type" "$out/profile.txt"
python - "$out" <<'EOF'
import json
import math
import sys

from repro.profile import Profile, diff_profiles

out = sys.argv[1]
trace = json.load(open(f"{out}/profile/trace.chrome.json"))
events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
assert events, "Chrome trace has no complete events"
for event in events:
    assert math.isfinite(event["ts"]) and event["ts"] >= 0, event
    assert math.isfinite(event["dur"]) and event["dur"] >= 0, event
profile = Profile.load(f"{out}/profile/profile.json")
assert len(profile.ops) > 0, "profile has no completed ops"
for record in profile.ops:
    gap = abs(record.attributed_ms - record.total_ms)
    assert gap < 1e-6, (record.op, record.span_id, gap)
diff = diff_profiles(profile, profile)
assert not diff.regressions(), "self-diff reported regressions"
bench = json.load(open("BENCH_profile.json"))
assert bench["ops"], "bench json has no op summaries"
print(f"profile smoke ok: {len(profile.ops)} ops attributed, "
      f"{len(events)} trace events, self-diff clean")
EOF

# Chaos smoke: one fast fault scenario end-to-end under load — the
# engine injects, the invariant/liveness/SLO verifier must pass.
python -m repro chaos run ack-loss --clients 12 --window 4000 \
    --drain 5000 > "$out/chaos.txt"
grep -q "verifier: PASS" "$out/chaos.txt"
grep -q "fault log:" "$out/chaos.txt"
echo "chaos smoke ok: $(head -1 "$out/chaos.txt")"

# Datanode smoke: the two-scenario data-plane chaos matrix — kills
# must be repaired within the SLO, slow disks must not cause deficits,
# and the baseline JSON must carry the replication evidence.
python -m repro chaos matrix --scenarios datanode-kill disk-slow \
    --clients 8 --deployments 2 --window 8000 --drain 3000 \
    --bench-json "$out/BENCH_datanode.json" > "$out/datanode.txt"
grep -q "matrix: PASS" "$out/datanode.txt"
python - "$out" <<'EOF'
import json
import sys

out = sys.argv[1]
bench = json.load(open(f"{out}/BENCH_datanode.json"))
kill = bench["scenarios"]["datanode-kill"]
assert kill["passed"], kill
assert kill["datanodes_dead"] == 2, kill
assert kill["repairs"] > 0, kill
assert not kill["lost_blocks"], kill
assert kill["replication_recovery_ms"] is not None, kill
slow = bench["scenarios"]["disk-slow"]
assert slow["passed"] and slow["datanodes_dead"] == 0, slow
print(f"datanode smoke ok: {kill['repairs']} repairs, "
      f"RF restored in {kill['replication_recovery_ms']:.0f} ms")
EOF

# Tenant smoke: the noisy-neighbor scenario at reduced scale — the
# QoS governor must cap the hog so the fairness gate (Jain floor +
# victim p99) recovers — then a short multi-tenant run whose exports
# must contain per-tenant series for every cast member.
python -m repro chaos run noisy-neighbor --deployments 2 \
    --window 8000 --drain 4000 --interval 200 > "$out/tenant.txt"
grep -q "verifier: PASS" "$out/tenant.txt"
grep -q "PASS fairness: Jain" "$out/tenant.txt"
python -m repro tenants --duration 1500 --deployments 2 \
    --interval 200 --out "$out/tenants" > "$out/tenants.txt"
grep -q "Jain overall" "$out/tenants.txt"
python - "$out" <<'EOF'
import sys

from repro.telemetry import parse_prometheus_text, read_jsonl
from repro.telemetry.registry import parse_series_key

out = sys.argv[1]
ts = read_jsonl(f"{out}/tenants/tenants.jsonl")
tenants = {
    parse_series_key(key)[1]["tenant"]
    for key in ts.keys() if key.startswith("tenant_ops_total")
}
assert tenants >= {"prod", "analytics", "mltrain", "batch"}, tenants
samples = parse_prometheus_text(open(f"{out}/tenants/tenants.prom").read())
buckets = [k for k in samples if k.startswith("tenant_latency_bucket")]
assert buckets, "no per-tenant latency buckets exported"
print(f"tenant smoke ok: {sorted(tenants)} tenants, "
      f"{len(buckets)} bucket series")
EOF

# Incidents smoke: one fault scenario with online detection — the
# detector must page, the correlator must blame the injected fault,
# and the JSON export must round-trip through the report loader.
python -m repro incidents run ack-loss --clients 12 --window 4000 \
    --drain 5000 --out "$out/incidents" > "$out/incidents.txt"
grep -q "PASS detection: incident #0 blamed fault:ack_loss" \
    "$out/incidents.txt"
grep -q "suspect 1. injected fault 'ack_loss'" "$out/incidents.txt"
python - "$out" <<'EOF'
import sys

from repro.incidents import load_report

out = sys.argv[1]
report = load_report(f"{out}/incidents/incidents.json")
assert report.scenario == "ack-loss", report.scenario
assert report.detected, "no incidents in the export"
top = report.incidents[0].top_suspect
assert top is not None and top.fault_kind == "ack_loss", top
assert report.mttd_ms is not None and report.mttd_ms <= 4_000.0
md = open(f"{out}/incidents/incidents.md").read()
assert "# Incident report" in md and "ack_loss" in md
print(f"incidents smoke ok: {len(report.incidents)} incident(s), "
      f"MTTD {report.mttd_ms:.0f} ms, top suspect {top.kind}")
EOF

# Resilience smoke: the metastable-overload family end-to-end — the
# brownout must pass gate 7 (goodput floor, zero ops committed past
# deadline, legal breaker transitions), the -noshed twin must fail it
# for the honest reason, and the verdicts must match the committed
# baseline (ordering matters: the drift gate compares exact counters,
# which are only reproducible over the full default matrix).
python -m repro resilience run metastable-brownout > "$out/resilience.txt"
grep -q "PASS resilience:" "$out/resilience.txt"
grep -q "0 deadline violations" "$out/resilience.txt"
python -m repro incidents run metastable-brownout --window 8000 \
    --drain 6000 > "$out/resilience_incidents.txt"
grep -q "alert breaker-open \[page\]" "$out/resilience_incidents.txt"
grep -q "PASS detection: incident #0 blamed fault:load_spike" \
    "$out/resilience_incidents.txt"
python -m repro resilience matrix --baseline BENCH_resilience.json \
    > "$out/resilience_matrix.txt"
grep -q "FAIL (expected)" "$out/resilience_matrix.txt"
grep -q "resilience baseline: OK" "$out/resilience_matrix.txt"
grep -q "resilience matrix: PASS" "$out/resilience_matrix.txt"
echo "resilience smoke ok: $(grep 'PASS resilience:' "$out/resilience.txt" | head -1 | sed 's/^ *//')"

# Kernel smoke: the quick events/sec gate against the committed
# baseline — fails on a >25% regression at the quick scale point.
# (The baseline is best-of-repeats; host noise alone is ~±10%, so the
# gate's margin must sit well above it.  A real scheduler regression —
# calendar queue back to the global heap — is far larger.)
python -m repro bench kernel --quick --repeats 3 \
    --baseline benchmarks/results/BENCH_kernel.json \
    --threshold 0.25 > "$out/kernel.txt"
grep -q "kernel bench: PASS" "$out/kernel.txt"
echo "kernel smoke ok: $(grep 'kernel bench:' "$out/kernel.txt")"
