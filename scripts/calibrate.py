"""Calibration harness: quick cross-system shape checks.

Not part of the public API; used during development to confirm the
relative performance shapes match the paper before running the full
benchmark suite.
"""

import time

from repro.baselines import (
    CephFSCluster,
    HopsFSCachedCluster,
    HopsFSCluster,
    HopsFSConfig,
    make_infinicache,
)
from repro.core import LambdaFS, LambdaFSConfig, OpType
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment
from repro.workloads import MicroBenchmark

TREE = generate_tree(TreeSpec(depth=3, dirs_per_dir=4, files_per_dir=8))


def build_lambda(env, n):
    fs = LambdaFS(env, LambdaFSConfig(num_deployments=16))
    fs.format()
    fs.start()
    fs.install_namespace(TREE.directories, TREE.files)
    vms = [fs.new_vm() for _ in range(max(1, n // 128))]
    clients = [fs.new_client(vms[i % len(vms)]) for i in range(n)]
    pre = env.process(fs.prewarm(1))
    env.run(until=pre)
    return clients, lambda: (
        f"NNs={fs.active_namenodes()} lat={fs.metrics.average_latency():.2f}ms"
    )


def build_infini(env, n):
    fs = make_infinicache(env)
    fs.format()
    fs.start()
    fs.install_namespace(TREE.directories, TREE.files)
    vms = [fs.new_vm() for _ in range(max(1, n // 128))]
    clients = [fs.new_client(vms[i % len(vms)]) for i in range(n)]
    pre = env.process(fs.prewarm(1))
    env.run(until=pre)
    return clients, lambda: f"lat={fs.metrics.average_latency():.2f}ms"


def build_hops(env, n):
    cluster = HopsFSCluster(env, HopsFSConfig())
    cluster.format()
    cluster.install_namespace(TREE.directories, TREE.files)
    clients = [cluster.new_client() for _ in range(n)]
    return clients, lambda: f"lat={cluster.metrics.average_latency():.2f}ms"


def build_hopsc(env, n):
    cluster = HopsFSCachedCluster(env, HopsFSConfig())
    cluster.format()
    cluster.install_namespace(TREE.directories, TREE.files)
    clients = [cluster.new_client() for _ in range(n)]
    return clients, lambda: f"lat={cluster.metrics.average_latency():.2f}ms"


def build_ceph(env, n):
    cluster = CephFSCluster(env)
    cluster.install_namespace(TREE.directories, TREE.files)
    clients = [cluster.new_client() for _ in range(n)]
    return clients, lambda: f"lat={cluster.metrics.average_latency():.2f}ms"


BUILDERS = {
    "lambda": build_lambda,
    "hopsfs": build_hops,
    "hops+c": build_hopsc,
    "infini": build_infini,
    "ceph": build_ceph,
}


def run(name, n_clients, ops, op=OpType.READ_FILE):
    wall = time.time()
    env = Environment()
    clients, extra = BUILDERS[name](env, n_clients)
    box = {}

    def main(env):
        bench = MicroBenchmark(env, TREE)
        box["res"] = yield from bench.run(clients, op, ops)

    done = env.process(main(env))
    env.run(until=done)
    res = box["res"]
    print(
        f"{name:7s} {n_clients:4d}cl {op.name:10s} {res.throughput:9.0f} ops/s "
        f"err={res.errors:3d} {extra()} wall={time.time() - wall:.1f}s"
    )


if __name__ == "__main__":
    import sys

    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    op_name = sys.argv[2] if len(sys.argv) > 2 else "READ_FILE"
    systems = sys.argv[3].split(",") if len(sys.argv) > 3 else list(BUILDERS)
    for n in (8, 64, 256):
        for system in systems:
            run(system, n, ops, OpType[op_name])
