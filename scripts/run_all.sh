#!/usr/bin/env bash
# Regenerate everything: test results, every paper table/figure, and
# the output files referenced by EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

python -m pytest tests/ 2>&1 | tee test_output.txt
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

echo
echo "Per-figure tables: benchmarks/results/"
ls benchmarks/results/
