"""Run-to-run profile diffing: attribution-level before/after.

Compares two :class:`~repro.profile.critical_path.Profile` runs
per-op-type and per-stage, so a perf PR's effect shows up *in the
stage it changed* — "create-file p99 grew 2.1× and the growth is all
``store``" is actionable where "p99 grew" is not.

A cell regresses when its mean per-op stage time grows by more than
``rel_threshold`` (relative) **and** ``min_ms`` (absolute floor, so
microsecond jitter on near-zero stages never pages anyone).  A run
diffed against itself reports zero regressions by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.recorder import percentile
from repro.profile.critical_path import Profile
from repro.profile.stages import STAGES


@dataclass(frozen=True)
class StageDelta:
    """One (op type, stage) comparison cell."""

    op: str
    stage: str
    before_ms: float
    """Mean per-op stage time in the baseline run."""
    after_ms: float
    delta_ms: float
    ratio: float
    """after/before; ``inf`` when the stage appeared from zero."""
    regression: bool
    improvement: bool


@dataclass(frozen=True)
class OpDelta:
    """End-to-end latency movement for one op type."""

    op: str
    count_before: int
    count_after: int
    p50_before_ms: float
    p50_after_ms: float
    p99_before_ms: float
    p99_after_ms: float


class ProfileDiff:
    """The full stage-by-stage comparison of two runs."""

    def __init__(
        self, stage_deltas: List[StageDelta], op_deltas: List[OpDelta]
    ) -> None:
        self.stage_deltas = stage_deltas
        self.op_deltas = op_deltas

    def regressions(self) -> List[StageDelta]:
        return [delta for delta in self.stage_deltas if delta.regression]

    def improvements(self) -> List[StageDelta]:
        return [delta for delta in self.stage_deltas if delta.improvement]

    def worst(self) -> Optional[StageDelta]:
        regressed = self.regressions()
        if not regressed:
            return None
        return max(regressed, key=lambda delta: delta.delta_ms)


def _mean_stages(profile: Profile) -> Dict[str, Dict[str, float]]:
    """op type -> stage -> mean ms per op."""
    out: Dict[str, Dict[str, float]] = {}
    for op, records in profile.by_op_type().items():
        count = len(records)
        means = {stage: 0.0 for stage in STAGES}
        for record in records:
            for stage, value in record.stages.items():
                means[stage] = means.get(stage, 0.0) + value
        out[op] = {stage: value / count for stage, value in means.items()}
    return out


def diff_profiles(
    before: Profile,
    after: Profile,
    rel_threshold: float = 0.25,
    min_ms: float = 0.05,
) -> ProfileDiff:
    """Stage-by-stage comparison; see module docstring for the rule."""
    if rel_threshold < 0 or min_ms < 0:
        raise ValueError("thresholds must be non-negative")
    means_before = _mean_stages(before)
    means_after = _mean_stages(after)
    ops = sorted(set(means_before) | set(means_after))

    stage_deltas: List[StageDelta] = []
    for op in ops:
        b_stages = means_before.get(op, {})
        a_stages = means_after.get(op, {})
        for stage in STAGES:
            b = b_stages.get(stage, 0.0)
            a = a_stages.get(stage, 0.0)
            if b == 0.0 and a == 0.0:
                continue
            delta = a - b
            ratio = (a / b) if b > 0 else float("inf")
            grown = delta > min_ms and (b == 0.0 or delta > rel_threshold * b)
            shrunk = -delta > min_ms and (a == 0.0 or -delta > rel_threshold * a)
            # A cell only counts when both runs actually saw the op.
            seen_both = op in means_before and op in means_after
            stage_deltas.append(StageDelta(
                op=op, stage=stage, before_ms=b, after_ms=a,
                delta_ms=delta, ratio=ratio,
                regression=grown and seen_both,
                improvement=shrunk and seen_both,
            ))

    op_deltas: List[OpDelta] = []
    by_before = before.by_op_type()
    by_after = after.by_op_type()
    for op in ops:
        b_totals = [record.total_ms for record in by_before.get(op, [])]
        a_totals = [record.total_ms for record in by_after.get(op, [])]
        op_deltas.append(OpDelta(
            op=op,
            count_before=len(b_totals),
            count_after=len(a_totals),
            p50_before_ms=percentile(b_totals, 50.0) if b_totals else 0.0,
            p50_after_ms=percentile(a_totals, 50.0) if a_totals else 0.0,
            p99_before_ms=percentile(b_totals, 99.0) if b_totals else 0.0,
            p99_after_ms=percentile(a_totals, 99.0) if a_totals else 0.0,
        ))
    return ProfileDiff(stage_deltas, op_deltas)


def format_diff(diff: ProfileDiff, verbose: bool = False) -> str:
    """Human-readable diff report (tables + regression verdict)."""
    from repro.bench.report import tabulate

    lines: List[str] = []
    rows: List[Tuple] = [
        [delta.op, delta.count_before, delta.count_after,
         f"{delta.p50_before_ms:.2f}", f"{delta.p50_after_ms:.2f}",
         f"{delta.p99_before_ms:.2f}", f"{delta.p99_after_ms:.2f}"]
        for delta in diff.op_deltas
    ]
    lines.append(tabulate(
        ["op", "n before", "n after", "p50 before", "p50 after",
         "p99 before", "p99 after"],
        rows,
    ))

    moved = [
        delta for delta in diff.stage_deltas
        if verbose or delta.regression or delta.improvement
    ]
    if moved:
        lines.append("")
        lines.append(tabulate(
            ["op", "stage", "before ms/op", "after ms/op", "delta", "verdict"],
            [
                [delta.op, delta.stage,
                 f"{delta.before_ms:.3f}", f"{delta.after_ms:.3f}",
                 f"{delta.delta_ms:+.3f}",
                 "REGRESSION" if delta.regression
                 else ("improved" if delta.improvement else "")]
                for delta in moved
            ],
        ))
    count = len(diff.regressions())
    lines.append("")
    lines.append(
        f"{count} regression(s), {len(diff.improvements())} improvement(s)"
    )
    return "\n".join(lines)
