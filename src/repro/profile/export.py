"""Profile exporters: Chrome trace-event JSON, folded flamegraph
stacks, and a spans JSONL interchange format.

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  Trace Event Format consumed by Perfetto (ui.perfetto.dev) and
  ``chrome://tracing``: one complete event (``ph: "X"``) per closed
  span, one named track per actor, timestamps in microseconds.
* :func:`folded_stacks` — ``a;b;c <weight>`` lines for
  ``flamegraph.pl`` / speedscope, weighted by critical-path self time
  in microseconds (so the flame's width is *blocking* time, not the
  double-counted sum of overlapping children).
* :func:`dump_spans` / :func:`load_spans` — JSONL round-trip of raw
  spans so ``repro profile export`` can re-render a finished run
  without keeping the simulation alive.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from repro.profile.critical_path import Profile
from repro.trace.tracer import Span


def _sanitize(value: Any) -> Any:
    """Force attr values into JSON-clean scalars/containers."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _sanitize(item) for key, item in value.items()}
    return repr(value)


# -- Chrome trace-event JSON --------------------------------------------------

def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Trace-event dicts (metadata + complete events), Perfetto-ready.

    Every event's ``ts``/``dur`` is finite and non-negative; open
    spans are skipped (they have no defensible duration).  Actors map
    to one track (tid) each, named via ``thread_name`` metadata.
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in sorted(
        spans, key=lambda s: (s.start_ms, s.span_id)
    ):
        if span.end_ms is None:
            continue
        if not (math.isfinite(span.start_ms) and math.isfinite(span.end_ms)):
            continue
        tid = tids.get(span.actor)
        if tid is None:
            tid = tids[span.actor] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": span.actor},
            })
        ts_us = max(0.0, span.start_ms * 1000.0)
        dur_us = max(0.0, (span.end_ms - span.start_ms) * 1000.0)
        args = {str(key): _sanitize(value) for key, value in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "ph": "X", "name": span.kind, "cat": span.kind.split(".")[0],
            "pid": 1, "tid": tid, "ts": ts_us, "dur": dur_us, "args": args,
        })
    return events


def write_chrome_trace(spans: Iterable[Span], path: str) -> str:
    """Write a ``{"traceEvents": [...]}`` JSON file; returns ``path``."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


# -- folded flamegraph stacks -------------------------------------------------

def folded_stacks(profile: Profile, by: str = "kind") -> str:
    """Folded-stack text weighted by critical-path self time (µs).

    ``by="kind"`` stacks span kinds (``client.op;rpc.tcp;nn.handle``);
    ``by="stage"`` appends the stage as the leaf frame so per-stage
    width is readable straight off the flame.  Zero-weight stacks are
    dropped (flamegraph.pl requires positive integer counts).
    """
    if by not in ("kind", "stage"):
        raise ValueError(f"by must be 'kind' or 'stage', not {by!r}")
    weights: Dict[str, int] = {}
    for op in profile.ops:
        for segment in op.segments:
            frames = [f"{op.op}"] + list(segment.stack)
            if by == "stage":
                frames.append(segment.stage)
            key = ";".join(frame.replace(";", "_") for frame in frames)
            weights[key] = weights.get(key, 0) + int(
                round(segment.duration_ms * 1000.0)
            )
    lines = [
        f"{stack} {weight}"
        for stack, weight in sorted(weights.items())
        if weight > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded_stacks(profile: Profile, path: str, by: str = "kind") -> str:
    with open(path, "w") as handle:
        handle.write(folded_stacks(profile, by=by))
    return path


# -- spans JSONL interchange ---------------------------------------------------

def dump_spans(spans: Iterable[Span], path: str) -> str:
    """One span per JSONL line (attrs sanitized); returns ``path``."""
    with open(path, "w") as handle:
        for span in sorted(spans, key=lambda s: s.span_id):
            handle.write(json.dumps({
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "kind": span.kind,
                "actor": span.actor,
                "start_ms": span.start_ms,
                "end_ms": span.end_ms,
                "attrs": {
                    str(key): _sanitize(value)
                    for key, value in span.attrs.items()
                },
            }) + "\n")
    return path


def load_spans(path: str) -> List[Span]:
    """Rebuild :class:`Span` objects from a :func:`dump_spans` file."""
    spans: List[Span] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            span = Span(
                span_id=data["span_id"],
                parent_id=data.get("parent_id"),
                kind=data["kind"],
                actor=data.get("actor", ""),
                start_ms=data["start_ms"],
                attrs=data.get("attrs", {}),
            )
            end_ms: Optional[float] = data.get("end_ms")
            span.end_ms = end_ms
            spans.append(span)
    return spans
