"""Critical-path profiling: per-op latency attribution over traces.

Consumes the span trees recorded by :mod:`repro.trace` and answers
*why* an operation's latency is what it is — splitting every completed
client op's end-to-end time across a fixed stage taxonomy (client
queue/backoff, HTTP gateway, invoker queue, cold start, TCP transit,
NameNode work, lock wait, store service, coherence round, straggler
resubmission) along the **blocking critical path** through concurrent
children::

    from repro.bench.harness import build_lambdafs
    handle = build_lambdafs(env, tree, profile=True)   # implies trace
    ... run a workload ...
    profile = handle.profiler.analyze()
    print(profile.stage_shares("read file"))

Exports: Chrome trace-event JSON (Perfetto waterfalls) and folded
flamegraph stacks.  ``repro profile run|diff|export`` wires the whole
flow (run → report → export → run-to-run regression diff) into the
CLI.  See ``docs/profiling.md``.

The profiler only reads spans after the fact — it never schedules
events, so profiling cannot perturb the simulation or its
determinism hash.
"""

from repro.profile.critical_path import (
    OpProfile,
    Profile,
    Profiler,
    Segment,
    analyze_spans,
    analyze_trace,
    attribute_op,
)
from repro.profile.diff import (
    OpDelta,
    ProfileDiff,
    StageDelta,
    diff_profiles,
    format_diff,
)
from repro.profile.export import (
    chrome_trace_events,
    dump_spans,
    folded_stacks,
    load_spans,
    write_chrome_trace,
    write_folded_stacks,
)
from repro.profile.report import format_report
from repro.profile.stages import STAGES, describe, is_failed_attempt, stage_of

__all__ = [
    "OpDelta",
    "OpProfile",
    "Profile",
    "ProfileDiff",
    "Profiler",
    "STAGES",
    "Segment",
    "StageDelta",
    "analyze_spans",
    "analyze_trace",
    "attribute_op",
    "chrome_trace_events",
    "describe",
    "diff_profiles",
    "dump_spans",
    "folded_stacks",
    "format_diff",
    "format_report",
    "is_failed_attempt",
    "load_spans",
    "stage_of",
    "write_chrome_trace",
    "write_folded_stacks",
]
