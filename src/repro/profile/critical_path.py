"""Critical-path latency attribution over traced span trees.

The analyzer consumes the causal span trees recorded by
:class:`repro.trace.Tracer` and, for every completed client operation,
splits its end-to-end latency across the fixed stage taxonomy of
:mod:`repro.profile.stages`.  Attribution follows the **blocking
critical path**, not naive duration sums: the walk moves backwards
from the operation's completion, descending into the child span that
gated progress at each instant — so when an INV round fans out to N
deployments concurrently, only the slowest ACK's chain is charged
(the others are shadowed), and a straggler attempt that keeps running
after the client abandoned it is clipped at the abandonment point.

The partition is exact by construction: the emitted segments tile the
root interval with no overlap, so per-stage totals sum to the
operation's latency to float precision.  The profiler only *reads*
spans after the run — it never schedules events or touches the
simulation, so profiling cannot change behaviour or the determinism
hash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.metrics.recorder import percentile
from repro.profile.stages import ROOT_KIND, STAGES, is_failed_attempt, stage_of
from repro.trace.tracer import Span


@dataclass(frozen=True)
class Segment:
    """One critical-path slice: ``span`` was the blocker on [start, end)."""

    start_ms: float
    end_ms: float
    stage: str
    kind: str
    actor: str
    stack: Tuple[str, ...]
    """Span kinds from the root down to the blocking span."""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class OpProfile:
    """One client operation's attributed latency."""

    span_id: int
    op: str
    path: str
    ok: bool
    via: str
    start_ms: float
    end_ms: float
    stages: Dict[str, float]
    segments: List[Segment] = field(default_factory=list)
    tenant: str = ""
    """Owning tenant (from the root span's ``tenant`` attr); empty in
    single-tenant runs."""

    @property
    def total_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def attributed_ms(self) -> float:
        return sum(self.stages.values())

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "span_id": self.span_id,
            "op": self.op,
            "path": self.path,
            "ok": self.ok,
            "via": self.via,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "stages": {k: v for k, v in self.stages.items() if v},
        }
        if self.tenant:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OpProfile":
        stages = {stage: 0.0 for stage in STAGES}
        stages.update(data.get("stages", {}))
        return cls(
            span_id=data.get("span_id", 0),
            op=data["op"],
            path=data.get("path", ""),
            ok=data.get("ok", True),
            via=data.get("via", ""),
            start_ms=data["start_ms"],
            end_ms=data["end_ms"],
            stages=stages,
            tenant=data.get("tenant", ""),
        )


class Profile:
    """A run's worth of :class:`OpProfile` records plus aggregates."""

    def __init__(self, ops: List[OpProfile], open_roots: int = 0) -> None:
        self.ops = ops
        self.open_roots = open_roots
        """Client-op spans still open when the trace was analyzed
        (crashed or abandoned operations; excluded from attribution)."""

    def __len__(self) -> int:
        return len(self.ops)

    # -- aggregates ------------------------------------------------------
    def by_op_type(self) -> Dict[str, List[OpProfile]]:
        grouped: Dict[str, List[OpProfile]] = {}
        for op in self.ops:
            grouped.setdefault(op.op, []).append(op)
        return grouped

    def by_tenant(self) -> Dict[str, List[OpProfile]]:
        """Ops grouped by owning tenant ("" = untagged clients)."""
        grouped: Dict[str, List[OpProfile]] = {}
        for op in self.ops:
            grouped.setdefault(op.tenant, []).append(op)
        return grouped

    def stage_totals(
        self, op: Optional[str] = None, tenant: Optional[str] = None
    ) -> Dict[str, float]:
        """Total ms per stage (optionally for one op type / tenant)."""
        totals = {stage: 0.0 for stage in STAGES}
        for record in self.ops:
            if op is not None and record.op != op:
                continue
            if tenant is not None and record.tenant != tenant:
                continue
            for stage, value in record.stages.items():
                totals[stage] = totals.get(stage, 0.0) + value
        return totals

    def stage_shares(
        self, op: Optional[str] = None, tenant: Optional[str] = None
    ) -> Dict[str, float]:
        """Fraction of total attributed time per stage."""
        totals = self.stage_totals(op, tenant=tenant)
        grand = sum(totals.values())
        if grand <= 0:
            return {stage: 0.0 for stage in totals}
        return {stage: value / grand for stage, value in totals.items()}

    def latencies(
        self, op: Optional[str] = None, stage: Optional[str] = None
    ) -> List[float]:
        """Per-op values: end-to-end ms, or one stage's ms when given."""
        out = []
        for record in self.ops:
            if op is not None and record.op != op:
                continue
            out.append(
                record.total_ms if stage is None else record.stages.get(stage, 0.0)
            )
        return out

    def stage_cdf(
        self, stage: str, op: Optional[str] = None, points: int = 50
    ) -> List[Tuple[float, float]]:
        """(stage ms, cumulative fraction) pairs for CDF plotting."""
        values = sorted(self.latencies(op=op, stage=stage))
        if not values:
            return []
        count = len(values)
        step = max(1, count // points)
        cdf = [
            (values[index], (index + 1) / count)
            for index in range(0, count, step)
        ]
        if cdf[-1][0] != values[-1]:
            cdf.append((values[-1], 1.0))
        return cdf

    def percentiles(
        self, qs: Iterable[float] = (50.0, 99.0), op: Optional[str] = None
    ) -> Dict[float, float]:
        values = self.latencies(op=op)
        if not values:
            return {q: 0.0 for q in qs}
        return {q: percentile(values, q) for q in qs}

    def top_contributors(self, n: int = 10) -> List[Tuple[str, str, float, float]]:
        """The heaviest (op type, stage) cells.

        Returns ``(op, stage, total_ms, share_of_run)`` rows sorted by
        total time — the "where did the milliseconds go" table.
        """
        grand = sum(sum(record.stages.values()) for record in self.ops) or 1.0
        cells: Dict[Tuple[str, str], float] = {}
        for record in self.ops:
            for stage, value in record.stages.items():
                if value > 0:
                    key = (record.op, stage)
                    cells[key] = cells.get(key, 0.0) + value
        ranked = sorted(cells.items(), key=lambda item: -item[1])[:n]
        return [(op, stage, ms, ms / grand) for (op, stage), ms in ranked]

    # -- persistence ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        summary = {}
        for op, records in sorted(self.by_op_type().items()):
            totals = [r.total_ms for r in records]
            summary[op] = {
                "count": len(records),
                "p50_ms": percentile(totals, 50.0),
                "p99_ms": percentile(totals, 99.0),
                "stage_shares": {
                    k: v for k, v in self.stage_shares(op).items() if v
                },
            }
        return {
            "version": 1,
            "open_roots": self.open_roots,
            "summary": summary,
            "ops": [record.to_dict() for record in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Profile":
        return cls(
            [OpProfile.from_dict(record) for record in data.get("ops", [])],
            open_roots=data.get("open_roots", 0),
        )

    def save(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
        return path

    @classmethod
    def load(cls, path: str) -> "Profile":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


# -- the walk -----------------------------------------------------------------

def _index_children(spans: Iterable[Span]) -> Dict[Optional[int], List[Span]]:
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    return by_parent


def _walk(
    span: Span,
    lo: float,
    hi: float,
    by_parent: Dict[Optional[int], List[Span]],
    stack: Tuple[str, ...],
    segments: List[Segment],
) -> None:
    """Tile [lo, hi) with critical-path segments for ``span``'s subtree.

    Moves backwards from ``hi``: the child that ends last within the
    remaining window is the blocker (the "slowest ACK" rule); anything
    it shadows is off the path.  Gaps between blocking children are
    the span's own self time.  Children are clipped to the window, so
    work continuing after the parent gave up (abandoned stragglers)
    is not charged to this operation.
    """
    if hi <= lo:
        return

    def emit(start: float, end: float) -> None:
        if end > start:
            segments.append(Segment(
                start, end, stage_of(span), span.kind, span.actor, stack,
            ))

    if is_failed_attempt(span):
        # A resubmitted attempt is wasted wholesale; don't decompose.
        emit(lo, hi)
        return

    children = [
        child for child in by_parent.get(span.span_id, ())
        if child.end_ms is not None
        and child.end_ms > child.start_ms
        and child.start_ms < hi and child.end_ms > lo
    ]
    children.sort(key=lambda child: (-child.end_ms, child.start_ms, child.span_id))

    cursor = hi
    for child in children:
        if cursor <= lo:
            break
        child_end = min(child.end_ms, cursor)
        child_start = max(child.start_ms, lo)
        if child_end <= child_start:
            continue  # fully shadowed by a later-ending sibling
        emit(child_end, cursor)  # span's own time after this child
        _walk(child, child_start, child_end, by_parent,
              stack + (child.kind,), segments)
        cursor = child_start
    emit(lo, cursor)


def attribute_op(
    root: Span, by_parent: Dict[Optional[int], List[Span]]
) -> OpProfile:
    """Attribute one closed client-op span across the stage taxonomy."""
    segments: List[Segment] = []
    _walk(root, root.start_ms, root.end_ms, by_parent, (root.kind,), segments)
    stages = {stage: 0.0 for stage in STAGES}
    for segment in segments:
        stages[segment.stage] = stages.get(segment.stage, 0.0) + segment.duration_ms
    return OpProfile(
        span_id=root.span_id,
        op=str(root.attrs.get("op", "?")),
        path=str(root.attrs.get("path", "")),
        ok=bool(root.attrs.get("ok", False)),
        via=str(root.attrs.get("via", "")),
        start_ms=root.start_ms,
        end_ms=root.end_ms,
        stages=stages,
        segments=segments,
        tenant=str(root.attrs.get("tenant", "")),
    )


def analyze_spans(spans: Iterable[Span]) -> Profile:
    """Profile every completed client operation in ``spans``."""
    span_list = list(spans)
    by_parent = _index_children(span_list)
    ops: List[OpProfile] = []
    open_roots = 0
    for span in span_list:
        if span.kind != ROOT_KIND:
            continue
        if span.end_ms is None:
            open_roots += 1
            continue
        ops.append(attribute_op(span, by_parent))
    ops.sort(key=lambda record: (record.start_ms, record.span_id))
    return Profile(ops, open_roots=open_roots)


def analyze_trace(tracer) -> Profile:
    """Profile a :class:`repro.trace.Tracer`'s retained spans."""
    return analyze_spans(tracer.spans.values())


class Profiler:
    """Critical-path profiling attached to a built system.

    Thin handle pairing a tracer with the analyzer; created by the
    bench builders when ``profile=True`` and exposed as
    ``SystemHandle.profiler``.  Analysis is strictly post-hoc — call
    :meth:`analyze` after the run.
    """

    def __init__(self, tracer) -> None:
        self.tracer = tracer

    def analyze(self) -> Profile:
        return analyze_trace(self.tracer)
