"""Text reporting for profiles: stage tables and top contributors."""

from __future__ import annotations

from typing import List

from repro.bench.report import tabulate
from repro.metrics.recorder import percentile
from repro.profile.critical_path import Profile
from repro.profile.stages import STAGES, describe


def format_report(profile: Profile, top: int = 10) -> str:
    """The ``repro profile run`` report: attribution at a glance.

    Three tables: per-op-type latency percentiles with their dominant
    stage, per-op-type stage shares (the critical-path breakdown), and
    the top (op, stage) latency contributors across the run.
    """
    if not profile.ops:
        return "no completed client operations in trace"
    lines: List[str] = []
    grouped = profile.by_op_type()

    rows = []
    for op in sorted(grouped):
        totals = [record.total_ms for record in grouped[op]]
        shares = profile.stage_shares(op)
        dominant = max(shares, key=lambda stage: shares[stage])
        rows.append([
            op, len(totals),
            f"{percentile(totals, 50.0):.2f}",
            f"{percentile(totals, 99.0):.2f}",
            f"{dominant} ({shares[dominant] * 100:.0f}%)",
        ])
    lines.append("critical-path latency by op type")
    lines.append(tabulate(
        ["op", "count", "p50 ms", "p99 ms", "dominant stage"], rows,
    ))

    active = [
        stage for stage in STAGES
        if any(profile.stage_totals(op).get(stage, 0.0) > 0 for op in grouped)
    ]
    share_rows = []
    for op in sorted(grouped):
        shares = profile.stage_shares(op)
        share_rows.append(
            [op] + [f"{shares.get(stage, 0.0) * 100:.1f}%" for stage in active]
        )
    lines.append("")
    lines.append("stage shares of attributed time")
    lines.append(tabulate(["op"] + list(active), share_rows))

    lines.append("")
    lines.append("top latency contributors")
    lines.append(tabulate(
        ["op", "stage", "total ms", "share", "what it is"],
        [
            [op, stage, f"{ms:.1f}", f"{share * 100:.1f}%", describe(stage)]
            for op, stage, ms, share in profile.top_contributors(top)
        ],
    ))
    if profile.open_roots:
        lines.append("")
        lines.append(
            f"note: {profile.open_roots} operation(s) never completed "
            "and were excluded"
        )
    return "\n".join(lines)
