"""The critical-path stage taxonomy.

Every instant of a client operation's end-to-end latency is
attributed to exactly one **stage** — the fixed vocabulary the paper's
latency story decomposes into (§3.2 TCP-vs-HTTP split, cold starts,
Algorithm 1 INV/ACK rounds, NDB lock waits, Appendix B stragglers).
The mapping is from span *kind* to stage; time a span spends blocked
on a child belongs to the child's stage, computed by the critical-path
walk in :mod:`repro.profile.critical_path`.

Stages (in reporting order):

``client_queue``
    Client-side time outside any RPC attempt: connection lookup
    (including the Figure 4 sibling-server hop), retry backoff sleeps,
    straggler bookkeeping.
``http_gateway``
    HTTP transit through the FaaS API gateway — the 8–20 ms one-way
    penalty of §3.2 — i.e. ``rpc.http`` time not spent in the invoker,
    a cold start, or the NameNode itself.
``invoker_queue``
    Waiting inside the platform invoker for a serving instance
    (concurrency-level saturation, full-cluster parking, eviction).
``cold_start``
    A request parked on a provisioning container (boot + app init).
``tcp_transit``
    Direct-TCP wire time (the 1–2 ms path).
``namenode``
    NameNode application work: deserialize/dispatch CPU, cache
    lookups, result-cache replay.
``lock_wait``
    Blocked acquiring metastore row locks (queued behind holders).
``store``
    Metadata-store service time: shard queueing + row service + RTT +
    commit flush, and backoff between aborted transaction attempts.
``coherence``
    The INV/ACK round of Algorithm 1 — gated on the slowest ACK.
``resubmit``
    Entire failed RPC attempts that were abandoned and resubmitted
    (stragglers, dropped connections, terminated instances, HTTP
    timeouts).  The wasted attempt is attributed wholesale, not
    decomposed, because none of it contributed to the answer.
``other``
    Unattributed residue (unknown span kinds); the analyzer asserts
    this stays a sliver.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.tracer import Span

#: Reporting order; every attribution dict uses exactly these keys.
STAGES = (
    "client_queue",
    "http_gateway",
    "invoker_queue",
    "cold_start",
    "tcp_transit",
    "namenode",
    "lock_wait",
    "store",
    "coherence",
    "resubmit",
    "other",
)

#: Span kind -> stage of that span's *self time* (time inside the span
#: not covered by any critical-path child).
KIND_TO_STAGE = {
    "client.op": "client_queue",
    "client.backoff": "client_queue",
    "rpc.sibling_hop": "client_queue",
    "rpc.http": "http_gateway",
    "rpc.tcp": "tcp_transit",
    "faas.queue": "invoker_queue",
    "faas.cold_wait": "cold_start",
    "nn.handle": "namenode",
    "nn.result_cache": "namenode",
    "nn.inflight": "namenode",
    "nn.retry_backoff": "store",
    "txn": "store",
    "txn.commit": "store",
    "txn.backoff": "store",
    "lock.wait": "lock_wait",
    "coord.inv": "coherence",
    "coord.member": "coherence",
}

#: Root spans the analyzer profiles (one per client operation).
ROOT_KIND = "client.op"

#: Kinds whose failure means the attempt was abandoned and retried.
_RPC_KINDS = ("rpc.tcp", "rpc.http")


def is_failed_attempt(span: Span) -> bool:
    """True for an RPC attempt that errored and was resubmitted.

    Failed attempts carry an ``error`` attr (exception type name) set
    by the client's retry loop; a clean-but-``ok=False`` response is a
    served application error, not a resubmission.
    """
    return span.kind in _RPC_KINDS and "error" in span.attrs


def stage_of(span: Span) -> str:
    """The stage charged for ``span``'s self time."""
    if is_failed_attempt(span):
        return "resubmit"
    return KIND_TO_STAGE.get(span.kind, "other")


def describe(stage: str) -> Optional[str]:
    """One-line reporting label for a stage."""
    return _DESCRIPTIONS.get(stage)


_DESCRIPTIONS = {
    "client_queue": "client-side queueing, backoff, connection lookup",
    "http_gateway": "HTTP gateway transit (the 8-20 ms path)",
    "invoker_queue": "waiting in the platform invoker for an instance",
    "cold_start": "parked on a provisioning container",
    "tcp_transit": "direct TCP wire time (the 1-2 ms path)",
    "namenode": "NameNode CPU + metadata-cache work",
    "lock_wait": "blocked on metastore row locks",
    "store": "metadata-store service, RTT, commit, txn retry backoff",
    "coherence": "INV/ACK coherence round (slowest ACK gates)",
    "resubmit": "abandoned attempts resubmitted elsewhere",
    "other": "unattributed residue",
}
