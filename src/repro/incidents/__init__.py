"""Online SLO alerting, anomaly detection, and root-cause attribution.

The sixth observability layer (trace → telemetry → profile → chaos →
tenants → **incidents**): where the first five *record* what the
simulated λFS deployment did, this one *detects and explains* it while
the run is still going, the way an SRE stack would.

Three stages, three modules:

:mod:`repro.incidents.rules`
    The declarative rule DSL — static thresholds, EWMA z-score
    anomaly detectors, and Google-SRE multi-window/multi-burn-rate
    SLO rules — plus the :func:`default_rules` catalog covering every
    metric family the stack emits.
:mod:`repro.incidents.detect`
    The :class:`AlertEngine`: incremental, sim-clock evaluation of a
    rule list over the telemetry ``TimeSeries``, attached to the
    sampler's single-``is None`` ``on_sample`` hook so detection adds
    no events and no RNG — a detector-on run keeps the event hash
    byte-identical to a detector-off run.
:mod:`repro.incidents.correlate` / :mod:`repro.incidents.report`
    Temporal grouping of firing alerts into incidents, root-cause
    ranking against the chaos fault log / critical-path stage shifts /
    autoscaler + coordinator + fairness signals, and the JSON +
    markdown incident timeline with MTTD/MTTR.

Wiring: ``repro incidents run|matrix|analyze|rules`` on the CLI,
``--detect`` on ``repro chaos``, and the verifier's detection gate
(every fault-injecting PASS scenario must yield an incident whose top
suspect names the injected fault within the detection SLO).  See
``docs/incidents.md``.
"""

from repro.incidents.rules import (
    SEVERITIES,
    SIGNAL_MODES,
    AnomalyRule,
    BurnRateRule,
    Rule,
    RULESETS,
    Signal,
    ThresholdRule,
    default_rules,
    get_ruleset,
    load_rules,
    register_ruleset,
    rule_from_dict,
    rule_to_dict,
    rules_to_json,
    save_rules,
)
from repro.incidents.detect import Alert, AlertEngine, SEVERITY_RANK
from repro.incidents.correlate import (
    FAULT_SIGNATURES,
    Evidence,
    Suspect,
    rank_suspects,
    stage_shift,
)
from repro.incidents.report import (
    GROUP_GAP_MS,
    Incident,
    IncidentReport,
    build_report,
    group_alerts,
    load_report,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AnomalyRule",
    "BurnRateRule",
    "Evidence",
    "FAULT_SIGNATURES",
    "GROUP_GAP_MS",
    "Incident",
    "IncidentReport",
    "RULESETS",
    "Rule",
    "SEVERITIES",
    "SEVERITY_RANK",
    "SIGNAL_MODES",
    "Signal",
    "Suspect",
    "ThresholdRule",
    "build_report",
    "default_rules",
    "get_ruleset",
    "group_alerts",
    "load_report",
    "load_rules",
    "rank_suspects",
    "register_ruleset",
    "rule_from_dict",
    "rule_to_dict",
    "rules_to_json",
    "save_rules",
    "stage_shift",
]
