"""Incidents: grouped alert windows with attribution and a timeline.

An **incident** is a maximal group of temporally-overlapping (or
near-adjacent) alert firing windows — the unit an on-call human would
page on, as opposed to the individual rule firings that compose it.
:func:`group_alerts` does the grouping, :func:`build_report` runs the
root-cause correlator over each incident and assembles an
:class:`IncidentReport` carrying MTTD/MTTR, the ranked suspect lists,
and JSON/markdown renderings (``incidents.json`` round-trips through
:func:`load_report`).

MTTD (mean time to detect) is measured from the first injected
fault's activation to the moment the incident's earliest alert
*opened* (the sustain-window start, not when it fired) — i.e. how far
behind ground truth the detector ran.  MTTR here is the incident's
open duration: detection-to-all-clear on the simulation clock.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.incidents.correlate import Evidence, Suspect, rank_suspects
from repro.incidents.detect import SEVERITY_RANK, Alert

#: Alerts whose windows are within this many sim-ms of each other are
#: folded into one incident — detection flaps around a single fault
#: should not page twice.
GROUP_GAP_MS = 1_000.0


@dataclass
class Incident:
    """One maximal group of overlapping alerts."""

    index: int
    started_ms: float
    ended_ms: float
    alerts: List[Alert] = field(default_factory=list)
    suspects: List[Suspect] = field(default_factory=list)
    mttd_ms: Optional[float] = None
    """Delay from first injected fault to detection; None when the run
    had no injected faults (nothing to measure against)."""

    @property
    def rules(self) -> List[str]:
        """Sorted unique rule names that fired in this incident."""
        return sorted({alert.rule for alert in self.alerts})

    @property
    def severity(self) -> str:
        """The worst severity among the member alerts."""
        worst = "info"
        for alert in self.alerts:
            if SEVERITY_RANK.get(alert.severity, 0) > SEVERITY_RANK[worst]:
                worst = alert.severity
        return worst

    @property
    def mttr_ms(self) -> float:
        """Detection-to-all-clear duration on the sim clock."""
        return max(0.0, self.ended_ms - self.started_ms)

    @property
    def resolved(self) -> bool:
        return all(alert.resolved for alert in self.alerts)

    @property
    def top_suspect(self) -> Optional[Suspect]:
        return self.suspects[0] if self.suspects else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "started_ms": self.started_ms,
            "ended_ms": self.ended_ms,
            "severity": self.severity,
            "mttd_ms": self.mttd_ms,
            "mttr_ms": self.mttr_ms,
            "resolved": self.resolved,
            "rules": self.rules,
            "alerts": [alert.as_dict() for alert in self.alerts],
            "suspects": [suspect.as_dict() for suspect in self.suspects],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Incident":
        return cls(
            index=int(data.get("index", 0)),
            started_ms=float(data["started_ms"]),
            ended_ms=float(data["ended_ms"]),
            alerts=[Alert.from_dict(a) for a in data.get("alerts", ())],
            suspects=[Suspect.from_dict(s) for s in data.get("suspects", ())],
            mttd_ms=(
                None if data.get("mttd_ms") is None
                else float(data["mttd_ms"])
            ),
        )


def group_alerts(
    alerts: Sequence[Alert],
    gap_ms: float = GROUP_GAP_MS,
    end_ms: Optional[float] = None,
) -> List[Incident]:
    """Fold alert windows into incidents by temporal overlap.

    Alerts are swept in start order; an alert joins the open incident
    when it starts within ``gap_ms`` of the incident's current end,
    else it opens a new one.  A still-firing alert (``ended_ms`` None)
    extends its incident to ``end_ms`` (or its own start when no run
    end is known).
    """
    def end_of(alert: Alert) -> float:
        if alert.ended_ms is not None:
            return alert.ended_ms
        return end_ms if end_ms is not None else alert.started_ms

    incidents: List[Incident] = []
    for alert in sorted(alerts, key=lambda a: (a.started_ms, a.rule)):
        if incidents and alert.started_ms <= incidents[-1].ended_ms + gap_ms:
            incident = incidents[-1]
            incident.alerts.append(alert)
            incident.ended_ms = max(incident.ended_ms, end_of(alert))
        else:
            incidents.append(Incident(
                index=len(incidents),
                started_ms=alert.started_ms,
                ended_ms=end_of(alert),
                alerts=[alert],
            ))
    return incidents


@dataclass
class IncidentReport:
    """A run's detection outcome: incidents + run-level context."""

    scenario: str = ""
    seed: int = 0
    incidents: List[Incident] = field(default_factory=list)
    first_fault_at_ms: Optional[float] = None
    end_ms: float = 0.0
    alerts_total: int = 0
    """Every firing window evaluated, incl. ones folded into incidents."""

    @property
    def detected(self) -> bool:
        return bool(self.incidents)

    @property
    def mttd_ms(self) -> Optional[float]:
        """Earliest incident's detection delay (the headline MTTD)."""
        delays = [
            i.mttd_ms for i in self.incidents if i.mttd_ms is not None
        ]
        return min(delays) if delays else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "first_fault_at_ms": self.first_fault_at_ms,
            "end_ms": self.end_ms,
            "alerts_total": self.alerts_total,
            "mttd_ms": self.mttd_ms,
            "incidents": [incident.as_dict() for incident in self.incidents],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IncidentReport":
        return cls(
            scenario=str(data.get("scenario", "")),
            seed=int(data.get("seed", 0)),
            incidents=[
                Incident.from_dict(entry)
                for entry in data.get("incidents", ())
            ],
            first_fault_at_ms=(
                None if data.get("first_fault_at_ms") is None
                else float(data["first_fault_at_ms"])
            ),
            end_ms=float(data.get("end_ms", 0.0)),
            alerts_total=int(data.get("alerts_total", 0)),
        )

    def save(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # -- renderings ----------------------------------------------------
    def render(self) -> str:
        """Terminal incident timeline (what ``repro incidents`` prints)."""
        lines: List[str] = []
        title = f"incident report · scenario={self.scenario or '-'}"
        lines.append(title)
        lines.append("=" * len(title))
        if self.first_fault_at_ms is not None:
            lines.append(f"first fault injected at {self.first_fault_at_ms:.0f} ms")
        if not self.incidents:
            lines.append("no incidents detected")
            return "\n".join(lines)
        for incident in self.incidents:
            mttd = (
                f"{incident.mttd_ms:.0f} ms" if incident.mttd_ms is not None
                else "n/a"
            )
            lines.append("")
            lines.append(
                f"incident #{incident.index} [{incident.severity}] "
                f"{incident.started_ms:.0f}..{incident.ended_ms:.0f} ms "
                f"(MTTD {mttd}, MTTR {incident.mttr_ms:.0f} ms"
                + ("" if incident.resolved else ", UNRESOLVED at run end")
                + ")"
            )
            for alert in incident.alerts:
                end = (
                    f"{alert.ended_ms:.0f}" if alert.ended_ms is not None
                    else "…"
                )
                lines.append(
                    f"  alert {alert.rule} [{alert.severity}] "
                    f"{alert.started_ms:.0f}..{end} ms  ({alert.condition})"
                )
            for rank, suspect in enumerate(incident.suspects[:5], start=1):
                lines.append(
                    f"  suspect {rank}. {suspect.label} "
                    f"(score {suspect.score:.2f})"
                )
                for item in suspect.evidence:
                    lines.append(f"       - {item}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown incident timeline (for artifacts / PR comments)."""
        lines: List[str] = []
        lines.append(f"# Incident report — `{self.scenario or 'run'}`")
        lines.append("")
        if self.first_fault_at_ms is not None:
            lines.append(
                f"First fault injected at **{self.first_fault_at_ms:.0f} ms**."
            )
        if not self.incidents:
            lines.append("No incidents detected.")
            return "\n".join(lines) + "\n"
        lines.append(
            f"{len(self.incidents)} incident(s), "
            f"{self.alerts_total} alert firing window(s)."
        )
        for incident in self.incidents:
            mttd = (
                f"{incident.mttd_ms:.0f} ms" if incident.mttd_ms is not None
                else "n/a"
            )
            lines.append("")
            lines.append(
                f"## Incident {incident.index} — {incident.severity} — "
                f"{incident.started_ms:.0f}–{incident.ended_ms:.0f} ms"
            )
            lines.append("")
            lines.append(f"- **MTTD**: {mttd}")
            lines.append(f"- **MTTR**: {incident.mttr_ms:.0f} ms"
                         + ("" if incident.resolved
                            else " (unresolved at run end)"))
            lines.append("")
            lines.append("| alert | severity | window (ms) | condition |")
            lines.append("|---|---|---|---|")
            for alert in incident.alerts:
                end = (
                    f"{alert.ended_ms:.0f}" if alert.ended_ms is not None
                    else "…"
                )
                lines.append(
                    f"| `{alert.rule}` | {alert.severity} "
                    f"| {alert.started_ms:.0f}–{end} "
                    f"| `{alert.condition}` |"
                )
            if incident.suspects:
                lines.append("")
                lines.append("| rank | suspect | score | evidence |")
                lines.append("|---|---|---|---|")
                for rank, suspect in enumerate(incident.suspects[:5], 1):
                    evidence = "; ".join(suspect.evidence)
                    lines.append(
                        f"| {rank} | {suspect.label} "
                        f"| {suspect.score:.2f} | {evidence} |"
                    )
        return "\n".join(lines) + "\n"


def build_report(
    alerts: Sequence[Alert],
    evidence: Optional[Evidence] = None,
    *,
    scenario: str = "",
    seed: int = 0,
    first_fault_at_ms: Optional[float] = None,
    end_ms: float = 0.0,
    gap_ms: float = GROUP_GAP_MS,
) -> IncidentReport:
    """Group alerts, attribute each incident, assemble the report."""
    if evidence is None:
        evidence = Evidence()
    incidents = group_alerts(alerts, gap_ms=gap_ms, end_ms=end_ms or None)
    for incident in incidents:
        incident.suspects = rank_suspects(incident, evidence)
        if first_fault_at_ms is not None:
            incident.mttd_ms = max(
                0.0, incident.started_ms - first_fault_at_ms
            )
    return IncidentReport(
        scenario=scenario,
        seed=seed,
        incidents=incidents,
        first_fault_at_ms=first_fault_at_ms,
        end_ms=end_ms,
        alerts_total=len(alerts),
    )


def load_report(path: str) -> IncidentReport:
    """Read an ``incidents.json`` written by :meth:`IncidentReport.save`."""
    with open(path) as handle:
        data = json.load(handle)
    return IncidentReport.from_dict(data)
