"""The alerting rule DSL: signals, rules, and the default catalog.

A rule binds a :class:`Signal` — a recipe for reducing one sample of
the telemetry :class:`~repro.telemetry.sampler.TimeSeries` to a single
scalar — to a firing condition.  Three rule families cover the SRE
toolbox:

* :class:`ThresholdRule` — static comparison, optionally sustained
  (``for_ms``) before it fires;
* :class:`AnomalyRule` — EWMA mean/variance z-score detector with a
  warm-up period, an absolute-deviation guard (so near-constant
  signals don't z-explode), and a baseline that freezes while firing
  (the anomaly must not drag its own baseline after it);
* :class:`BurnRateRule` — Google-SRE-style multi-window burn rate on
  a bad/total counter pair: fires only when both the long window
  (budget actually burning) and the short window (still burning *now*)
  exceed the factor.

Rules are plain data: they round-trip through JSON
(:func:`rule_to_dict` / :func:`rule_from_dict` / :func:`load_rules`)
and carry no evaluation state — the per-run state lives in the
:class:`~repro.incidents.detect.AlertEngine`.

Everything here is pure arithmetic over sampled values: no simulated
time, no randomness, so attaching detectors cannot change a run's
event hash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

#: Signal reduction modes (see :meth:`Signal.validate`).
SIGNAL_MODES = (
    "gauge",    # per-sample sum of the family's series
    "delta",    # per-interval increase of a cumulative family
    "rate",     # per-interval increase per second
    "mean",     # delta(<metric>_sum) / delta(<metric>_count)
    "ratio",    # delta(metric) / (delta(metric) + delta(divisor))
    "frac",     # delta(metric) / delta(divisor)
    "gap",      # gauge(metric) - gauge(divisor)
    "jain",     # Jain index over per-tenant interval deltas of metric
)

SEVERITIES = ("info", "warn", "page")


@dataclass(frozen=True)
class Signal:
    """How to reduce one telemetry sample to a scalar.

    ``metric`` names a family; every series belonging to it is summed
    (after the optional ``{"label": "value"}`` filter in ``labels``).
    ``divisor`` names the second family for the two-family modes.
    Evaluation yields ``None`` for intervals with no data (no ops, no
    observations) — detectors treat that as a gap, not a zero.
    """

    metric: str
    mode: str = "rate"
    divisor: str = ""
    labels: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in SIGNAL_MODES:
            raise ValueError(
                f"unknown signal mode {self.mode!r}; one of {SIGNAL_MODES}"
            )
        if self.mode in ("ratio", "frac", "gap") and not self.divisor:
            raise ValueError(f"signal mode {self.mode!r} needs a divisor")
        if not self.metric:
            raise ValueError("signal needs a metric family")

    def describe(self) -> str:
        if self.mode == "gauge":
            return self.metric
        if self.mode == "mean":
            return f"mean({self.metric})"
        if self.mode == "ratio":
            return f"{self.metric}/({self.metric}+{self.divisor})"
        if self.mode == "frac":
            return f"{self.metric}/{self.divisor}"
        if self.mode == "gap":
            return f"{self.metric}-{self.divisor}"
        if self.mode == "jain":
            return f"jain({self.metric})"
        return f"{self.mode}({self.metric})"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"metric": self.metric, "mode": self.mode}
        if self.divisor:
            out["divisor"] = self.divisor
        if self.labels:
            out["labels"] = dict(self.labels)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Signal":
        unknown = set(data) - {"metric", "mode", "divisor", "labels"}
        if unknown:
            raise ValueError(f"unknown Signal field(s): {sorted(unknown)}")
        return cls(
            metric=str(data["metric"]),
            mode=str(data.get("mode", "rate")),
            divisor=str(data.get("divisor", "")),
            labels=dict(data.get("labels", {})),
        )


def _validate_common(name: str, severity: str, for_ms: float) -> None:
    if not name:
        raise ValueError("rule needs a name")
    if severity not in SEVERITIES:
        raise ValueError(
            f"{name}: unknown severity {severity!r}; one of {SEVERITIES}"
        )
    if for_ms < 0:
        raise ValueError(f"{name}: for_ms must be >= 0")


@dataclass(frozen=True)
class ThresholdRule:
    """Fire while ``signal <op> threshold``, sustained ``for_ms``."""

    name: str
    signal: Signal
    threshold: float
    op: str = ">"
    for_ms: float = 0.0
    severity: str = "page"
    description: str = ""

    kind = "threshold"

    def __post_init__(self) -> None:
        _validate_common(self.name, self.severity, self.for_ms)
        if self.op not in (">", "<"):
            raise ValueError(f"{self.name}: op must be '>' or '<'")

    def condition(self) -> str:
        return f"{self.signal.describe()} {self.op} {self.threshold:g}"


@dataclass(frozen=True)
class AnomalyRule:
    """Fire when the signal leaves its EWMA band by ``z`` deviations.

    ``alpha`` is the EWMA smoothing factor for both the mean and the
    variance estimate; ``warmup`` samples must be seen before the rule
    may fire; ``min_delta`` is an absolute floor on the deviation (a
    flat-lined signal has near-zero variance, so a trivial wiggle
    would otherwise z-explode).  While firing, the baseline freezes —
    recovery is judged against the pre-anomaly band.
    """

    name: str
    signal: Signal
    z: float = 4.0
    alpha: float = 0.3
    warmup: int = 5
    min_delta: float = 0.0
    direction: str = "above"
    for_ms: float = 0.0
    severity: str = "page"
    description: str = ""

    kind = "anomaly"

    def __post_init__(self) -> None:
        _validate_common(self.name, self.severity, self.for_ms)
        if self.z <= 0:
            raise ValueError(f"{self.name}: z must be > 0")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"{self.name}: alpha must be in (0, 1]")
        if self.warmup < 2:
            raise ValueError(f"{self.name}: warmup must be >= 2")
        if self.direction not in ("above", "below", "both"):
            raise ValueError(
                f"{self.name}: direction must be above/below/both"
            )

    def condition(self) -> str:
        sign = {"above": "+", "below": "-", "both": "±"}[self.direction]
        return f"{self.signal.describe()} {sign}{self.z:g}σ off EWMA"


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window, multi-burn-rate SLO rule (Google SRE workbook).

    Burn rate over a window = (bad events / total events) divided by
    the error budget.  The rule fires when **both** the long window
    and the short window burn above ``factor`` — the long window
    proves budget is actually being consumed, the short window proves
    it is still being consumed right now (so recovered incidents stop
    paging the moment the short window drains).
    """

    name: str
    bad: Signal
    total: Signal
    error_budget: float = 0.01
    long_ms: float = 4_000.0
    short_ms: float = 1_000.0
    factor: float = 8.0
    severity: str = "page"
    description: str = ""

    kind = "burn_rate"

    def __post_init__(self) -> None:
        _validate_common(self.name, self.severity, 0.0)
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError(
                f"{self.name}: error_budget must be in (0, 1)"
            )
        if self.short_ms <= 0 or self.long_ms <= 0:
            raise ValueError(f"{self.name}: windows must be positive")
        if self.short_ms > self.long_ms:
            raise ValueError(
                f"{self.name}: short window must not exceed the long one"
            )
        if self.factor <= 0:
            raise ValueError(f"{self.name}: factor must be > 0")

    def condition(self) -> str:
        return (
            f"burn({self.bad.describe()}/{self.total.describe()})"
            f" > {self.factor:g}x over {self.long_ms:g}ms"
            f" AND {self.short_ms:g}ms"
        )


Rule = Union[ThresholdRule, AnomalyRule, BurnRateRule]

_RULE_TYPES: Dict[str, type] = {
    "threshold": ThresholdRule,
    "anomaly": AnomalyRule,
    "burn_rate": BurnRateRule,
}


def rule_to_dict(rule: Rule) -> Dict[str, Any]:
    """JSON form of one rule (inverse of :func:`rule_from_dict`)."""
    out: Dict[str, Any] = {"type": rule.kind, "name": rule.name}
    if rule.severity != "page":
        out["severity"] = rule.severity
    if rule.description:
        out["description"] = rule.description
    if isinstance(rule, ThresholdRule):
        out.update({
            "signal": rule.signal.to_dict(),
            "threshold": rule.threshold,
            "op": rule.op,
        })
        if rule.for_ms:
            out["for_ms"] = rule.for_ms
    elif isinstance(rule, AnomalyRule):
        out.update({
            "signal": rule.signal.to_dict(),
            "z": rule.z,
            "alpha": rule.alpha,
            "warmup": rule.warmup,
            "min_delta": rule.min_delta,
            "direction": rule.direction,
        })
        if rule.for_ms:
            out["for_ms"] = rule.for_ms
    else:
        out.update({
            "bad": rule.bad.to_dict(),
            "total": rule.total.to_dict(),
            "error_budget": rule.error_budget,
            "long_ms": rule.long_ms,
            "short_ms": rule.short_ms,
            "factor": rule.factor,
        })
    return out


def rule_from_dict(data: Mapping[str, Any]) -> Rule:
    kind = data.get("type")
    if kind not in _RULE_TYPES:
        raise ValueError(
            f"unknown rule type {kind!r}; one of {sorted(_RULE_TYPES)}"
        )
    fields = dict(data)
    fields.pop("type")
    try:
        if kind == "burn_rate":
            fields["bad"] = Signal.from_dict(fields["bad"])
            fields["total"] = Signal.from_dict(fields["total"])
        else:
            fields["signal"] = Signal.from_dict(fields["signal"])
    except KeyError as exc:
        raise ValueError(f"rule {data.get('name')!r} missing {exc}") from exc
    try:
        return _RULE_TYPES[kind](**fields)
    except TypeError as exc:
        raise ValueError(f"rule {data.get('name')!r}: {exc}") from exc


def rules_to_json(rules: Sequence[Rule]) -> str:
    return json.dumps(
        {"version": 1, "rules": [rule_to_dict(rule) for rule in rules]},
        indent=2, sort_keys=True,
    ) + "\n"


def load_rules(source: Union[str, Mapping[str, Any]]) -> List[Rule]:
    """Load a rule list from a JSON file path or a parsed document."""
    if isinstance(source, str):
        with open(source) as handle:
            data = json.load(handle)
    else:
        data = source
    entries = data.get("rules", []) if isinstance(data, Mapping) else data
    rules = [rule_from_dict(entry) for entry in entries]
    names = [rule.name for rule in rules]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(f"duplicate rule name(s): {duplicates}")
    return rules


def save_rules(rules: Sequence[Rule], path: str) -> str:
    with open(path, "w") as handle:
        handle.write(rules_to_json(rules))
    return path


# -- the default catalog ------------------------------------------------

def default_rules() -> List[Rule]:
    """The built-in rule catalog for λFS chaos/workload runs.

    One rule per failure symptom the fault catalog can produce, so the
    root-cause signatures in :mod:`repro.incidents.correlate` have a
    vocabulary to point at.  Returns fresh instances every call —
    rules are frozen, but callers may extend the list.
    """
    return [
        AnomalyRule(
            name="latency-anomaly",
            signal=Signal("op_latency_ms", mode="mean"),
            z=3.5, alpha=0.3, warmup=6, min_delta=2.0,
            description="per-interval mean op latency left its EWMA band",
        ),
        BurnRateRule(
            name="error-burn-fast",
            bad=Signal("ops_failed_total", mode="delta"),
            total=Signal("ops_total", mode="delta"),
            error_budget=0.02, long_ms=3_000.0, short_ms=1_000.0,
            factor=8.0,
            description="availability SLO burning at page speed "
                        "(both windows hot)",
        ),
        BurnRateRule(
            name="error-burn-slow",
            bad=Signal("ops_failed_total", mode="delta"),
            total=Signal("ops_total", mode="delta"),
            error_budget=0.02, long_ms=8_000.0, short_ms=2_000.0,
            factor=2.0, severity="warn",
            description="availability SLO burning at ticket speed",
        ),
        AnomalyRule(
            name="ack-latency-anomaly",
            signal=Signal("coord_ack_latency_ms", mode="mean"),
            z=3.5, alpha=0.3, warmup=4, min_delta=1.0,
            description="coordinator INV/ACK round latency anomalous",
        ),
        AnomalyRule(
            name="cache-hit-drop",
            signal=Signal(
                "cache_hits_total", mode="ratio",
                divisor="cache_misses_total",
            ),
            z=3.5, alpha=0.3, warmup=6, min_delta=0.15,
            direction="below", severity="warn",
            description="fleet cache hit-rate fell out of its band",
        ),
        AnomalyRule(
            name="retry-spike",
            signal=Signal("rpc_retries_total", mode="rate"),
            z=4.0, alpha=0.3, warmup=4, min_delta=8.0,
            description="RPC retry rate spiked",
        ),
        AnomalyRule(
            name="reconnect-spike",
            signal=Signal("tcp_connections_opened_total", mode="rate"),
            z=4.0, alpha=0.3, warmup=4, min_delta=4.0,
            description="TCP reconnect storm (fabric churn)",
        ),
        ThresholdRule(
            name="instance-terminations",
            signal=Signal("faas_terminations_total", mode="delta"),
            threshold=0.5, op=">",
            description="serving instance(s) terminated this interval "
                        "(the kubelet-NotReady of this stack)",
        ),
        ThresholdRule(
            name="connection-churn",
            signal=Signal("tcp_connections_closed_total", mode="delta"),
            threshold=2.5, op=">", severity="warn",
            description="a burst of TCP connections torn down in one "
                        "interval (partition or mass instance loss)",
        ),
        AnomalyRule(
            name="cold-start-spike",
            signal=Signal("faas_cold_starts_total", mode="rate"),
            z=4.0, alpha=0.3, warmup=4, min_delta=2.0,
            description="cold-start rate spiked (instances dying or "
                        "fleet churning)",
        ),
        ThresholdRule(
            name="fleet-gap",
            signal=Signal(
                "fleet_desired_namenodes", mode="gap",
                divisor="fleet_actual_namenodes",
            ),
            threshold=1.5, op=">", for_ms=500.0, severity="warn",
            description="autoscaler wants >1.5 more NameNodes than "
                        "are live (scale-out lagging)",
        ),
        AnomalyRule(
            name="store-queue-depth",
            signal=Signal("store_shard_queue_depth", mode="gauge"),
            z=4.0, alpha=0.3, warmup=4, min_delta=4.0,
            description="metastore shard queues building",
        ),
        ThresholdRule(
            name="fairness-dip",
            signal=Signal("tenant_ops_total", mode="jain"),
            threshold=0.6, op="<", for_ms=500.0,
            description="cross-tenant Jain throughput index collapsed",
        ),
        ThresholdRule(
            name="datanode-deaths",
            signal=Signal("dn_deaths_total", mode="delta"),
            threshold=0.5, op=">",
            description="DataNode(s) declared dead this interval",
        ),
        ThresholdRule(
            name="underreplicated-blocks",
            signal=Signal("dn_underreplicated_seen_total", mode="delta"),
            threshold=0.5, op=">", severity="warn",
            description="replication scanner found under-replicated "
                        "blocks",
        ),
        ThresholdRule(
            name="breaker-open",
            signal=Signal(
                "resilience_breaker_transitions_total", mode="delta",
                labels={"to": "open"},
            ),
            threshold=0.5, op=">",
            description="circuit breaker(s) tripped open this interval "
                        "(a destination is failing or slow)",
        ),
        ThresholdRule(
            name="shed-spike",
            signal=Signal("resilience_sheds_total", mode="delta"),
            threshold=2.5, op=">", severity="warn",
            description="admission control shedding load (overload or "
                        "expired deadlines at the door)",
        ),
        ThresholdRule(
            name="deadline-give-ups",
            signal=Signal("resilience_deadline_expired_total", mode="delta"),
            threshold=2.5, op=">", severity="warn",
            description="ops abandoning work mid-flight as end-to-end "
                        "deadlines expire (system slower than its SLO)",
        ),
    ]


#: Named rule-set registry (``repro incidents --rules <name>`` and
#: tests extend this; keep module state re-entrant via the hermetic
#: conftest snapshot in tests/incidents).
RULESETS: Dict[str, Callable[[], List[Rule]]] = {
    "default": default_rules,
}


def register_ruleset(name: str, builder: Callable[[], List[Rule]]) -> None:
    """Register a named rule-set builder (overwrites an existing name)."""
    if not name:
        raise ValueError("ruleset needs a name")
    RULESETS[name] = builder


def get_ruleset(name: str) -> List[Rule]:
    if name not in RULESETS:
        raise KeyError(
            f"unknown ruleset {name!r}; registered: {sorted(RULESETS)}"
        )
    return RULESETS[name]()
