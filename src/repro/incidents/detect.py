"""The online alert engine: rule evaluation as sampling proceeds.

An :class:`AlertEngine` hangs off the telemetry sampler's
``on_sample`` hook (:meth:`repro.telemetry.Telemetry.attach_detector`)
and evaluates its rule list against every new sample the moment it
lands — detection happens *during* the run, on the simulation clock,
exactly like a Prometheus/Alertmanager pair watching a live fleet.

The engine is strictly read-only over the simulation: it consumes no
RNG, schedules no events, and touches nothing but its own state (and,
when given a registry, the ``alerts_*`` mirror families) — so a run
with detection attached produces a byte-identical event hash to one
without.  Evaluation is incremental: each call processes only samples
appended since the last, so the online hook and the offline
:meth:`replay` path share one code path and one result.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry.registry import parse_series_key
from repro.tenants.fairness import jain_index

from repro.incidents.rules import (
    AnomalyRule,
    BurnRateRule,
    Rule,
    Signal,
    ThresholdRule,
    default_rules,
)

#: Severity ordering for incident roll-ups.
SEVERITY_RANK = {"info": 0, "warn": 1, "page": 2}


@dataclass
class Alert:
    """One contiguous firing window of one rule."""

    rule: str
    severity: str
    condition: str
    started_ms: float
    ended_ms: Optional[float] = None
    value: float = 0.0
    """Signal value at the instant the alert opened."""
    peak_value: float = 0.0
    """Most extreme value observed while firing."""
    resolved: bool = True
    """False when the run ended with the alert still firing."""

    @property
    def firing(self) -> bool:
        return self.ended_ms is None

    def duration_ms(self, end_ms: Optional[float] = None) -> float:
        end = self.ended_ms if self.ended_ms is not None else end_ms
        if end is None:
            return 0.0
        return max(0.0, end - self.started_ms)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "condition": self.condition,
            "started_ms": self.started_ms,
            "ended_ms": self.ended_ms,
            "value": self.value,
            "peak_value": self.peak_value,
            "resolved": self.resolved,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Alert":
        return cls(
            rule=str(data["rule"]),
            severity=str(data.get("severity", "page")),
            condition=str(data.get("condition", "")),
            started_ms=float(data["started_ms"]),
            ended_ms=(
                None if data.get("ended_ms") is None
                else float(data["ended_ms"])
            ),
            value=float(data.get("value", 0.0)),
            peak_value=float(data.get("peak_value", 0.0)),
            resolved=bool(data.get("resolved", True)),
        )

    def __str__(self) -> str:
        end = "firing" if self.ended_ms is None else f"{self.ended_ms:.0f}"
        return (f"[{self.severity}] {self.rule} "
                f"{self.started_ms:.0f}..{end} ms")


class _FamilyTotals:
    """Incremental per-sample sum of one metric family.

    Series keys are classified once (parse results memoised) so the
    per-sample cost is one dict lookup per series.
    """

    __slots__ = ("family", "labels", "_known", "total", "prev_total", "seen")

    def __init__(self, family: str, labels: Optional[Mapping[str, str]] = None):
        self.family = family
        self.labels = dict(labels or {})
        self._known: Dict[str, bool] = {}
        self.total = 0.0
        self.prev_total = 0.0
        self.seen = False
        """True once any series of this family has appeared."""

    def update(self, values: Mapping[str, float]) -> None:
        self.prev_total = self.total
        total = 0.0
        matched = False
        for key, value in values.items():
            include = self._known.get(key)
            if include is None:
                name, labels = parse_series_key(key)
                include = name == self.family and all(
                    labels.get(k) == v for k, v in self.labels.items()
                )
                self._known[key] = include
            if include:
                total += value
                matched = True
        self.total = total
        self.seen = self.seen or matched

    @property
    def delta(self) -> float:
        return max(0.0, self.total - self.prev_total)


class _TenantTotals:
    """Per-tenant incremental totals of one family (for Jain signals)."""

    __slots__ = ("family", "_tenant_of", "totals", "prev")

    def __init__(self, family: str):
        self.family = family
        self._tenant_of: Dict[str, Optional[str]] = {}
        self.totals: Dict[str, float] = {}
        self.prev: Dict[str, float] = {}

    def update(self, values: Mapping[str, float]) -> None:
        self.prev = dict(self.totals)
        totals: Dict[str, float] = {}
        for key, value in values.items():
            tenant = self._tenant_of.get(key, "")
            if tenant == "":
                name, labels = parse_series_key(key)
                tenant = labels.get("tenant") if name == self.family else None
                self._tenant_of[key] = tenant
            if tenant is not None:
                totals[tenant] = totals.get(tenant, 0.0) + value
        # Tenants stop being reported only if the registry resets;
        # keep the stale cumulative value so deltas stay >= 0.
        for tenant, value in self.totals.items():
            totals.setdefault(tenant, value)
        self.totals = totals

    def deltas(self) -> Dict[str, float]:
        return {
            tenant: max(0.0, value - self.prev.get(tenant, 0.0))
            for tenant, value in self.totals.items()
        }


class _SignalEval:
    """Evaluates one :class:`Signal` against the tracked totals."""

    def __init__(self, signal: Signal, engine: "AlertEngine") -> None:
        self.signal = signal
        mode = signal.mode
        if mode == "jain":
            self._tenants = engine._tenant_totals(signal.metric)
            return
        if mode == "mean":
            self._num = engine._family(f"{signal.metric}_sum", signal.labels)
            self._den = engine._family(f"{signal.metric}_count", signal.labels)
        elif mode in ("ratio", "frac", "gap"):
            self._num = engine._family(signal.metric, signal.labels)
            self._den = engine._family(signal.divisor, signal.labels)
        else:
            self._num = engine._family(signal.metric, signal.labels)
            self._den = None

    def value(self, dt_ms: Optional[float]) -> Optional[float]:
        """The signal at the current sample; None = no data (a gap)."""
        mode = self.signal.mode
        if mode == "jain":
            deltas = self._tenants.deltas()
            shares = [deltas[t] for t in sorted(deltas)]
            if len(shares) < 2 or sum(shares) <= 0:
                return None
            return jain_index(shares)
        num = self._num
        if mode == "gauge":
            return num.total if num.seen else None
        if mode == "delta":
            return num.delta if num.seen else None
        if mode == "rate":
            if not num.seen or dt_ms is None or dt_ms <= 0:
                return None
            return num.delta / (dt_ms / 1_000.0)
        if mode == "mean":
            count = self._den.delta
            if count <= 0:
                return None
            return num.delta / count
        if mode == "ratio":
            total = num.delta + self._den.delta
            if total <= 0:
                return None
            return num.delta / total
        if mode == "frac":
            if self._den.delta <= 0:
                return None
            return num.delta / self._den.delta
        if mode == "gap":
            if not (num.seen or self._den.seen):
                return None
            return num.total - self._den.total
        raise AssertionError(f"unhandled signal mode {mode!r}")


class _RuleRuntime:
    """Per-rule firing state machine (shared sustain/alert logic)."""

    def __init__(self, rule: Rule, engine: "AlertEngine") -> None:
        self.rule = rule
        self.engine = engine
        self.pending_since: Optional[float] = None
        self.alert: Optional[Alert] = None
        if isinstance(rule, BurnRateRule):
            self._bad = _SignalEval(rule.bad, engine)
            self._total = _SignalEval(rule.total, engine)
            self._window: deque = deque()
        else:
            self._signal = _SignalEval(rule.signal, engine)
        if isinstance(rule, AnomalyRule):
            self._mean = 0.0
            self._var = 0.0
            self._seen = 0

    # -- per-kind condition evaluation ---------------------------------
    def _condition(
        self, t_ms: float, dt_ms: Optional[float]
    ) -> Tuple[Optional[bool], float]:
        rule = self.rule
        if isinstance(rule, ThresholdRule):
            value = self._signal.value(dt_ms)
            if value is None or not math.isfinite(value):
                return None, 0.0
            met = value > rule.threshold if rule.op == ">" else value < rule.threshold
            return met, value

        if isinstance(rule, AnomalyRule):
            value = self._signal.value(dt_ms)
            if value is None or not math.isfinite(value):
                return None, 0.0
            if self._seen < rule.warmup:
                self._ewma(value, rule.alpha)
                self._seen += 1
                return False, value
            deviation = value - self._mean
            sigma = math.sqrt(max(self._var, 1e-12))
            above = (
                deviation > rule.z * sigma and deviation > rule.min_delta
            )
            below = (
                -deviation > rule.z * sigma and -deviation > rule.min_delta
            )
            if rule.direction == "above":
                met = above
            elif rule.direction == "below":
                met = below
            else:
                met = above or below
            if not met and self.alert is None:
                # Baseline freezes while firing (and while a sustain
                # window is pending): the anomaly must not teach the
                # detector that anomalous is normal.
                self._ewma(value, rule.alpha)
            return met, value

        # burn rate
        bad = self._bad.value(dt_ms)
        total = self._total.value(dt_ms)
        self._window.append((t_ms, bad or 0.0, total or 0.0))
        horizon = t_ms - rule.long_ms
        while self._window and self._window[0][0] <= horizon:
            self._window.popleft()
        burn_long = self._burn(t_ms - rule.long_ms, rule)
        burn_short = self._burn(t_ms - rule.short_ms, rule)
        if burn_long is None or burn_short is None:
            return None, 0.0
        met = burn_long >= rule.factor and burn_short >= rule.factor
        return met, burn_long

    def _burn(self, since_ms: float, rule: BurnRateRule) -> Optional[float]:
        bad = total = 0.0
        for t, b, n in self._window:
            if t > since_ms:
                bad += b
                total += n
        if total <= 0:
            return None
        return (bad / total) / rule.error_budget

    def _ewma(self, value: float, alpha: float) -> None:
        if self._seen == 0:
            self._mean = value
            self._var = 0.0
            return
        deviation = value - self._mean
        self._mean += alpha * deviation
        self._var = (1.0 - alpha) * (self._var + alpha * deviation * deviation)

    # -- lifecycle -----------------------------------------------------
    def step(self, t_ms: float, dt_ms: Optional[float]) -> None:
        met, value = self._condition(t_ms, dt_ms)
        if met is None:
            # Data gap: keep state; an open alert stays open rather
            # than flapping shut because nobody completed an op.
            return
        rule = self.rule
        for_ms = getattr(rule, "for_ms", 0.0)
        if met:
            if self.pending_since is None:
                self.pending_since = t_ms
            if self.alert is None and t_ms - self.pending_since >= for_ms:
                self.alert = Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    condition=rule.condition(),
                    started_ms=self.pending_since,
                    value=value,
                    peak_value=value,
                )
                self.engine._opened(self.alert)
            elif self.alert is not None:
                if abs(value) > abs(self.alert.peak_value):
                    self.alert.peak_value = value
        else:
            self.pending_since = None
            if self.alert is not None:
                self.alert.ended_ms = t_ms
                self.engine._closed(self.alert)
                self.alert = None

    def finish(self, end_ms: float) -> None:
        if self.alert is not None:
            self.alert.ended_ms = end_ms
            self.alert.resolved = False
            self.engine._closed(self.alert)
            self.alert = None


class AlertEngine:
    """Evaluates a rule list over a TimeSeries, online or offline.

    Online: ``telemetry.attach_detector(AlertEngine(...))`` — the
    sampler calls :meth:`observe` after every sample.  Offline:
    :meth:`replay` over a finished (or loaded) series.  Either way,
    call :meth:`finish` when the run ends to close still-firing
    alerts; :attr:`alerts` then holds every firing window in
    chronological order.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        registry: Any = None,
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else default_rules()
        names = [rule.name for rule in self.rules]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(f"duplicate rule name(s): {duplicates}")
        self.registry = registry
        """Optional :class:`~repro.telemetry.registry.MetricsRegistry`
        mirror: firing state lands in ``alerts_firing{rule=...}`` and
        opens count into ``alerts_fired_total`` so alert activity shows
        up in the normal exports."""
        self.alerts: List[Alert] = []
        self._families: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _FamilyTotals] = {}
        self._tenants: Dict[str, _TenantTotals] = {}
        self._cursor = 0
        self._prev_t: Optional[float] = None
        self.finished_at_ms: Optional[float] = None
        self._runtimes = [_RuleRuntime(rule, self) for rule in self.rules]

    # -- tracker registry (shared across signals) ----------------------
    def _family(
        self, family: str, labels: Optional[Mapping[str, str]] = None
    ) -> _FamilyTotals:
        key = (family, tuple(sorted((labels or {}).items())))
        tracker = self._families.get(key)
        if tracker is None:
            tracker = _FamilyTotals(family, labels)
            self._families[key] = tracker
        return tracker

    def _tenant_totals(self, family: str) -> _TenantTotals:
        tracker = self._tenants.get(family)
        if tracker is None:
            tracker = _TenantTotals(family)
            self._tenants[family] = tracker
        return tracker

    # -- alert bookkeeping ---------------------------------------------
    def _opened(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if self.registry is not None:
            self.registry.set("alerts_firing", 1.0, rule=alert.rule)
            self.registry.inc(
                "alerts_fired_total",
                rule=alert.rule, severity=alert.severity,
            )

    def _closed(self, alert: Alert) -> None:
        if self.registry is not None:
            self.registry.set("alerts_firing", 0.0, rule=alert.rule)

    @property
    def firing(self) -> List[Alert]:
        return [alert for alert in self.alerts if alert.firing]

    # -- evaluation ----------------------------------------------------
    def observe(self, timeseries: Any) -> None:
        """Process every sample appended since the last call."""
        samples = timeseries.samples
        while self._cursor < len(samples):
            t_ms, values = samples[self._cursor]
            self._step(t_ms, values)
            self._cursor += 1

    def _step(self, t_ms: float, values: Mapping[str, float]) -> None:
        for tracker in self._families.values():
            tracker.update(values)
        for tracker in self._tenants.values():
            tracker.update(values)
        dt_ms = None if self._prev_t is None else t_ms - self._prev_t
        if dt_ms is not None and dt_ms <= 0:
            dt_ms = None
        for runtime in self._runtimes:
            runtime.step(t_ms, dt_ms)
        self._prev_t = t_ms

    def finish(self, end_ms: Optional[float] = None) -> List[Alert]:
        """Close still-firing alerts; returns the full alert list."""
        if end_ms is None:
            end_ms = self._prev_t if self._prev_t is not None else 0.0
        self.finished_at_ms = end_ms
        for runtime in self._runtimes:
            runtime.finish(end_ms)
        return self.alerts

    def replay(self, timeseries: Any) -> List[Alert]:
        """Offline evaluation of a finished series (one call)."""
        self.observe(timeseries)
        last = timeseries.samples[-1][0] if timeseries.samples else None
        return self.finish(last)
