"""Root-cause attribution: rank suspects for one incident window.

Given an incident (a window of temporally-overlapping alerts) and the
run's evidence — the chaos fault log, the critical-path profile, and
the telemetry series — :func:`rank_suspects` produces a scored suspect
list.  Injected faults found in the chaos log carry a 0.5 prior (the
log is ground truth that *something* was injected) topped up by how
well the fault's time window, alert signature, and critical-path
footprint match the incident; circumstantial suspects (a stage-share
shift, an autoscaler gap, coordinator ACK latency, tenant
interference) are capped below 0.5 so that when an injected fault
plausibly explains the incident it always out-ranks the circumstantial
evidence — which is exactly the detection gate's contract.

Everything here is post-hoc and read-only: no events, no RNG, no
mutation of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry.registry import parse_series_key

#: How far (sim-ms) before an incident opens a fault may lie and still
#: count as temporally linked — detection necessarily lags injection
#: by sampling interval + sustain windows.
LEAD_MS = 1_500.0

#: How long a fault's effects may linger after deactivation (queues
#: drain, retries settle) and still count as linked.
TAIL_MS = 1_500.0

#: Fault kind → the alert rules and critical-path stages it
#: characteristically lights up.  Used to corroborate (never to gate):
#: a fault with zero signature overlap still scores its 0.5 prior plus
#: the time term.
FAULT_SIGNATURES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "namenode_kill": {
        "rules": ("instance-terminations", "latency-anomaly",
                  "error-burn-fast", "error-burn-slow", "cold-start-spike",
                  "reconnect-spike", "retry-spike", "connection-churn",
                  "fleet-gap"),
        "stages": ("cold_start", "invoker_queue", "resubmit", "client_queue"),
    },
    "tcp_sever": {
        "rules": ("connection-churn", "reconnect-spike", "retry-spike",
                  "latency-anomaly"),
        "stages": ("client_queue", "http_gateway", "resubmit"),
    },
    "tcp_drop": {
        "rules": ("retry-spike", "latency-anomaly", "error-burn-fast",
                  "error-burn-slow"),
        "stages": ("resubmit", "client_queue"),
    },
    "tcp_duplicate": {
        "rules": ("retry-spike",),
        "stages": (),
    },
    "tcp_delay": {
        "rules": ("latency-anomaly",),
        "stages": ("tcp_transit",),
    },
    "http_brownout": {
        "rules": ("latency-anomaly", "error-burn-fast", "error-burn-slow",
                  "retry-spike"),
        "stages": ("http_gateway", "resubmit"),
    },
    "shard_outage": {
        "rules": ("store-queue-depth", "latency-anomaly",
                  "error-burn-fast", "error-burn-slow"),
        "stages": ("store", "lock_wait"),
    },
    "store_slowdown": {
        "rules": ("store-queue-depth", "latency-anomaly"),
        "stages": ("store", "lock_wait"),
    },
    "ack_loss": {
        "rules": ("ack-latency-anomaly", "latency-anomaly"),
        "stages": ("coherence",),
    },
    "watch_delay": {
        "rules": ("latency-anomaly", "reconnect-spike"),
        "stages": ("client_queue", "resubmit"),
    },
    "membership_flap": {
        "rules": ("reconnect-spike", "latency-anomaly"),
        "stages": ("client_queue", "resubmit"),
    },
    "cold_start_storm": {
        "rules": ("cold-start-spike", "latency-anomaly", "fleet-gap"),
        "stages": ("cold_start", "invoker_queue"),
    },
    "capacity_crunch": {
        "rules": ("fleet-gap", "latency-anomaly", "cold-start-spike",
                  "instance-terminations"),
        "stages": ("invoker_queue", "cold_start"),
    },
    "datanode_kill": {
        "rules": ("datanode-deaths", "underreplicated-blocks"),
        "stages": (),
    },
    "disk_slow": {
        "rules": ("latency-anomaly",),
        "stages": (),
    },
    "tenant_flood": {
        "rules": ("fairness-dip", "latency-anomaly"),
        "stages": ("namenode", "invoker_queue", "store"),
    },
    "load_spike": {
        "rules": ("latency-anomaly", "retry-spike", "shed-spike",
                  "deadline-give-ups", "breaker-open",
                  "error-burn-fast", "error-burn-slow"),
        "stages": ("namenode", "invoker_queue", "store", "lock_wait"),
    },
    "disable_shedding": {
        # Latching the resilience layer off has no symptom of its own —
        # it makes the *other* active faults' symptoms worse — so its
        # signature borrows the overload vocabulary minus the shed
        # rules that can no longer fire.
        "rules": ("latency-anomaly", "retry-spike",
                  "error-burn-fast", "error-burn-slow"),
        "stages": ("store", "lock_wait"),
    },
}


@dataclass
class Suspect:
    """One ranked root-cause candidate."""

    kind: str
    """``fault:<kind>`` for chaos-log suspects; ``stage:<name>``,
    ``autoscaler_gap``, ``coordinator_ack``, ``tenant_interference``
    for circumstantial ones."""
    score: float
    label: str
    evidence: List[str] = field(default_factory=list)

    @property
    def is_fault(self) -> bool:
        return self.kind.startswith("fault:")

    @property
    def fault_kind(self) -> Optional[str]:
        return self.kind[len("fault:"):] if self.is_fault else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "score": round(self.score, 4),
            "label": self.label,
            "evidence": list(self.evidence),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Suspect":
        return cls(
            kind=str(data["kind"]),
            score=float(data["score"]),
            label=str(data.get("label", data["kind"])),
            evidence=list(data.get("evidence", ())),
        )

    def __str__(self) -> str:
        return f"{self.kind} ({self.score:.2f}): {self.label}"


@dataclass
class Evidence:
    """The run-level evidence the correlator joins against.

    Every field is optional — the correlator degrades gracefully to
    whatever was recorded (``repro incidents analyze`` on a bare
    telemetry export has only the timeseries).
    """

    fault_log: Sequence[Any] = ()
    """:class:`~repro.chaos.engine.FaultEvent` entries (or their
    ``as_dict`` forms) with absolute sim-times."""
    profile: Any = None
    """A :class:`repro.profile.Profile`, for stage-share shifts."""
    timeseries: Any = None
    """The run's :class:`~repro.telemetry.sampler.TimeSeries`."""

    @property
    def fault_windows(self) -> List[Tuple[str, float, float]]:
        """(kind, activate_ms, deactivate_ms) per activation edge.

        A zero-duration (one-shot) fault yields a point window; an
        activation that never deactivated extends to +inf.
        """
        out: List[Tuple[str, float, float]] = []
        open_at: Dict[str, List[float]] = {}
        for event in self.fault_log:
            if not isinstance(event, Mapping):
                event = event.as_dict()
            kind = str(event["kind"])
            action = str(event["action"])
            t = float(event["time_ms"])
            if action == "activate":
                open_at.setdefault(kind, []).append(t)
            elif action == "deactivate" and open_at.get(kind):
                start = open_at[kind].pop(0)
                out.append((kind, start, t))
        for kind, starts in open_at.items():
            for start in starts:
                out.append((kind, start, float("inf")))
        # One-shots (activate with no deactivate edge and zero
        # duration) were just given infinite windows above; that is
        # fine for overlap math — their *effects* persist (a severed
        # connection stays severed until re-dialed).
        out.sort(key=lambda w: (w[1], w[0]))
        return out


# -- scoring terms -----------------------------------------------------

def _time_score(
    window: Tuple[float, float], incident: Tuple[float, float]
) -> float:
    """1.0 when the fault window overlaps the (lead/tail-extended)
    incident window; decays linearly with the gap otherwise."""
    f0, f1 = window
    i0, i1 = incident[0] - LEAD_MS, incident[1] + TAIL_MS
    if f0 <= i1 and f1 >= i0:
        return 1.0
    gap = (f0 - i1) if f0 > i1 else (i0 - f1)
    return max(0.0, 1.0 - gap / max(LEAD_MS, 1.0))


def _alert_score(incident_rules: Sequence[str], kind: str) -> float:
    """Fraction of the incident's firing rules the fault explains."""
    signature = FAULT_SIGNATURES.get(kind)
    if signature is None or not incident_rules:
        return 0.0
    expected = set(signature["rules"])
    hits = sum(1 for rule in incident_rules if rule in expected)
    return hits / len(set(incident_rules))


def stage_shift(
    profile: Any, t0_ms: float, t1_ms: float
) -> Dict[str, float]:
    """Per-stage share delta: ops inside [t0, t1] vs ops outside.

    Positive means the stage ate a larger share of end-to-end latency
    during the window — the critical path moved *into* that stage.
    Empty dict when either population is empty.
    """
    inside: Dict[str, float] = {}
    outside: Dict[str, float] = {}
    for op in profile.ops:
        bucket = (
            inside if (op.start_ms <= t1_ms and op.end_ms >= t0_ms)
            else outside
        )
        for stage, value in op.stages.items():
            bucket[stage] = bucket.get(stage, 0.0) + value
    total_in = sum(inside.values())
    total_out = sum(outside.values())
    if total_in <= 0 or total_out <= 0:
        return {}
    stages = set(inside) | set(outside)
    return {
        stage: inside.get(stage, 0.0) / total_in
        - outside.get(stage, 0.0) / total_out
        for stage in stages
    }


def _stage_score(shift: Mapping[str, float], kind: str) -> float:
    """How much the critical path moved into the fault's stages."""
    signature = FAULT_SIGNATURES.get(kind)
    if not signature or not shift:
        return 0.0
    gain = sum(max(0.0, shift.get(stage, 0.0)) for stage in signature["stages"])
    return min(1.0, gain / 0.10)


# -- timeseries evidence (circumstantial suspects) ---------------------

def _family_totals_at(values: Mapping[str, float], family: str) -> float:
    return sum(
        value for key, value in values.items()
        if parse_series_key(key)[0] == family
    )


def _window_samples(timeseries: Any, t0_ms: float, t1_ms: float):
    return [
        (t, values) for t, values in timeseries.samples
        if t0_ms <= t <= t1_ms
    ]


def _autoscaler_gap(timeseries: Any, t0_ms: float, t1_ms: float) -> float:
    """Largest desired-minus-actual NameNode gap inside the window."""
    gap = 0.0
    for _, values in _window_samples(timeseries, t0_ms, t1_ms):
        desired = _family_totals_at(values, "fleet_desired_namenodes")
        actual = _family_totals_at(values, "fleet_actual_namenodes")
        gap = max(gap, desired - actual)
    return gap


def _ack_latency_lift(timeseries: Any, t0_ms: float, t1_ms: float) -> float:
    """Window mean INV/ACK latency minus the whole-run mean (ms)."""
    def mean(samples) -> Optional[float]:
        if len(samples) < 2:
            return None
        count = (_family_totals_at(samples[-1][1], "coord_ack_latency_ms_count")
                 - _family_totals_at(samples[0][1], "coord_ack_latency_ms_count"))
        total = (_family_totals_at(samples[-1][1], "coord_ack_latency_ms_sum")
                 - _family_totals_at(samples[0][1], "coord_ack_latency_ms_sum"))
        if count <= 0:
            return None
        return total / count

    window_mean = mean(_window_samples(timeseries, t0_ms, t1_ms))
    run_mean = mean(timeseries.samples)
    if window_mean is None or run_mean is None:
        return 0.0
    return max(0.0, window_mean - run_mean)


def _fairness_floor(
    timeseries: Any, t0_ms: float, t1_ms: float
) -> Optional[float]:
    """Jain index of per-tenant op throughput across the window."""
    samples = _window_samples(timeseries, t0_ms, t1_ms)
    if len(samples) < 2:
        return None

    def per_tenant(values: Mapping[str, float]) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, value in values.items():
            name, labels = parse_series_key(key)
            if name == "tenant_ops_total" and "tenant" in labels:
                tenant = labels["tenant"]
                out[tenant] = out.get(tenant, 0.0) + value
        return out

    first = per_tenant(samples[0][1])
    last = per_tenant(samples[-1][1])
    tenants = sorted(set(first) | set(last))
    if len(tenants) < 2:
        return None
    shares = [
        max(0.0, last.get(t, 0.0) - first.get(t, 0.0)) for t in tenants
    ]
    total = sum(shares)
    if total <= 0:
        return None
    square_sum = sum(share * share for share in shares)
    return (total * total) / (len(shares) * square_sum)


# -- the ranker --------------------------------------------------------

def rank_suspects(incident: Any, evidence: Evidence) -> List[Suspect]:
    """Score every candidate cause for one incident, best first.

    ``incident`` needs ``started_ms``, ``ended_ms`` and ``rules``
    (the firing rule names) — duck-typed so the report layer owns the
    Incident class without a circular import.
    """
    window = (float(incident.started_ms), float(incident.ended_ms))
    rules = sorted(set(incident.rules))
    suspects: List[Suspect] = []

    shift: Dict[str, float] = {}
    if evidence.profile is not None:
        shift = stage_shift(evidence.profile, window[0], window[1])

    # Chaos-log suspects: one per fault kind (best window wins).
    best: Dict[str, Tuple[float, Tuple[float, float]]] = {}
    for kind, f0, f1 in evidence.fault_windows:
        score = _time_score((f0, f1), window)
        if kind not in best or score > best[kind][0]:
            best[kind] = (score, (f0, f1))
    for kind, (time_score, (f0, f1)) in sorted(best.items()):
        alert_score = _alert_score(rules, kind)
        stage_score = _stage_score(shift, kind)
        score = (0.5 + 0.25 * time_score + 0.15 * alert_score
                 + 0.10 * stage_score)
        ev = [
            f"injected {kind} active "
            f"{f0:.0f}..{'∞' if f1 == float('inf') else f'{f1:.0f}'} ms "
            f"(time match {time_score:.2f})",
        ]
        if alert_score > 0:
            matched = [
                r for r in rules
                if r in FAULT_SIGNATURES.get(kind, {}).get("rules", ())
            ]
            ev.append(
                f"alert signature match {alert_score:.2f} "
                f"({', '.join(matched)})"
            )
        if stage_score > 0:
            stages = FAULT_SIGNATURES.get(kind, {}).get("stages", ())
            moved = {
                stage: shift.get(stage, 0.0)
                for stage in stages if shift.get(stage, 0.0) > 0
            }
            ev.append(
                "critical path moved into "
                + ", ".join(f"{s} (+{d:.1%})" for s, d in sorted(moved.items()))
            )
        suspects.append(Suspect(
            kind=f"fault:{kind}", score=score,
            label=f"injected fault '{kind}'", evidence=ev,
        ))

    # Circumstantial suspects — capped below the fault prior (0.5).
    if shift:
        stage, delta = max(shift.items(), key=lambda item: item[1])
        if delta > 0.02:
            suspects.append(Suspect(
                kind=f"stage:{stage}",
                score=min(0.45, 0.45 * min(1.0, delta / 0.20)),
                label=f"critical-path share shifted into '{stage}'",
                evidence=[f"'{stage}' stage share +{delta:.1%} vs outside "
                          "the incident window"],
            ))

    if evidence.timeseries is not None:
        gap = _autoscaler_gap(evidence.timeseries, window[0], window[1])
        if gap > 0.5:
            suspects.append(Suspect(
                kind="autoscaler_gap",
                score=min(0.45, 0.45 * min(1.0, gap / 4.0)),
                label="autoscaler behind demand",
                evidence=[f"desired-vs-actual NameNode gap peaked at "
                          f"{gap:.1f} in the incident window"],
            ))
        lift = _ack_latency_lift(evidence.timeseries, window[0], window[1])
        if lift > 1.0:
            suspects.append(Suspect(
                kind="coordinator_ack",
                score=min(0.45, 0.45 * min(1.0, lift / 50.0)),
                label="coordinator INV/ACK latency elevated",
                evidence=[f"window mean ACK latency +{lift:.1f} ms over "
                          "the run mean"],
            ))
        jain = _fairness_floor(evidence.timeseries, window[0], window[1])
        if jain is not None and jain < 0.9:
            suspects.append(Suspect(
                kind="tenant_interference",
                score=min(0.45, 0.45 * min(1.0, (0.9 - jain) / 0.4)),
                label="tenant throughput fairness dipped",
                evidence=[f"Jain index {jain:.3f} across the incident "
                          "window"],
            ))

    suspects.sort(key=lambda s: (-s.score, s.kind))
    return suspects
