"""FaaS platform presets (§4: "λFS also supports other FaaS
platforms including Nuclio", and could port to AWS Lambda).

The core techniques are platform-agnostic; what differs between
platforms is the invocation overhead envelope: cold start duration,
per-invocation gateway cost, and idle-reclamation policy.  These
presets encode published/observed characteristics so experiments can
swap platforms with one argument.
"""

from __future__ import annotations

from dataclasses import replace

from repro.faas.platform import FaaSConfig


def openwhisk(base: FaaSConfig | None = None, **overrides) -> FaaSConfig:
    """Apache OpenWhisk on Kubernetes — the paper's deployment.

    Docker-based runtimes: ~0.5–1 s cold starts for a JVM function,
    generous idle grace before container pause/removal.
    """
    config = base or FaaSConfig()
    values = dict(
        cold_start_min_ms=500.0,
        cold_start_max_ms=1_000.0,
        app_init_ms=120.0,
        idle_reclaim_ms=20_000.0,
    )
    values.update(overrides)
    return replace(config, **values)


def nuclio(base: FaaSConfig | None = None, **overrides) -> FaaSConfig:
    """Nuclio — processor-based runtime with faster spin-up and a
    longer warm pool (the port needed only 108 extra LoC in §4)."""
    config = base or FaaSConfig()
    values = dict(
        cold_start_min_ms=250.0,
        cold_start_max_ms=500.0,
        app_init_ms=80.0,
        idle_reclaim_ms=60_000.0,
    )
    values.update(overrides)
    return replace(config, **values)


def aws_lambda(base: FaaSConfig | None = None, **overrides) -> FaaSConfig:
    """AWS Lambda with container images — the commercial port
    sketched in §4: faster microVM cold starts but aggressive warm
    reclamation (the challenge the paper leaves as future work)."""
    config = base or FaaSConfig()
    values = dict(
        cold_start_min_ms=300.0,
        cold_start_max_ms=700.0,
        app_init_ms=150.0,
        idle_reclaim_ms=8_000.0,
    )
    values.update(overrides)
    return replace(config, **values)


PRESETS = {
    "openwhisk": openwhisk,
    "nuclio": nuclio,
    "aws_lambda": aws_lambda,
}


def preset(name: str, base: FaaSConfig | None = None, **overrides) -> FaaSConfig:
    """Look up a platform preset by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown FaaS preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return factory(base, **overrides)
