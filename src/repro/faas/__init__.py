"""A serverless (FaaS) platform in the style of Apache OpenWhisk.

Models exactly the platform behaviours λFS' design leans on:

* **deployments** — *n* uniquely named serverless functions whose
  instances auto-scale independently (§2 Terminology);
* **cold starts** — provisioning a new function instance takes
  hundreds of milliseconds;
* **ConcurrencyLevel** — how many HTTP requests one instance serves
  simultaneously; the coarse-grained scaling knob of Figure 6;
* **scale-out** — an HTTP invocation with no available instance
  provisions one (capacity permitting);
* **scale-in** — idle instances are reclaimed after a timeout;
* **cluster vCPU cap + eviction** — a bounded private cloud evicts
  idle containers to make room, producing the thrashing behaviour of
  Appendix C when the cap is tight.
"""

from repro.faas.platform import (
    Deployment,
    FaaSConfig,
    FaaSPlatform,
    FunctionInstance,
    InstanceTerminated,
)

__all__ = [
    "Deployment",
    "FaaSConfig",
    "FaaSPlatform",
    "FunctionInstance",
    "InstanceTerminated",
]
