"""The FaaS platform: deployments, instances, invoker, auto-scaling."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.sim import Environment, Event, Resource


class InstanceTerminated(Exception):
    """The serving instance was reclaimed/killed mid-request."""


@dataclass(frozen=True)
class FaaSConfig:
    """Platform-wide configuration."""

    cluster_vcpus: float = 512.0
    vcpus_per_instance: float = 6.25
    ram_gb_per_instance: float = 30.0
    concurrency_level: int = 4
    cold_start_min_ms: float = 500.0
    cold_start_max_ms: float = 1_000.0
    app_init_ms: float = 120.0
    idle_reclaim_ms: float = 20_000.0
    reclaim_sweep_ms: float = 1_000.0
    eviction_ms: float = 300.0
    allow_eviction: bool = True
    eviction_min_idle_ms: float = 500.0
    """Never evict a container idle for less than this: momentarily
    idle instances under steady load are not reclamation victims
    (otherwise multi-deployment load on a full cluster churns
    containers — the thrashing of Appendix C)."""
    forced_eviction_cooldown_ms: float = 500.0
    """Minimum spacing between forced (busy-victim) evictions: the
    platform cannot churn containers faster than they boot."""
    max_instances_per_deployment: Optional[int] = None
    """Cap used by the Figure 14 "limited auto-scaling" ablation."""


@dataclass
class ScaleEvent:
    """One provision/terminate event, for the NN-count timelines."""

    time_ms: float
    deployment: str
    kind: str  # "provision" | "terminate" | "evict"
    active_after: int


class FunctionInstance:
    """An instantiated, running serverless function (one NameNode)."""

    _ids = count(1)

    def __init__(
        self,
        env: Environment,
        platform: "FaaSPlatform",
        deployment: "Deployment",
    ) -> None:
        self.env = env
        self.platform = platform
        self.deployment = deployment
        self.id = f"{deployment.name}#{next(self._ids)}"
        self.state = "provisioning"
        self.started = Event(env)
        cpu_slots = max(1, int(round(platform.config.vcpus_per_instance)))
        self.cpu = Resource(env, capacity=cpu_slots)
        self.http_in_flight = 0
        self.active_requests = 0
        self.requests_served = 0
        self.http_requests_served = 0
        """True FaaS invocations — the only ones billed per-request
        (TCP RPCs bypass the platform and carry no request charge)."""
        self.last_active_ms = env.now
        self.provisioned_at_ms = env.now
        self.terminated_at_ms: Optional[float] = None
        self.busy_ms = 0.0
        self._busy_since: Optional[float] = None
        self._connections: List[Any] = []
        # The application (e.g. a λFS NameNode) is created once the
        # container starts; its in-memory state survives invocations
        # for as long as the instance stays warm.
        self.app: Any = None

    def __repr__(self) -> str:
        return f"<Instance {self.id} {self.state}>"

    @property
    def deployment_name(self) -> str:
        return self.deployment.name

    @property
    def is_alive(self) -> bool:
        return self.state in ("provisioning", "warm")

    @property
    def idle_ms(self) -> float:
        if self.active_requests > 0:
            return 0.0
        return self.env.now - self.last_active_ms

    # -- lifecycle -----------------------------------------------------
    def startup(self) -> Generator:
        """Cold start: container boot then application init."""
        rng = self.platform.rng
        boot = rng.uniform(
            self.platform.config.cold_start_min_ms,
            self.platform.config.cold_start_max_ms,
        )
        yield self.env.timeout(boot)
        if self.state != "provisioning":
            return  # evicted while booting
        self.app = self.deployment.app_factory(self)
        if hasattr(self.app, "on_start"):
            started = self.app.on_start()
            if started is not None:
                yield from started
        yield self.env.timeout(self.platform.config.app_init_ms)
        if self.state != "provisioning":
            return
        self.state = "warm"
        self.last_active_ms = self.env.now
        self.started.succeed()
        self.deployment.notify_change()

    def terminate(self, reason: str = "reclaim") -> None:
        """Tear the instance down (scale-in, eviction, or fault test)."""
        if self.state == "terminated":
            return
        metrics = self.env.metrics
        if metrics is not None:
            metrics.inc(
                "faas_terminations_total",
                deployment=self.deployment.name, reason=reason,
            )
        was_provisioning = self.state == "provisioning"
        self.state = "terminated"
        self.terminated_at_ms = self.env.now
        if was_provisioning and not self.started.triggered:
            # Wake requests parked on the cold start so they observe
            # the termination and retry elsewhere.
            self.started.succeed()
        if self._busy_since is not None:
            self.busy_ms += self.env.now - self._busy_since
            self._busy_since = None
        for connection in list(self._connections):
            connection.close()
        self._connections.clear()
        if self.app is not None and hasattr(self.app, "on_terminate"):
            self.app.on_terminate()
        self.deployment.instance_gone(self)
        self.platform._record(ScaleEvent(
            self.env.now, self.deployment.name,
            "evict" if reason == "evict" else "terminate",
            self.deployment.live_count(),
        ))

    # -- serving ---------------------------------------------------------
    def serve(self, request: Any, via: str) -> Generator:
        """Run the application handler for one request."""
        if not self.is_alive:
            raise InstanceTerminated(self.id)
        if self.state == "provisioning":
            tracer = self.env.tracer if self.env.instrumented else None
            cold_span = None
            if tracer is not None:
                cold_span = tracer.begin(
                    "faas.cold_wait", self.id,
                    parent=getattr(request, "trace_parent", None),
                    deployment=self.deployment_name, via=via,
                )
            yield self.started
            if tracer is not None:
                tracer.end(cold_span, alive=self.is_alive)
            if not self.is_alive:
                raise InstanceTerminated(self.id)
        self._enter()
        if via == "http":
            self.http_requests_served += 1
        try:
            response = yield from self.app.handle(request, via)
        finally:
            self._exit()
        if not self.is_alive:
            raise InstanceTerminated(self.id)
        return response

    def compute(self, cpu_ms: float) -> Generator:
        """Consume one CPU slot for ``cpu_ms`` (applications call this)."""
        if cpu_ms <= 0:
            return
        with self.cpu.request() as slot:
            yield slot
            yield self.env.timeout(cpu_ms)

    def attach_connection(self, connection: Any) -> None:
        """Track a TCP connection so termination can close it."""
        self._connections.append(connection)

    # -- billing/bookkeeping ------------------------------------------------
    def _enter(self) -> None:
        if self.active_requests == 0:
            self._busy_since = self.env.now
        self.active_requests += 1
        self.requests_served += 1
        self.last_active_ms = self.env.now

    def _exit(self) -> None:
        self.active_requests -= 1
        self.last_active_ms = self.env.now
        if self.active_requests == 0 and self._busy_since is not None:
            self.busy_ms += self.env.now - self._busy_since
            self._busy_since = None

    def busy_ms_snapshot(self) -> float:
        """Busy time including the currently open interval."""
        open_interval = (
            self.env.now - self._busy_since if self._busy_since is not None else 0.0
        )
        return self.busy_ms + open_interval

    def provisioned_ms(self) -> float:
        end = self.terminated_at_ms if self.terminated_at_ms is not None else self.env.now
        return end - self.provisioned_at_ms


class Deployment:
    """A registered serverless function (unique name, many instances)."""

    def __init__(self, platform: "FaaSPlatform", name: str, app_factory: Callable) -> None:
        self.platform = platform
        self.name = name
        self.app_factory = app_factory
        self.instances: List[FunctionInstance] = []
        self.all_instances: List[FunctionInstance] = []
        self._change = Event(platform.env)

    def live_count(self) -> int:
        return len(self.instances)

    def live_instances(self) -> List[FunctionInstance]:
        return list(self.instances)

    def pick_available(self) -> Optional[FunctionInstance]:
        """Least-loaded instance below its ConcurrencyLevel, if any."""
        limit = self.platform.config.concurrency_level
        candidates = [i for i in self.instances if i.http_in_flight < limit]
        if not candidates:
            return None
        return min(candidates, key=lambda i: (i.http_in_flight, i.active_requests))

    def least_loaded(self) -> Optional[FunctionInstance]:
        if not self.instances:
            return None
        return min(self.instances, key=lambda i: (i.http_in_flight, i.active_requests))

    def instance_gone(self, instance: FunctionInstance) -> None:
        try:
            self.instances.remove(instance)
        except ValueError:
            pass
        self.notify_change()

    def notify_change(self) -> None:
        """Wake invocations parked waiting for capacity."""
        event, self._change = self._change, Event(self.platform.env)
        event.succeed()

    def change_event(self) -> Event:
        return self._change


class FaaSPlatform:
    """The platform: registry, invoker, and auto-scaling loops."""

    def __init__(
        self,
        env: Environment,
        config: Optional[FaaSConfig] = None,
        rng=None,
    ) -> None:
        import random as _random

        self.env = env
        self.config = config or FaaSConfig()
        self.rng = rng if rng is not None else _random.Random(0)
        self.deployments: Dict[str, Deployment] = {}
        self.scale_events: List[ScaleEvent] = []
        self.cold_starts = 0
        self.evictions = 0
        self._reclaimer_started = False
        self._last_forced_eviction = -float("inf")
        #: Resilience control plane (set by LambdaFS when attached);
        #: None keeps the invoker path byte-identical.
        self.resilience = None

    # -- registry ---------------------------------------------------------
    def register_deployment(self, name: str, app_factory: Callable) -> Deployment:
        """Register a uniquely named serverless function."""
        if name in self.deployments:
            raise ValueError(f"deployment {name!r} already registered")
        deployment = Deployment(self, name, app_factory)
        self.deployments[name] = deployment
        if self.env.metrics is not None:
            self._register_deployment_gauges(deployment)
        return deployment

    def _register_deployment_gauges(self, deployment: Deployment) -> None:
        """Expose fleet state as callback gauges (read at sample time)."""
        metrics = self.env.metrics
        name = deployment.name

        def _count_state(state: str, d: Deployment = deployment) -> int:
            return sum(1 for i in d.instances if i.state == state)

        metrics.register_gauge(
            "faas_instances_live", deployment.live_count,
            help="Live (warm or provisioning) instances per deployment",
            deployment=name,
        )
        for state in ("warm", "provisioning"):
            metrics.register_gauge(
                "faas_instances",
                lambda s=state, d=deployment: _count_state(s, d),
                help="Instances by lifecycle state",
                deployment=name, state=state,
            )
        metrics.register_gauge(
            "faas_http_in_flight",
            lambda d=deployment: sum(i.http_in_flight for i in d.instances),
            help="HTTP invocations currently in flight",
            deployment=name,
        )
        metrics.register_gauge(
            "faas_provisioned_ms_total",
            lambda d=deployment: sum(i.provisioned_ms() for i in d.all_instances),
            help="Cumulative container-provisioned milliseconds (billing)",
            deployment=name,
        )
        metrics.register_gauge(
            "faas_busy_ms_total",
            lambda d=deployment: sum(i.busy_ms_snapshot() for i in d.all_instances),
            help="Cumulative busy milliseconds across all instances ever",
            deployment=name,
        )

    def start(self) -> None:
        """Start background maintenance (idle reclamation)."""
        if not self._reclaimer_started:
            self._reclaimer_started = True
            self.env.process(self._reclaim_loop())

    # -- capacity ------------------------------------------------------------
    def used_vcpus(self) -> float:
        return sum(
            self.config.vcpus_per_instance
            for deployment in self.deployments.values()
            for instance in deployment.instances
        )

    def can_provision(self, deployment: Deployment) -> bool:
        cap = self.config.max_instances_per_deployment
        if cap is not None and deployment.live_count() >= cap:
            return False
        return (
            self.used_vcpus() + self.config.vcpus_per_instance
            <= self.config.cluster_vcpus
        )

    def total_live_instances(self) -> int:
        return sum(d.live_count() for d in self.deployments.values())

    def provision(self, deployment: Deployment) -> FunctionInstance:
        """Create a new instance (cold start runs as its own process)."""
        instance = FunctionInstance(self.env, self, deployment)
        deployment.instances.append(instance)
        deployment.all_instances.append(instance)
        self.cold_starts += 1
        if self.env.metrics is not None:
            self.env.metrics.inc(
                "faas_cold_starts_total", deployment=deployment.name
            )
        self._record(ScaleEvent(
            self.env.now, deployment.name, "provision", deployment.live_count()
        ))
        self.env.process(instance.startup())
        deployment.notify_change()
        return instance

    # -- invocation ---------------------------------------------------------
    def invoke(self, deployment_name: str, request: Any) -> Generator:
        """Route one HTTP invocation to an instance, scaling as needed.

        This is the invoker path of Figure 3 step (2): use an existing
        instance below its concurrency level, otherwise provision a
        new one; under a full cluster, evict an idle container from
        another deployment (Appendix C) or park until capacity frees.
        """
        deployment = self.deployments[deployment_name]
        env = self.env
        # One flag read covers metrics + tracer on the invoker path.
        if env.instrumented:
            metrics = env.metrics
            tracer = env.tracer
        else:
            metrics = None
            tracer = None
        if metrics is not None:
            metrics.inc(
                "faas_invocations_total", deployment=deployment_name
            )
        queue_span = None
        if tracer is not None:
            # Invoker-queue time: from arrival at the invoker until an
            # instance is selected (includes parking on a full cluster).
            queue_span = tracer.begin(
                "faas.queue", deployment_name,
                parent=getattr(request, "trace_parent", None),
                deployment=deployment_name,
            )
        res = self.resilience
        instance: Optional[FunctionInstance] = None
        while instance is None:
            if (
                res is not None
                and res.active
                and getattr(request, "deadline_ms", None) is not None
                and env.now >= request.deadline_ms
            ):
                # The op's budget expired while queued at the invoker
                # (typically an abandoned resubmit): drop it here
                # instead of burning an instance slot on dead work.
                if tracer is not None:
                    tracer.end(queue_span, shed=True)
                return res.shed_response(
                    request, "faas-queue", "deadline", actor=deployment_name
                ), None
            instance = deployment.pick_available()
            if instance is not None:
                break
            if self.can_provision(deployment):
                fresh = self.provision(deployment)
                # Scale-out is for *future* traffic: this request is
                # served by an already-running instance if one exists
                # (briefly exceeding its concurrency) rather than
                # stalling behind the cold start.
                warm_peers = [
                    i for i in deployment.instances
                    if i is not fresh and i.state == "warm"
                ]
                if warm_peers:
                    instance = min(
                        warm_peers,
                        key=lambda i: (i.http_in_flight, i.active_requests),
                    )
                else:
                    instance = fresh
                break
            if self.config.allow_eviction and self._evict_idle(exclude=deployment):
                continue  # capacity freed; loop re-checks
            if (
                self.config.allow_eviction
                and not deployment.instances
                and self._evict_forced(exclude=deployment)
            ):
                # A deployment with zero instances must get one even
                # on a full cluster: the platform reclaims the least
                # recently active container, aborting its in-flight
                # requests (clients resubmit).  Under a too-small cap
                # this is the container churn of Appendix C.
                continue
            # No instance below its concurrency limit and no capacity:
            # overload an existing instance rather than park forever,
            # but only if the deployment has at least one instance.
            instance = deployment.least_loaded()
            if instance is not None:
                break
            # Park until this deployment changes, or briefly — other
            # deployments' instances may age past the eviction guard.
            yield deployment.change_event() | self.env.timeout(100.0)

        if tracer is not None:
            tracer.end(queue_span, instance=instance.id)
        instance.http_in_flight += 1
        try:
            response = yield from instance.serve(request, via="http")
        finally:
            instance.http_in_flight -= 1
            deployment.notify_change()
        return response, instance

    # -- internals ---------------------------------------------------------------
    def _evict_idle(self, exclude: Deployment) -> bool:
        """Evict the longest-idle instance from another deployment."""
        victims = [
            instance
            for deployment in self.deployments.values()
            if deployment is not exclude
            for instance in deployment.instances
            if instance.active_requests == 0
            and instance.http_in_flight == 0
            and instance.idle_ms >= self.config.eviction_min_idle_ms
        ]
        if not victims:
            return False
        victim = max(victims, key=lambda i: i.idle_ms)
        self.evictions += 1
        victim.terminate(reason="evict")
        return True

    def _evict_forced(self, exclude: Deployment) -> bool:
        """Evict the least-recently-active instance, busy or not."""
        if (
            self.env.now - self._last_forced_eviction
            < self.config.forced_eviction_cooldown_ms
        ):
            return False
        victims = [
            instance
            for deployment in self.deployments.values()
            if deployment is not exclude and len(deployment.instances) > 0
            for instance in deployment.instances
        ]
        # Leave deployments their last instance only if someone has
        # two or more; otherwise take from the largest deployment.
        multi = [
            instance for instance in victims
            if len(instance.deployment.instances) > 1
        ]
        pool = multi if multi else victims
        if not pool:
            return False
        # Prefer warm victims: tearing down a container mid-boot only
        # multiplies cold starts.
        victim = max(
            pool,
            key=lambda i: (i.state == "warm", i.idle_ms, -i.active_requests),
        )
        self.evictions += 1
        self._last_forced_eviction = self.env.now
        victim.terminate(reason="evict")
        return True

    def _reclaim_loop(self) -> Generator:
        while True:
            yield self.env.timeout(self.config.reclaim_sweep_ms)
            cutoff = self.config.idle_reclaim_ms
            for deployment in self.deployments.values():
                for instance in deployment.live_instances():
                    if instance.state == "warm" and instance.idle_ms >= cutoff:
                        instance.terminate(reason="reclaim")

    def _record(self, event: ScaleEvent) -> None:
        self.scale_events.append(event)
