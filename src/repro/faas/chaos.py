"""Fault injection for FaaS fleets (§5.6 fault-tolerance testing).

The paper's fault-tolerance experiment terminates an active NameNode
every 30 seconds, targeting each deployment in round-robin fashion.
:class:`NameNodeKiller` reproduces that as a reusable process, with
hooks for the experiments and examples that need kill logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.faas.platform import FaaSPlatform
from repro.sim import Environment, Interrupt


@dataclass
class KillRecord:
    time_ms: float
    instance_id: str
    deployment: str


class NameNodeKiller:
    """Terminates one warm instance per interval, round-robin."""

    def __init__(
        self,
        env: Environment,
        platform: FaaSPlatform,
        interval_ms: float,
        deployments: Optional[List[str]] = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.env = env
        self.platform = platform
        self.interval_ms = interval_ms
        self._names = deployments
        self.kills: List[KillRecord] = []
        self._process = None

    def start(self) -> None:
        if self._process is None or not self._process.is_alive:
            self._process = self.env.process(self._loop())

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt()
        self._process = None

    def _targets(self) -> List[str]:
        if self._names is not None:
            return self._names
        return sorted(self.platform.deployments)

    def _loop(self) -> Generator:
        index = 0
        names = self._targets()
        try:
            while True:
                yield self.env.timeout(self.interval_ms)
                # Round-robin over deployments; skip ones with no warm
                # instance right now.
                for _ in range(len(names)):
                    deployment = self.platform.deployments[names[index % len(names)]]
                    index += 1
                    warm = [
                        instance
                        for instance in deployment.live_instances()
                        if instance.state == "warm"
                    ]
                    if warm:
                        victim = warm[0]
                        self.kills.append(KillRecord(
                            self.env.now, victim.id, deployment.name
                        ))
                        tracer = self.env.tracer
                        if tracer is not None:
                            tracer.point(
                                "chaos.kill", victim.id,
                                deployment=deployment.name,
                            )
                        victim.terminate(reason="fault")
                        break
        except Interrupt:
            return
