"""Fault injection for FaaS fleets (§5.6 fault-tolerance testing).

Compatibility shim: the :class:`NameNodeKiller` now lives in
:mod:`repro.chaos.faults`, where it is one fault among many — the
full multi-layer chaos engine (scenarios, deterministic injection,
recovery verification) is :mod:`repro.chaos`.  This module re-exports
the killer under its historic import path; the default configuration
(round-robin victims, no RNG draws) behaves exactly as before.
"""

from __future__ import annotations

from repro.chaos.faults import (  # noqa: F401
    VICTIM_POLICIES,
    KillRecord,
    NameNodeKiller,
    pick_victim,
)

__all__ = ["KillRecord", "NameNodeKiller", "pick_victim", "VICTIM_POLICIES"]
