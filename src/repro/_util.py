"""Small shared utilities."""

from __future__ import annotations

import hashlib
from typing import Any


def stable_hash(value: Any) -> int:
    """A deterministic 64-bit hash, stable across processes and runs.

    Python's builtin ``hash`` is salted per-process for strings, which
    would make shard/deployment placement non-reproducible; everything
    in this repository that partitions by hash goes through here.
    """
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")
