"""Deep-learning-pipeline metadata workload (FalconFS-style).

Training jobs hammer file-system *metadata* in a very different shape
from the Spotify trace: each epoch shuffles a dataset of many small
files and reads them all back-to-back (a small-file read storm over a
flat directory — the pattern FalconFS reports at million-entry
scale), then checkpoints by creating a burst of files in one flat
output directory.  This stresses the trie cache and consistent-hash
partitioning with deep re-reads of a single hot subtree instead of
uniform traffic.

:class:`MLTrainWorkload` drives that loop deterministically: a seeded
shuffle per epoch, the file list sharded round-robin across clients
(DataLoader workers), an optional ``stat`` before each read (the
open-file double touch), and a per-epoch checkpoint phase of
flat-directory creates.  Epochs are barriers — all shards finish
reading before the checkpoint storm starts, like a synchronous
training step boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Sequence

from repro.namespace.treegen import GeneratedTree, flat_directory
from repro.sim import AllOf, Environment


@dataclass(frozen=True)
class MLTrainConfig:
    epochs: int = 2
    dataset_files: int = 256
    """Small files in the flat dataset directory."""
    checkpoint_files: int = 32
    """Files created in the flat checkpoint directory per epoch."""
    shuffle: bool = True
    stat_before_read: bool = True
    """Touch each file with a ``stat`` before reading (open + read)."""
    root: str = "/mltrain"
    seed: int = 0


@dataclass
class MLTrainResult:
    epochs: int = 0
    reads: int = 0
    stats: int = 0
    creates: int = 0
    failed: int = 0
    duration_ms: float = 0.0

    @property
    def total_ops(self) -> int:
        return self.reads + self.stats + self.creates


class MLTrainWorkload:
    """Shuffle-epoch read storms plus checkpoint create bursts."""

    def __init__(self, env: Environment, config: MLTrainConfig) -> None:
        self.env = env
        self.config = config
        self.dataset: GeneratedTree = flat_directory(
            f"{config.root}/dataset", config.dataset_files
        )
        self.result = MLTrainResult()

    def namespace(self) -> GeneratedTree:
        """Paths to pre-install: the dataset plus checkpoint dirs."""
        tree = GeneratedTree()
        tree.directories.append(self.config.root)
        tree.directories.extend(self.dataset.directories)
        tree.files.extend(self.dataset.files)
        for epoch in range(self.config.epochs):
            tree.directories.append(f"{self.config.root}/ckpt_e{epoch}")
        return tree

    # -- execution -----------------------------------------------------
    def run(self, clients: Sequence) -> Generator:
        """Drive ``clients`` through every epoch; returns the result."""
        start = self.env.now
        rng = random.Random(f"{self.config.seed}:mltrain:shuffle")
        for epoch in range(self.config.epochs):
            order = list(self.dataset.files)
            if self.config.shuffle:
                rng.shuffle(order)
            shards: List[List[str]] = [[] for _ in clients]
            for index, path in enumerate(order):
                shards[index % len(clients)].append(path)
            # Read storm: every shard in parallel, epoch barrier after.
            yield AllOf(self.env, [
                self.env.process(self._read_shard(client, shard))
                for client, shard in zip(clients, shards)
            ])
            # Checkpoint: a flat-directory create burst.
            yield AllOf(self.env, [
                self.env.process(
                    self._checkpoint(client, epoch, index, len(clients))
                )
                for index, client in enumerate(clients)
            ])
            self.result.epochs += 1
        self.result.duration_ms = self.env.now - start
        return self.result

    def _read_shard(self, client, shard: Sequence[str]) -> Generator:
        for path in shard:
            if self.config.stat_before_read:
                response = yield from client.stat(path)
                self.result.stats += 1
                if not response.ok:
                    self.result.failed += 1
            response = yield from client.read_file(path)
            self.result.reads += 1
            if not response.ok:
                self.result.failed += 1

    def _checkpoint(
        self, client, epoch: int, index: int, total: int
    ) -> Generator:
        directory = f"{self.config.root}/ckpt_e{epoch}"
        count = self.config.checkpoint_files // total + (
            1 if index < self.config.checkpoint_files % total else 0
        )
        for serial in range(count):
            response = yield from client.create_file(
                f"{directory}/shard{index}_{serial}"
            )
            self.result.creates += 1
            if not response.ok:
                self.result.failed += 1
