"""Workload generators used by the evaluation (§5).

* :class:`SpotifyWorkload` — the industrial workload: the Table 2
  operation mix driven at a bursty rate drawn from a Pareto(α=2)
  distribution every 15 s, with unfinished operations rolling over
  (the modified hammer-bench of §5.2.1).
* :mod:`repro.workloads.micro` — the client-driven and resource
  scaling microbenchmarks of §5.3 (read/ls/stat/create/mkdir).
* :mod:`repro.workloads.treetest` — IndexFS' tree-test (§5.7):
  mknod writes followed by random getattr reads.
* :mod:`repro.workloads.replay` — replay recorded audit-log traces
  against any client (the paper's workload is synthesized from such
  traces; users with real ones can replay them directly).
* :mod:`repro.workloads.mltrain` — an ML-training ingest pipeline:
  shuffled small-file read storms over a flat dataset directory with
  per-epoch checkpoint create bursts.
* :mod:`repro.workloads.multitenant` — N tenants with distinct op
  mixes, think times, and burst shapes sharing one λFS (the driver
  behind ``repro tenants`` and the noisy-neighbor chaos scenarios).
"""

from repro.workloads.micro import MicroBenchmark, MicroResult
from repro.workloads.mltrain import MLTrainConfig, MLTrainResult, MLTrainWorkload
from repro.workloads.multitenant import (
    WORKLOAD_MIXES,
    MultiTenantWorkload,
    TenantCounts,
)
from repro.workloads.replay import TraceRecord, TraceReplayer, load_trace, parse_trace
from repro.workloads.spotify import SPOTIFY_MIX, SpotifyConfig, SpotifyWorkload
from repro.workloads.treetest import TreeTest, TreeTestConfig

__all__ = [
    "MLTrainConfig",
    "MLTrainResult",
    "MLTrainWorkload",
    "MicroBenchmark",
    "MicroResult",
    "MultiTenantWorkload",
    "SPOTIFY_MIX",
    "SpotifyConfig",
    "SpotifyWorkload",
    "TraceRecord",
    "TraceReplayer",
    "TreeTest",
    "TreeTestConfig",
    "load_trace",
    "parse_trace",
]
