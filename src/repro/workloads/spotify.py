"""The Spotify industrial workload (§5.2).

Generated from the statistics of Spotify's 1600-node HDFS cluster
traces, as in HopsFS' evaluation.  Table 2 gives the operation mix
(95.23 % reads); the load level is re-drawn every 15 seconds from a
Pareto distribution with shape α = 2 and scale ``x_t`` (the base
throughput), producing spikes of up to 7× the base.  Clients split
the cluster-wide target evenly; operations not completed within
their second roll over to the next, so an overloaded system visibly
"falls behind" exactly as HopsFS does in Figure 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence

from repro.core.messages import OpType
from repro.namespace.treegen import GeneratedTree
from repro.sim import AllOf, Environment

SPOTIFY_MIX: Dict[OpType, float] = {
    OpType.CREATE_FILE: 0.027,
    OpType.MKDIRS: 0.0002,
    OpType.DELETE: 0.0075,
    OpType.MV: 0.013,
    OpType.READ_FILE: 0.6922,
    OpType.STAT: 0.17,
    OpType.LS: 0.0901,
}
"""Relative operation frequencies from Table 2."""


@dataclass(frozen=True)
class SpotifyConfig:
    base_throughput: float = 25_000.0
    """The Pareto scale parameter x_t (cluster-wide ops/sec)."""
    duration_ms: float = 300_000.0
    interval_ms: float = 15_000.0
    pareto_alpha: float = 2.0
    spike_cap: float = 7.0
    seed: int = 0
    mix: Dict[OpType, float] = field(default_factory=lambda: dict(SPOTIFY_MIX))


class SpotifyWorkload:
    """Drives a fleet of clients at the bursty target rate."""

    def __init__(
        self,
        env: Environment,
        config: SpotifyConfig,
        tree: GeneratedTree,
    ) -> None:
        self.env = env
        self.config = config
        self.tree = tree
        self._rng = random.Random(config.seed)
        self.schedule: List[float] = self._draw_schedule()
        self.issued = 0
        self.completed = 0
        self.failed = 0

    def _draw_schedule(self) -> List[float]:
        """Cluster-wide ops/sec target for each 15 s interval."""
        intervals = max(1, int(self.config.duration_ms // self.config.interval_ms))
        cap = self.config.spike_cap * self.config.base_throughput
        schedule = []
        for _ in range(intervals):
            draw = self._rng.paretovariate(self.config.pareto_alpha)
            schedule.append(min(self.config.base_throughput * draw, cap))
        return schedule

    def target_at(self, time_ms: float) -> float:
        index = min(
            int(time_ms // self.config.interval_ms), len(self.schedule) - 1
        )
        return self.schedule[index]

    # -- execution ----------------------------------------------------
    def run(self, clients: Sequence) -> Generator:
        """Run the workload to completion across ``clients``."""
        processes = [
            self.env.process(self._client_loop(client, index, len(clients)))
            for index, client in enumerate(clients)
        ]
        yield AllOf(self.env, processes)

    def _client_loop(self, client, index: int, total_clients: int) -> Generator:
        env = self.env
        rng = random.Random(f"{self.config.seed}:{index}:client")
        owed = 0.0
        created: List[str] = []
        serial = 0
        start = env.now
        deadline = start + self.config.duration_ms
        second = 0
        while env.now < deadline:
            second_start = start + second * 1_000.0
            owed += self.target_at(second_start - start) / total_clients
            # Closed loop: issue operations back-to-back until this
            # second's share is done or the second ends.
            while owed >= 1.0 and env.now < second_start + 1_000.0:
                owed -= 1.0
                serial += 1
                self.issued += 1
                ok = yield from self._one_op(client, rng, index, serial, created)
                self.completed += 1
                if not ok:
                    self.failed += 1
            # Unfinished operations roll over via ``owed``.
            second += 1
            next_second = start + second * 1_000.0
            if env.now < next_second:
                yield env.timeout(next_second - env.now)

    def _one_op(self, client, rng, index: int, serial: int, created: List[str]) -> Generator:
        op = self._draw_op(rng)
        if op is OpType.CREATE_FILE:
            path = f"{rng.choice(self.tree.directories)}/c{index}_{serial}"
            response = yield from client.create_file(path)
            if response.ok:
                created.append(path)
        elif op is OpType.MKDIRS:
            path = f"{rng.choice(self.tree.directories)}/m{index}_{serial}"
            response = yield from client.mkdirs(path)
        elif op is OpType.DELETE:
            if created:
                response = yield from client.delete(created.pop())
            else:
                response = yield from client.stat(rng.choice(self.tree.files))
        elif op is OpType.MV:
            if created:
                src = created.pop()
                dst = f"{src}_mv{serial}"
                response = yield from client.mv(src, dst)
                if response.ok:
                    created.append(dst)
            else:
                response = yield from client.stat(rng.choice(self.tree.files))
        elif op is OpType.READ_FILE:
            response = yield from client.read_file(rng.choice(self.tree.files))
        elif op is OpType.STAT:
            response = yield from client.stat(rng.choice(self.tree.files))
        else:  # LS
            response = yield from client.ls(rng.choice(self.tree.directories))
        return response.ok

    def _draw_op(self, rng: random.Random) -> OpType:
        draw = rng.random() * sum(self.config.mix.values())
        for op, weight in self.config.mix.items():
            draw -= weight
            if draw <= 0:
                return op
        return OpType.READ_FILE
