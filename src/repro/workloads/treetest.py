"""IndexFS' ``tree-test`` benchmark (§5.7, Figure 16).

Two flavours:

* **variable-sized** — every client executes ``writes_per_client``
  mknod operations followed by ``reads_per_client`` random getattr
  operations, so total work grows with the client count;
* **fixed-sized** — the *total* operation count is fixed and split
  evenly across clients.

Reports write, read, and aggregate (writes-then-reads) throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.sim import AllOf, Environment


@dataclass(frozen=True)
class TreeTestConfig:
    writes_per_client: int = 10_000
    reads_per_client: int = 10_000
    fixed_total_writes: int = 1_000_000
    fixed_total_reads: int = 1_000_000
    directory_root: str = "/tree"
    seed: int = 0
    warmup_ops: int = 8
    """Untimed per-client operations before the measured phases (the
    paper's runs are long enough to amortize cold starts; short scaled
    runs warm explicitly instead)."""


@dataclass
class TreeTestResult:
    clients: int
    write_ops: int
    read_ops: int
    write_duration_ms: float
    read_duration_ms: float

    @property
    def write_throughput(self) -> float:
        return (
            self.write_ops * 1_000.0 / self.write_duration_ms
            if self.write_duration_ms > 0 else 0.0
        )

    @property
    def read_throughput(self) -> float:
        return (
            self.read_ops * 1_000.0 / self.read_duration_ms
            if self.read_duration_ms > 0 else 0.0
        )

    @property
    def aggregate_throughput(self) -> float:
        total = self.write_duration_ms + self.read_duration_ms
        if total <= 0:
            return 0.0
        return (self.write_ops + self.read_ops) * 1_000.0 / total


class TreeTest:
    """Drives mknod/getattr clients against IndexFS or λIndexFS."""

    def __init__(self, env: Environment, config: TreeTestConfig) -> None:
        self.env = env
        self.config = config

    def _paths_for(self, client_index: int, count: int) -> List[str]:
        root = self.config.directory_root
        return [f"{root}/d{client_index}/f{i}" for i in range(count)]

    def run(self, clients: Sequence, fixed_size: bool = False) -> Generator:
        """Write phase on all clients, then read phase; barrier between."""
        if fixed_size:
            writes = max(1, self.config.fixed_total_writes // len(clients))
            reads = max(1, self.config.fixed_total_reads // len(clients))
        else:
            writes = self.config.writes_per_client
            reads = self.config.reads_per_client

        all_paths: List[List[str]] = [
            self._paths_for(index, writes) for index in range(len(clients))
        ]

        if self.config.warmup_ops:
            warm_procs = [
                self.env.process(self._warmup(client, index))
                for index, client in enumerate(clients)
            ]
            yield AllOf(self.env, warm_procs)

        write_start = self.env.now
        write_procs = [
            self.env.process(self._write_phase(client, paths))
            for client, paths in zip(clients, all_paths)
        ]
        yield AllOf(self.env, write_procs)
        write_duration = self.env.now - write_start

        read_start = self.env.now
        read_procs = [
            self.env.process(self._read_phase(client, index, all_paths, reads))
            for index, client in enumerate(clients)
        ]
        yield AllOf(self.env, read_procs)
        read_duration = self.env.now - read_start

        return TreeTestResult(
            clients=len(clients),
            write_ops=writes * len(clients),
            read_ops=reads * len(clients),
            write_duration_ms=write_duration,
            read_duration_ms=read_duration,
        )

    def _warmup(self, client, index: int) -> Generator:
        root = self.config.directory_root
        for serial in range(self.config.warmup_ops):
            path = f"{root}/d{index}/w{serial}"
            yield from client.mknod(path)
            yield from client.getattr(path)

    def _write_phase(self, client, paths: List[str]) -> Generator:
        for path in paths:
            yield from client.mknod(path)

    def _read_phase(
        self, client, index: int, all_paths: List[List[str]], reads: int
    ) -> Generator:
        rng = random.Random(f"{self.config.seed}:{index}:read")
        for _ in range(reads):
            # Random getattr across the whole created population.
            paths = all_paths[rng.randrange(len(all_paths))]
            if paths:
                yield from client.getattr(rng.choice(paths))