"""Scaling microbenchmarks (§5.3).

Each client performs a fixed number of one operation type against
random targets in a pre-created directory tree; the benchmark
reports the aggregate throughput.  Used for both the client-driven
scaling (Figure 11) and resource scaling (Figure 12) experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.core.messages import OpType
from repro.namespace.treegen import GeneratedTree
from repro.sim import AllOf, Environment


@dataclass
class MicroResult:
    """Aggregate outcome of one microbenchmark run."""

    op: OpType
    clients: int
    total_ops: int
    duration_ms: float
    errors: int

    @property
    def throughput(self) -> float:
        """Aggregate ops/sec."""
        if self.duration_ms <= 0:
            return 0.0
        return self.total_ops * 1_000.0 / self.duration_ms


class MicroBenchmark:
    """Runs ``ops_per_client`` operations of one type on each client."""

    def __init__(
        self,
        env: Environment,
        tree: GeneratedTree,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.tree = tree
        self.seed = seed

    def run(
        self,
        clients: Sequence,
        op: OpType,
        ops_per_client: int,
        warmup_per_client: int = 0,
    ) -> Generator:
        """Execute the benchmark; returns a :class:`MicroResult`.

        ``warmup_per_client`` operations run first and are excluded
        from the result — the paper's benchmark utility runs repeated
        trials, so reported numbers reflect a warmed system (TCP
        connections established, fleet scaled out, caches populated).
        """
        if warmup_per_client:
            warm_procs = [
                self.env.process(
                    self._client_loop(client, index, op, warmup_per_client, [0], "w")
                )
                for index, client in enumerate(clients)
            ]
            yield AllOf(self.env, warm_procs)
        errors = [0]
        start = self.env.now
        processes = [
            self.env.process(
                self._client_loop(client, index, op, ops_per_client, errors, "m")
            )
            for index, client in enumerate(clients)
        ]
        yield AllOf(self.env, processes)
        return MicroResult(
            op=op,
            clients=len(clients),
            total_ops=len(clients) * ops_per_client,
            duration_ms=self.env.now - start,
            errors=errors[0],
        )

    def _client_loop(
        self,
        client,
        index: int,
        op: OpType,
        ops_per_client: int,
        errors: List[int],
        phase: str = "m",
    ) -> Generator:
        rng = random.Random(f"{self.seed}:{index}:{op.value}:{phase}")
        for serial in range(ops_per_client):
            target = self._target(op, rng, index, serial, phase)
            response = yield from client.execute(op, target)
            if not response.ok:
                errors[0] += 1

    def _target(
        self, op: OpType, rng: random.Random, index: int, serial: int, phase: str
    ) -> str:
        if op in (OpType.READ_FILE, OpType.STAT):
            return rng.choice(self.tree.files)
        if op is OpType.LS:
            return rng.choice(self.tree.directories)
        if op is OpType.CREATE_FILE:
            return f"{rng.choice(self.tree.directories)}/u{phase}{index}_{serial}"
        if op is OpType.MKDIRS:
            return f"{rng.choice(self.tree.directories)}/ud{phase}{index}_{serial}"
        raise ValueError(f"unsupported microbenchmark op {op}")
