"""Multi-tenant workload driver: N tenants, one shared fleet.

Composes several :class:`~repro.tenants.context.TenantSpec` traffic
shapes against one λFS: each tenant runs its own closed-loop client
fleet over its own disjoint namespace subtree, with a per-archetype
op mix, its own think time, and an optional deterministic on/off
burst cycle (phase-shifted per client so a bursty tenant ramps rather
than steps).  Clients are tagged with ``client.tenant`` so every op
lands in the per-tenant telemetry families
(:mod:`repro.tenants.telemetry`).

Two injection points exist for the chaos layer: a
:class:`~repro.tenants.context.TenantGovernor` (each op acquires a
token first — the QoS isolation under test) and a ``flood_think``
callback consulted before every op (the ``tenant_flood`` fault
returns a near-zero think time for the flooding tenant, turning its
clients into a storm).  Both default to off, leaving the plain
workload untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.messages import OpType
from repro.namespace.treegen import GeneratedTree
from repro.sim import AllOf, Environment
from repro.tenants.context import TenantGovernor, TenantSpec, build_tenant_namespaces

#: Default op mixes per workload archetype (relative weights).
WORKLOAD_MIXES: Dict[str, Dict[OpType, float]] = {
    "mixed": {
        OpType.READ_FILE: 0.58, OpType.STAT: 0.17, OpType.LS: 0.09,
        OpType.CREATE_FILE: 0.06, OpType.SET_PERMISSION: 0.06,
        OpType.DELETE: 0.02, OpType.MKDIRS: 0.01, OpType.MV: 0.01,
    },
    "mltrain": {
        OpType.READ_FILE: 0.65, OpType.STAT: 0.30, OpType.CREATE_FILE: 0.05,
    },
    "readstorm": {
        OpType.READ_FILE: 0.85, OpType.STAT: 0.10, OpType.LS: 0.05,
    },
    "writeheavy": {
        OpType.CREATE_FILE: 0.35, OpType.MKDIRS: 0.05,
        OpType.SET_PERMISSION: 0.15, OpType.READ_FILE: 0.30,
        OpType.STAT: 0.15,
    },
}


@dataclass
class TenantCounts:
    """One tenant's issue/outcome tally for a run."""

    issued: int = 0
    ok: int = 0
    failed: int = 0
    errors: Dict[str, int] = field(default_factory=dict)


class MultiTenantWorkload:
    """Drive every tenant's client fleet for a fixed duration."""

    def __init__(
        self,
        env: Environment,
        specs: Sequence[TenantSpec],
        seed: int = 0,
        governor: Optional[TenantGovernor] = None,
        flood_think: Optional[Callable[[str], Optional[float]]] = None,
        absorb_errors: Tuple[type, ...] = (),
    ) -> None:
        if not specs:
            raise ValueError("need at least one tenant")
        self.env = env
        self.specs = tuple(specs)
        self.seed = seed
        self.governor = governor
        self.flood_think = flood_think
        self.absorb_errors = absorb_errors
        self.merged, self.trees = build_tenant_namespaces(specs, seed=seed)
        self.counts: Dict[str, TenantCounts] = {
            spec.name: TenantCounts() for spec in specs
        }

    def namespace(self) -> GeneratedTree:
        """The merged install list across every tenant subtree."""
        return self.merged

    def total_clients(self) -> int:
        return sum(spec.clients for spec in self.specs)

    def partition_clients(self, clients: Sequence) -> Dict[str, List]:
        """Slice a flat client list into tagged per-tenant fleets."""
        if len(clients) < self.total_clients():
            raise ValueError(
                f"need {self.total_clients()} clients, got {len(clients)}"
            )
        out: Dict[str, List] = {}
        cursor = 0
        for spec in self.specs:
            fleet = list(clients[cursor:cursor + spec.clients])
            cursor += spec.clients
            for client in fleet:
                client.tenant = spec.name
            out[spec.name] = fleet
        return out

    # -- execution -----------------------------------------------------
    def run(
        self, clients_by_tenant: Dict[str, List], duration_ms: float
    ) -> Generator:
        """All tenant loops concurrently until ``duration_ms`` elapses."""
        deadline = self.env.now + duration_ms
        workers = []
        for spec in self.specs:
            fleet = clients_by_tenant[spec.name]
            for index, client in enumerate(fleet):
                workers.append(self.env.process(
                    self._loop(spec, client, index, deadline)
                ))
        yield AllOf(self.env, workers)
        return self.counts

    def _loop(
        self, spec: TenantSpec, client, index: int, deadline: float
    ) -> Generator:
        env = self.env
        rng = random.Random(f"{self.seed}:{spec.name}:{index}:tenant")
        tree = self.trees[spec.name]
        counts = self.counts[spec.name]
        created: List[str] = []
        serial = 0
        start = env.now
        period = spec.burst_on_ms + spec.burst_off_ms
        # Phase-shift each client's burst cycle so a tenant's storm
        # ramps over its fleet instead of arriving as one step edge.
        phase = (index / max(spec.clients, 1)) * period
        while env.now < deadline:
            flood = (
                self.flood_think(spec.name)
                if self.flood_think is not None else None
            )
            if flood is None and period > 0:
                position = (env.now - start + phase) % period
                if position >= spec.burst_on_ms:
                    # Off phase: sleep to the next on-window (capped at
                    # the deadline so the loop always terminates).
                    wait = min(period - position, deadline - env.now)
                    if wait > 0:
                        yield env.timeout(wait)
                    continue
            if self.governor is not None:
                yield from self.governor.acquire(spec.name)
            serial += 1
            counts.issued += 1
            try:
                ok = yield from self._one_op(
                    client, spec, tree, rng, index, serial, created
                )
                if ok:
                    counts.ok += 1
                else:
                    counts.failed += 1
            except self.absorb_errors as exc:
                counts.failed += 1
                name = type(exc).__name__
                counts.errors[name] = counts.errors.get(name, 0) + 1
            think = flood if flood is not None else spec.think_ms
            if think > 0:
                yield env.timeout(rng.uniform(0.5 * think, 1.5 * think))

    def _one_op(
        self, client, spec: TenantSpec, tree: GeneratedTree,
        rng: random.Random, index: int, serial: int, created: List[str],
    ) -> Generator:
        op = self._draw_op(rng, spec)
        if op is OpType.CREATE_FILE:
            path = f"{rng.choice(tree.directories)}/t{index}_{serial}"
            response = yield from client.create_file(path)
            if response.ok:
                created.append(path)
        elif op is OpType.MKDIRS:
            path = f"{rng.choice(tree.directories)}/td{index}_{serial}"
            response = yield from client.mkdirs(path)
        elif op is OpType.DELETE:
            if created:
                response = yield from client.delete(created.pop())
            else:
                response = yield from client.stat(rng.choice(tree.files))
        elif op is OpType.MV:
            if created:
                src = created.pop()
                dst = f"{src}_mv{serial}"
                response = yield from client.mv(src, dst)
                if response.ok:
                    created.append(dst)
            else:
                response = yield from client.stat(rng.choice(tree.files))
        elif op is OpType.SET_PERMISSION:
            response = yield from client.set_permission(
                rng.choice(tree.files), 0o644
            )
        elif op is OpType.STAT:
            response = yield from client.stat(rng.choice(tree.files))
        elif op is OpType.LS:
            response = yield from client.ls(rng.choice(tree.directories))
        else:  # READ_FILE
            response = yield from client.read_file(rng.choice(tree.files))
        return response.ok

    def _draw_op(self, rng: random.Random, spec: TenantSpec) -> OpType:
        mix = WORKLOAD_MIXES[spec.workload]
        draw = rng.random() * sum(mix.values())
        for op, weight in mix.items():
            draw -= weight
            if draw <= 0:
                return op
        return OpType.READ_FILE
