"""Trace replay: drive any client from a recorded operation trace.

The paper's industrial workload is synthesized from statistics of
Spotify's HDFS audit logs; users with actual audit logs can replay
them directly.  The trace format is one operation per line::

    <time_ms> <op> <path> [dst_path]

where ``op`` is one of ``create``, ``mkdirs``, ``read``, ``stat``,
``ls``, ``delete``, ``rmr`` (recursive delete), ``mv``.  Lines
starting with ``#`` and blank lines are ignored.  Operations are
issued at their recorded offsets (open loop) across a pool of
clients round-robin; an operation whose time has already passed is
issued immediately (backlog behaviour, like hammer-bench rollover).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.core.messages import OpType
from repro.sim import AllOf, Environment

_OP_NAMES = {
    "create": OpType.CREATE_FILE,
    "mkdirs": OpType.MKDIRS,
    "read": OpType.READ_FILE,
    "stat": OpType.STAT,
    "ls": OpType.LS,
    "delete": OpType.DELETE,
    "rmr": OpType.DELETE,
    "mv": OpType.MV,
}


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line."""

    time_ms: float
    op: OpType
    path: str
    dst_path: Optional[str] = None
    recursive: bool = False


class TraceParseError(ValueError):
    """A trace line could not be parsed."""


def parse_trace(lines: Iterable[str]) -> List[TraceRecord]:
    """Parse trace lines into records (sorted by time)."""
    records = []
    for number, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise TraceParseError(f"line {number}: expected 'time op path'")
        time_raw, op_name, path = parts[0], parts[1].lower(), parts[2]
        try:
            time_ms = float(time_raw)
        except ValueError:
            raise TraceParseError(f"line {number}: bad timestamp {time_raw!r}")
        op = _OP_NAMES.get(op_name)
        if op is None:
            raise TraceParseError(
                f"line {number}: unknown op {op_name!r} "
                f"(expected one of {sorted(_OP_NAMES)})"
            )
        dst = None
        if op is OpType.MV:
            if len(parts) < 4:
                raise TraceParseError(f"line {number}: mv needs a dst path")
            dst = parts[3]
        records.append(TraceRecord(
            time_ms=time_ms, op=op, path=path, dst_path=dst,
            recursive=op_name == "rmr",
        ))
    records.sort(key=lambda record: record.time_ms)
    return records


def load_trace(handle: TextIO) -> List[TraceRecord]:
    """Parse a trace from an open text file."""
    return parse_trace(handle)


@dataclass
class ReplayResult:
    issued: int
    succeeded: int
    failed: int
    duration_ms: float

    @property
    def throughput(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.issued * 1_000.0 / self.duration_ms


class TraceReplayer:
    """Replays a parsed trace against a pool of clients."""

    def __init__(self, env: Environment, records: Sequence[TraceRecord]) -> None:
        self.env = env
        self.records = list(records)

    def run(self, clients: Sequence) -> Generator:
        """Replay to completion; returns a :class:`ReplayResult`."""
        if not clients:
            raise ValueError("need at least one client")
        start = self.env.now
        outcome = {"ok": 0, "failed": 0}
        # Shard records round-robin; each worker preserves its own
        # records' recorded order and offsets.
        shards: List[List[TraceRecord]] = [[] for _ in clients]
        for index, record in enumerate(self.records):
            shards[index % len(clients)].append(record)
        workers = [
            self.env.process(self._worker(client, shard, start, outcome))
            for client, shard in zip(clients, shards)
            if shard
        ]
        if workers:
            yield AllOf(self.env, workers)
        return ReplayResult(
            issued=len(self.records),
            succeeded=outcome["ok"],
            failed=outcome["failed"],
            duration_ms=self.env.now - start,
        )

    def _worker(
        self,
        client,
        shard: Sequence[TraceRecord],
        start: float,
        outcome: dict,
    ) -> Generator:
        for record in shard:
            due = start + record.time_ms
            if self.env.now < due:
                yield self.env.timeout(due - self.env.now)
            response = yield from client.execute(
                record.op, record.path,
                dst_path=record.dst_path, recursive=record.recursive,
            )
            outcome["ok" if response.ok else "failed"] += 1
