"""The chaos engine: scheduled fault activation + injection queries.

One :class:`ChaosEngine` attaches to ``env.chaos`` (mirroring
``env.tracer``/``env.metrics``: instrumented sites pay a single
``is None`` check when chaos is off).  :meth:`start` runs a
:class:`~repro.chaos.scenario.Scenario` — a scheduler process walks
the activation/deactivation edges in time order, and while a fault is
active the fabric/store/coordinator hooks consult the engine on every
request.

Determinism: the engine's RNG is derived from ``(seed, "chaos")``
exactly like a :class:`repro.sim.RngStreams` stream, and is only
consulted while a matching fault is active, so

* an attached engine with no scenario (or outside every fault window)
  leaves the run byte-identical to one with no engine at all, and
* two same-seed runs of the same scenario produce identical event
  hashes and identical fault logs (:meth:`log_hash`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim import Environment, Interrupt

from repro.chaos.faults import Fault, derive_rng, make_fault
from repro.chaos.scenario import Scenario


@dataclass(frozen=True)
class FaultEvent:
    """One entry in the engine's fault log.

    ``action`` is ``activate``/``deactivate`` for scheduled edges and
    ``inject`` for individual injections (a dropped message, a kill, a
    severed batch ...).  ``detail`` is a sorted tuple of key/value
    pairs so events hash and compare stably.
    """

    time_ms: float
    kind: str
    action: str
    detail: Tuple[Tuple[str, Any], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time_ms": self.time_ms,
            "kind": self.kind,
            "action": self.action,
            **dict(self.detail),
        }

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail)
        return (f"t={self.time_ms:.3f}ms {self.kind} {self.action}"
                + (f" {detail}" if detail else ""))


class ChaosEngine:
    """Deterministic fault injection over one environment."""

    def __init__(
        self,
        env: Environment,
        platform: Any = None,
        coordinator: Any = None,
        store: Any = None,
        seed: int = 0,
        fleet: Any = None,
    ) -> None:
        self.env = env
        self.platform = platform
        self.coordinator = coordinator
        self.store = store
        self.fleet = fleet
        self.seed = seed
        self.rng = derive_rng(seed, "chaos")
        #: The system's :class:`~repro.resilience.ResilienceManager`
        #: (``disable_shedding``'s latch target); None when detached.
        self.resilience: Any = None
        #: The tenant QoS governor, wired by the runner in tenant mode
        #: (``tenant_flood``'s ``disable_isolation`` kills it).
        self.governor: Any = None
        #: Tenant → flood think-ms latched *past* deactivation by
        #: ``disable_isolation`` (one-way, like a dead repair daemon).
        self.tenant_flood_latch: Dict[str, float] = {}
        self.scenario: Optional[Scenario] = None
        self.epoch: Optional[float] = None
        self.log: List[FaultEvent] = []
        self._active: Dict[str, List[Fault]] = {}
        self._proc = None

    # -- lifecycle -----------------------------------------------------
    def start(self, scenario: Scenario) -> "ChaosEngine":
        """Begin running ``scenario``; its times are relative to now."""
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("a scenario is already running")
        faults = [make_fault(spec, self) for spec in scenario.faults]
        self.scenario = scenario
        self.epoch = self.env.now
        edges: List[Tuple[float, int, str, Fault]] = []
        for index, fault in enumerate(faults):
            spec = fault.spec
            edges.append((spec.at_ms, 2 * index, "activate", fault))
            if spec.duration_ms > 0:
                edges.append(
                    (spec.clear_ms, 2 * index + 1, "deactivate", fault)
                )
        edges.sort(key=lambda edge: (edge[0], edge[1]))
        self._proc = self.env.process(self._run(edges))
        return self

    def stop(self) -> None:
        """Cancel the scenario and deactivate everything still active."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
        self._proc = None
        for kind in sorted(self._active):
            for fault in list(self._active.get(kind, ())):
                self._deactivate(fault)

    def _run(self, edges) -> Any:
        try:
            for at_ms, _seq, action, fault in edges:
                delay = self.epoch + at_ms - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                if action == "activate":
                    self._activate(fault)
                else:
                    self._deactivate(fault)
        except Interrupt:
            return

    def _activate(self, fault: Fault) -> None:
        if fault.spec.duration_ms > 0:
            fault.until = self.env.now + fault.spec.duration_ms
        self._active.setdefault(fault.kind, []).append(fault)
        self._log(fault.kind, "activate", **dict(fault.spec.params))
        fault.on_activate()

    def _deactivate(self, fault: Fault) -> None:
        bucket = self._active.get(fault.kind, [])
        if fault not in bucket:
            return
        bucket.remove(fault)
        if not bucket:
            self._active.pop(fault.kind, None)
        fault.on_deactivate()
        self._log(fault.kind, "deactivate")

    # -- introspection -------------------------------------------------
    def active_faults(self, kind: Optional[str] = None) -> List[Fault]:
        if kind is not None:
            return list(self._active.get(kind, ()))
        return [f for bucket in self._active.values() for f in bucket]

    @property
    def first_fault_at_ms(self) -> Optional[float]:
        """Absolute sim-time of the earliest fault activation."""
        if self.scenario is None or self.epoch is None or not self.scenario.faults:
            return None
        return self.epoch + self.scenario.first_fault_ms

    @property
    def faults_clear_at_ms(self) -> Optional[float]:
        """Absolute sim-time after which no scheduled fault is active."""
        if self.scenario is None or self.epoch is None:
            return None
        return self.epoch + self.scenario.clear_ms

    # -- fault log -----------------------------------------------------
    def _log(self, kind: str, action: str, **detail: Any) -> None:
        event = FaultEvent(
            self.env.now, kind, action, tuple(sorted(detail.items()))
        )
        self.log.append(event)
        tracer = self.env.tracer
        if tracer is not None and action != "inject":
            # Scheduled edges land in the trace; per-injection points
            # are emitted by the hook sites themselves where needed.
            tracer.point(f"chaos.{action}", kind, **dict(detail))

    def log_hash(self) -> str:
        """Stable fingerprint of the fault log (seed-reproducibility)."""
        digest = hashlib.blake2b(digest_size=16)
        for event in self.log:
            digest.update(str(event).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    # -- injection queries (called by instrumented sites) --------------
    def tcp_extra_delay_ms(self, deployment: str) -> float:
        """Extra latency to add before a TCP send."""
        extra = 0.0
        for fault in self._active.get("tcp_delay", ()):
            if not fault.matches(deployment):
                continue
            p = float(fault.params.get("p", 1.0))
            if p < 1.0 and self.rng.random() >= p:
                continue
            extra += float(fault.params.get("extra_ms", 5.0))
            jitter = float(fault.params.get("jitter_ms", 0.0))
            if jitter > 0.0:
                extra += self.rng.uniform(0.0, jitter)
        return extra

    def tcp_should_drop(self, deployment: str) -> bool:
        """True when this TCP request is lost in the fabric."""
        for fault in self._active.get("tcp_drop", ()):
            if fault.matches(deployment) and (
                self.rng.random() < float(fault.params.get("p", 0.1))
            ):
                self._log("tcp_drop", "inject", deployment=deployment)
                return True
        return False

    def tcp_should_duplicate(self, deployment: str) -> bool:
        """True when this TCP request is delivered twice."""
        for fault in self._active.get("tcp_duplicate", ()):
            if fault.matches(deployment) and (
                self.rng.random() < float(fault.params.get("p", 0.1))
            ):
                self._log("tcp_duplicate", "inject", deployment=deployment)
                return True
        return False

    def gateway_effects(self) -> Tuple[float, bool]:
        """(extra delay ms, shed?) for one HTTP gateway transit."""
        extra = 0.0
        fail = False
        for fault in self._active.get("http_brownout", ()):
            extra += float(fault.params.get("extra_ms", 0.0))
            jitter = float(fault.params.get("jitter_ms", 0.0))
            if jitter > 0.0:
                extra += self.rng.uniform(0.0, jitter)
            fail_p = float(fault.params.get("fail_p", 0.0))
            if fail_p > 0.0 and self.rng.random() < fail_p:
                fail = True
        if fail:
            self._log("http_brownout", "inject", effect="shed")
        return extra, fail

    def store_hold_ms(self, shard_index: int) -> float:
        """How long a request touching ``shard_index`` must stall."""
        hold = 0.0
        for fault in self._active.get("shard_outage", ()):
            if fault.matches_shard(shard_index) and fault.until is not None:
                hold = max(hold, fault.until - self.env.now)
        return max(0.0, hold)

    def store_factor(self, shard_index: int) -> float:
        """Service-time multiplier for ``shard_index``."""
        factor = 1.0
        for fault in self._active.get("store_slowdown", ()):
            if fault.matches_shard(shard_index):
                factor *= float(fault.params.get("factor", 2.0))
        return factor

    def datanode_disk_factor(
        self, node_id: str, rack: Optional[str] = None
    ) -> float:
        """Disk service-time multiplier for one DataNode.

        Stacks the factors of every active ``disk_slow`` fault whose
        rack/datanode scope matches.  Pure computation — no RNG, no
        logging — so calling it from every disk write perturbs
        nothing.
        """
        factor = 1.0
        for fault in self._active.get("disk_slow", ()):
            if fault.matches_datanode(node_id, rack):
                factor *= fault.factor
        return factor

    def tenant_flood_think_ms(self, tenant: str) -> Optional[float]:
        """Flooded think time for ``tenant``'s client loops, or None.

        Pure computation (no RNG, no logging), consulted by the
        multi-tenant workload loops before every op.  The latch
        (``disable_isolation``) wins over — and outlives — the active
        fault window.
        """
        out = self.tenant_flood_latch.get(tenant)
        for fault in self._active.get("tenant_flood", ()):
            if fault.tenant == tenant:
                think = fault.think_ms
                out = think if out is None else min(out, think)
        return out

    def think_factor(self) -> float:
        """Multiplier for closed-loop client think times.

        Pure computation (no RNG, no logging), consulted by the chaos
        runner's client loops before every sleep.  Factors of
        overlapping ``load_spike`` faults stack multiplicatively;
        outside every window the result is exactly 1.0, so the
        multiply is a bit-exact identity and legacy scenario hashes
        are untouched.
        """
        factor = 1.0
        for fault in self._active.get("load_spike", ()):
            factor *= fault.think_factor
        return factor

    def ack_should_drop(self, deployment: str, member_id: str) -> bool:
        """True when this member's INV ACK is lost."""
        for fault in self._active.get("ack_loss", ()):
            if fault.matches(deployment) and (
                self.rng.random() < float(fault.params.get("p", 0.5))
            ):
                self._log(
                    "ack_loss", "inject",
                    deployment=deployment, member=member_id,
                )
                return True
        return False


def install_chaos(
    env: Environment,
    system: Any = None,
    platform: Any = None,
    coordinator: Any = None,
    store: Any = None,
    seed: int = 0,
    fleet: Any = None,
) -> ChaosEngine:
    """Attach a :class:`ChaosEngine` to ``env.chaos``.

    Pass a built :class:`~repro.core.LambdaFS` as ``system`` to wire
    the platform/coordinator/store targets in one go, or supply them
    individually (any may be None — faults needing an absent target
    become no-ops).
    """
    if system is not None:
        platform = platform if platform is not None else getattr(system, "platform", None)
        coordinator = (
            coordinator if coordinator is not None
            else getattr(system, "coordinator", None)
        )
        store = store if store is not None else getattr(system, "store", None)
        fleet = (
            fleet if fleet is not None
            else getattr(system, "datanode_fleet", None)
        )
    engine = ChaosEngine(
        env, platform=platform, coordinator=coordinator, store=store, seed=seed,
        fleet=fleet,
    )
    if system is not None:
        engine.resilience = getattr(system, "resilience", None)
    env.chaos = engine
    return engine
