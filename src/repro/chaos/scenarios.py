"""Built-in chaos scenarios and the regression matrix.

Every scenario follows the same shape: ~1.5 s of steady state (the
verifier's SLO baseline), a fault window of a few seconds, then
recovery.  Times are relative to engine start, after system prewarm
and the TCP-connection prelude — see :mod:`repro.chaos.runner`.

``MATRIX`` is the regression set run by ``repro chaos matrix``: one
scenario per layer (FaaS kills, TCP fabric, HTTP gateway, metastore
shard, coordinator ACKs), each expected to pass all three verifier
gates.  ``ack-loss-noretry`` is the deliberately broken recovery path
— ACK loss with coordinator redelivery disabled — kept out of the
matrix and *expected to fail* (the verifier must flag the stranded
writers); it doubles as the self-test that the verifier can actually
catch a broken system.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.chaos.scenario import FaultSpec, Scenario

#: The regression matrix (all expected to pass).
MATRIX: Tuple[str, ...] = (
    "nn-kills",
    "tcp-sever",
    "gateway-brownout",
    "shard-outage",
    "ack-loss",
)

#: The data-plane matrix (needs a DataNode fleet; ``repro chaos
#: matrix --scenarios datanode-kill disk-slow``).
DATANODE_MATRIX: Tuple[str, ...] = (
    "datanode-kill",
    "disk-slow",
)

#: The multi-tenant matrix (tenant fleets + fairness gate; ``repro
#: chaos matrix --scenarios noisy-neighbor noisy-neighbor-runaway``).
TENANT_MATRIX: Tuple[str, ...] = (
    "noisy-neighbor",
    "noisy-neighbor-runaway",
)

#: The overload/resilience matrix (needs the resilience layer; ``repro
#: resilience matrix``).
RESILIENCE_MATRIX: Tuple[str, ...] = (
    "overload-storm",
    "retry-storm-amplification",
    "metastable-brownout",
)

#: Scenarios whose verifier verdict is expected to be FAIL.
EXPECTED_FAIL: Tuple[str, ...] = (
    "ack-loss-noretry",
    "datanode-kill-norepair",
    "noisy-neighbor-runaway",
    "metastable-brownout-noshed",
)


def builtin_scenarios() -> Dict[str, Scenario]:
    """Name → scenario for the whole built-in catalog."""
    scenarios = [
        Scenario(
            name="control",
            description="no-fault control: steady-state load only — the "
                        "detection gate requires zero incidents (any page "
                        "is a false positive)",
            faults=(),
        ),
        Scenario(
            name="nn-kills",
            description="§5.6: a warm NameNode dies every 900 ms for 4 s "
                        "(seeded random victims)",
            faults=(
                FaultSpec("namenode_kill", at_ms=1_500.0, duration_ms=4_000.0,
                          params={"interval_ms": 900.0, "policy": "random"}),
            ),
        ),
        Scenario(
            name="tcp-sever",
            description="fabric partition: every TCP connection severed, "
                        "re-severed every 1.5 s for 3.5 s",
            faults=(
                FaultSpec("tcp_sever", at_ms=1_500.0, duration_ms=3_500.0,
                          params={"repeat_ms": 1_500.0}),
            ),
        ),
        Scenario(
            name="gateway-brownout",
            description="HTTP gateway brownout (+latency, 25% shed) while "
                        "a sever pushes traffic onto the gateway",
            faults=(
                FaultSpec("tcp_sever", at_ms=1_400.0),
                FaultSpec("http_brownout", at_ms=1_500.0, duration_ms=3_000.0,
                          params={"extra_ms": 150.0, "jitter_ms": 100.0,
                                  "fail_p": 0.25}),
            ),
        ),
        Scenario(
            name="shard-outage",
            description="metastore shard 0 unavailable 1.2 s inside a "
                        "3.5 s 3x slow-store window",
            faults=(
                FaultSpec("store_slowdown", at_ms=1_500.0,
                          duration_ms=3_500.0, params={"factor": 3.0}),
                FaultSpec("shard_outage", at_ms=1_500.0, duration_ms=1_200.0,
                          params={"shard": 0}),
            ),
        ),
        Scenario(
            name="ack-loss",
            description="coordinator loses half of all INV ACKs for 3 s; "
                        "redelivery must unblock every writer",
            faults=(
                FaultSpec("ack_loss", at_ms=1_500.0, duration_ms=3_000.0,
                          params={"p": 0.5}),
            ),
        ),
        Scenario(
            name="ack-loss-noretry",
            description="broken recovery path: every ACK lost with "
                        "redelivery disabled — writers strand; the "
                        "verifier MUST fail this run",
            faults=(
                FaultSpec("ack_loss", at_ms=1_500.0, duration_ms=2_000.0,
                          params={"p": 1.0, "disable_retry": True}),
            ),
        ),
        Scenario(
            name="membership-flap",
            description="members flap out/in of the coordinator registry "
                        "under 20x-delayed death notifications",
            faults=(
                FaultSpec("watch_delay", at_ms=1_400.0, duration_ms=3_000.0,
                          params={"factor": 20.0}),
                FaultSpec("membership_flap", at_ms=1_500.0,
                          params={"flap_ms": 700.0}),
                FaultSpec("membership_flap", at_ms=2_600.0,
                          params={"flap_ms": 700.0}),
            ),
        ),
        Scenario(
            name="cold-storm",
            description="kills force re-provisioning while cold starts "
                        "run 4x slower",
            faults=(
                FaultSpec("cold_start_storm", at_ms=1_500.0,
                          duration_ms=3_500.0, params={"factor": 4.0}),
                FaultSpec("namenode_kill", at_ms=1_600.0, duration_ms=3_000.0,
                          params={"interval_ms": 800.0, "policy": "youngest"}),
            ),
        ),
        Scenario(
            name="capacity-crunch",
            description="cluster vCPU budget crushed to 8% with the fabric "
                        "severed — Appendix C churn territory",
            faults=(
                FaultSpec("capacity_crunch", at_ms=1_500.0,
                          duration_ms=3_000.0, params={"fraction": 0.08}),
                FaultSpec("tcp_sever", at_ms=1_600.0),
            ),
        ),
        Scenario(
            name="datanode-kill",
            description="2 of the DataNode fleet crash 400 ms apart; the "
                        "re-replication scanner must restore replication "
                        "factor within the SLO window",
            faults=(
                FaultSpec("datanode_kill", at_ms=2_000.0, duration_ms=1_000.0,
                          params={"count": 2, "interval_ms": 400.0}),
            ),
        ),
        Scenario(
            name="datanode-kill-norepair",
            description="broken recovery path: same kills with the "
                        "re-replication scanner dead — blocks stay "
                        "under-replicated; the verifier MUST fail this run",
            faults=(
                FaultSpec("datanode_kill", at_ms=2_000.0, duration_ms=1_000.0,
                          params={"count": 2, "interval_ms": 400.0,
                                  "disable_repair": True}),
            ),
        ),
        Scenario(
            name="disk-slow",
            description="every disk in rack0 runs 8x slower for 3 s — "
                        "pipelines crossing the rack drag, nothing dies",
            faults=(
                FaultSpec("disk_slow", at_ms=1_500.0, duration_ms=3_000.0,
                          params={"factor": 8.0, "rack": "rack0"}),
            ),
        ),
        Scenario(
            name="noisy-neighbor",
            description="multi-tenant: the 'hog' tenant floods (zero "
                        "think time) for 3.5 s; the QoS governor must cap "
                        "it so victim p99 and the Jain index recover "
                        "within the SLO window",
            faults=(
                FaultSpec("tenant_flood", at_ms=2_000.0, duration_ms=3_500.0,
                          params={"tenant": "hog", "think_ms": 0.0}),
            ),
        ),
        Scenario(
            name="noisy-neighbor-runaway",
            description="broken QoS path: the same flood with isolation "
                        "disabled — the governor dies and the flood never "
                        "clears; the verifier MUST fail this run",
            faults=(
                FaultSpec("tenant_flood", at_ms=2_000.0, duration_ms=3_500.0,
                          params={"tenant": "hog", "think_ms": 0.0,
                                  "disable_isolation": True}),
            ),
        ),
        Scenario(
            name="overload-storm",
            description="demand surge: every client thinks 50x faster for "
                        "3 s; deadlines, breakers, and the shedder must "
                        "keep goodput honest through the storm",
            faults=(
                FaultSpec("load_spike", at_ms=1_500.0, duration_ms=3_000.0,
                          params={"think_factor": 0.02}),
            ),
        ),
        Scenario(
            name="retry-storm-amplification",
            description="surge meets brownout: a 50x demand spike while "
                        "the store runs 12x slower — stragglers breed "
                        "resubmits; retry budgets, breakers, and deadline "
                        "caps must damp the amplification",
            faults=(
                FaultSpec("load_spike", at_ms=1_500.0, duration_ms=3_000.0,
                          params={"think_factor": 0.02}),
                FaultSpec("store_slowdown", at_ms=1_700.0, duration_ms=2_500.0,
                          params={"factor": 12.0}),
            ),
        ),
        Scenario(
            name="metastable-brownout",
            description="metastable overload: an 800x store brownout under "
                        "a 100x demand spike drives write convoys on the "
                        "hot file set — work for clients that already gave "
                        "up must be refused, not executed (gate 7: goodput "
                        "recovery, zero commits past deadline)",
            faults=(
                FaultSpec("store_slowdown", at_ms=1_500.0, duration_ms=3_500.0,
                          params={"factor": 800.0}),
                FaultSpec("load_spike", at_ms=1_600.0, duration_ms=3_300.0,
                          params={"think_factor": 0.01}),
            ),
        ),
        Scenario(
            name="metastable-brownout-noshed",
            description="broken resilience path: the same brownout with "
                        "enforcement latched off before the storm — "
                        "convoyed writes grind past their stamped "
                        "deadlines and commit anyway; the verifier MUST "
                        "fail this run",
            faults=(
                FaultSpec("disable_shedding", at_ms=1_000.0),
                FaultSpec("store_slowdown", at_ms=1_500.0, duration_ms=3_500.0,
                          params={"factor": 800.0}),
                FaultSpec("load_spike", at_ms=1_600.0, duration_ms=3_300.0,
                          params={"think_factor": 0.01}),
            ),
        ),
        Scenario(
            name="mixed",
            description="kitchen sink: kills + message loss + brownout "
                        "overlapping",
            faults=(
                FaultSpec("namenode_kill", at_ms=1_500.0, duration_ms=3_500.0,
                          params={"interval_ms": 1_100.0, "policy": "random"}),
                FaultSpec("tcp_drop", at_ms=2_000.0, duration_ms=2_500.0,
                          params={"p": 0.15}),
                FaultSpec("http_brownout", at_ms=2_500.0, duration_ms=2_000.0,
                          params={"extra_ms": 100.0, "fail_p": 0.1}),
            ),
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


def get_scenario(name: str) -> Scenario:
    scenarios = builtin_scenarios()
    if name not in scenarios:
        raise KeyError(
            f"unknown scenario {name!r}; built-ins: {sorted(scenarios)}"
        )
    return scenarios[name]
