"""The chaos scenario DSL: timed fault activations.

A :class:`Scenario` is a named schedule of :class:`FaultSpec` entries.
Times are **relative to the instant the engine is started** (not
absolute sim time), so the same scenario file produces the same fault
timeline regardless of how long system prewarm or the workload prelude
took.  Scenarios are plain data — they can be built in code, loaded
from JSON files, and round-tripped — and carry no randomness of their
own: every stochastic decision (drop coin flips, victim picks) is made
by the engine's seeded RNG at injection time.

JSON form::

    {
      "name": "tcp-sever",
      "description": "...",
      "faults": [
        {"kind": "tcp_sever", "at_ms": 1500.0},
        {"kind": "tcp_drop", "at_ms": 1500.0, "duration_ms": 2000.0,
         "params": {"p": 0.3}}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault activation.

    ``at_ms`` is when the fault activates, relative to engine start.
    ``duration_ms`` is how long it stays active; zero means a one-shot
    action (e.g. severing connections) or a fault that manages its own
    lifetime.  ``params`` are fault-kind-specific knobs — see the
    catalog in :mod:`repro.chaos.faults`.
    """

    kind: str
    at_ms: float
    duration_ms: float = 0.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError(f"{self.kind}: at_ms must be >= 0")
        if self.duration_ms < 0:
            raise ValueError(f"{self.kind}: duration_ms must be >= 0")

    @property
    def clear_ms(self) -> float:
        """When this fault is over, relative to engine start."""
        return self.at_ms + self.duration_ms

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "at_ms": self.at_ms}
        if self.duration_ms:
            out["duration_ms"] = self.duration_ms
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        unknown = set(data) - {"kind", "at_ms", "duration_ms", "params"}
        if unknown:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(unknown)}")
        if "kind" not in data or "at_ms" not in data:
            raise ValueError("FaultSpec requires 'kind' and 'at_ms'")
        return cls(
            kind=str(data["kind"]),
            at_ms=float(data["at_ms"]),
            duration_ms=float(data.get("duration_ms", 0.0)),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class Scenario:
    """A named, ordered schedule of fault activations."""

    name: str
    faults: Tuple[FaultSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def first_fault_ms(self) -> float:
        """Activation time of the earliest fault (inf when empty)."""
        if not self.faults:
            return float("inf")
        return min(spec.at_ms for spec in self.faults)

    @property
    def clear_ms(self) -> float:
        """When the last fault has cleared, relative to engine start."""
        if not self.faults:
            return 0.0
        return max(spec.clear_ms for spec in self.faults)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        if "name" not in data:
            raise ValueError("scenario JSON requires 'name'")
        faults = data.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ValueError("'faults' must be a list")
        return cls(
            name=str(data["name"]),
            faults=tuple(FaultSpec.from_dict(entry) for entry in faults),
            description=str(data.get("description", "")),
        )


def load_scenario(path: str) -> Scenario:
    """Load one scenario from a JSON file."""
    with open(path) as handle:
        data = json.load(handle)
    return Scenario.from_dict(data)


def save_scenario(scenario: Scenario, path: str) -> str:
    """Write a scenario to a JSON file; returns the path."""
    with open(path, "w") as handle:
        json.dump(scenario.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
