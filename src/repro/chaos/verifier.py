"""Recovery verification: did the system survive the scenario?

A chaos run passes three gates:

1. **Invariants** — the tracer's online checkers (ACK-INV coherence,
   lock discipline) recorded zero violations *under fault*;
2. **Liveness** — every client operation terminated by the end of the
   run, either successfully or with a clean typed error: no
   ``client.op`` span is still open (a hung writer blocked on an ACK
   that will never come shows up exactly here);
3. **Recovery SLOs** — from the telemetry time-series: within
   ``window_ms`` after the last fault clears, per-interval mean op
   latency returns to within ``latency_factor`` × the pre-fault
   baseline, and the cache hit-rate recovers to at least
   ``hit_rate_band`` × its baseline.

The verifier is read-only: it consumes the tracer and the sampled
:class:`~repro.telemetry.sampler.TimeSeries` after the run.  Each gate
degrades gracefully — with no tracer the first two are skipped, with
no telemetry (or no pre-fault samples) the SLO gate is skipped — so
unit tests can exercise gates in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class RecoverySLO:
    """Bands the post-fault system must return to."""

    window_ms: float = 10_000.0
    """How long after the last fault clears recovery must happen."""
    latency_factor: float = 3.0
    """Recovered per-interval mean latency ≤ factor × baseline."""
    hit_rate_band: float = 0.5
    """Recovered hit-rate ≥ band × baseline hit-rate."""
    min_baseline_samples: int = 2
    """Pre-fault intervals (with ops) needed to form a baseline."""
    replication_window_ms: Optional[float] = None
    """How long after the last fault clears replication factor must be
    restored (gate 4; defaults to ``window_ms`` when None)."""
    jain_floor: float = 0.8
    """Gate 5 (fairness): within the window, the per-interval Jain
    index over tenant throughput must return to at least this."""
    victim_p99_factor: float = 5.0
    """Gate 5: victim tenants' per-interval p99 must return to within
    this factor of its pre-fault baseline."""
    victim_p99_min_bound_ms: float = 10.0
    """Floor on the victim-p99 recovery bound — interval quantiles are
    bucket upper bounds, so a sub-ms baseline would otherwise make the
    bound finer than the histogram can resolve."""
    detection_window_ms: float = 4_000.0
    """Gate 6 (detection): an incident blaming the injected fault must
    open within this long of the first fault activating (MTTD bound).
    Generous relative to the sampling interval + rule sustain windows,
    tight relative to the fault windows themselves."""
    goodput_floor: float = 0.8
    """Gate 7 (resilience): mean goodput over the second half of the
    recovery window must be at least this fraction of the pre-fault
    baseline — the metastable-collapse detector (a system stuck in the
    bad equilibrium stays near zero long after the fault clears)."""


@dataclass
class VerifierReport:
    """Everything the verifier concluded about one run."""

    passed: bool = True
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    hung_ops: List[str] = field(default_factory=list)
    baseline_latency_ms: Optional[float] = None
    recovered_latency_ms: Optional[float] = None
    baseline_hit_rate: Optional[float] = None
    recovered_hit_rate: Optional[float] = None
    recovery_time_ms: Optional[float] = None
    """Last-fault-clear → first interval back inside the band."""
    lost_blocks: List[int] = field(default_factory=list)
    """Blocks with zero live replicas at verification time."""
    replication_recovery_ms: Optional[float] = None
    """Last-fault-clear → last re-replication repair completing."""
    baseline_victim_p99_ms: Optional[float] = None
    recovered_victim_p99_ms: Optional[float] = None
    jain_min: Optional[float] = None
    """Worst per-interval Jain index anywhere in the run."""
    jain_recovered: Optional[float] = None
    fairness_recovery_ms: Optional[float] = None
    """Last-fault-clear → first interval back inside both fairness
    bands (Jain floor and victim-p99 bound)."""
    incidents_detected: Optional[int] = None
    """Incident count from the detection gate (None = gate not run)."""
    detection_ms: Optional[float] = None
    """First-fault-activation → matching incident opening (MTTD)."""
    top_suspect: Optional[str] = None
    """The matching incident's top-ranked suspect kind."""
    baseline_goodput: Optional[float] = None
    """Gate 7: pre-fault mean successful ops per telemetry interval."""
    recovered_goodput: Optional[float] = None
    """Gate 7: mean goodput over the second half of the window."""
    deadline_violations: Optional[int] = None
    """Gate 7: ops that executed past their deadline (must be 0)."""
    breaker_transitions: Optional[int] = None
    """Gate 7: breaker FSM transitions audited (None = gate not run)."""

    def _ok(self, message: str) -> None:
        self.checks.append(f"PASS {message}")

    def _fail(self, message: str) -> None:
        self.passed = False
        self.checks.append(f"FAIL {message}")
        self.failures.append(message)

    def _skip(self, message: str) -> None:
        self.checks.append(f"skip {message}")

    def render(self) -> str:
        lines = [f"verifier: {'PASS' if self.passed else 'FAIL'}"]
        lines.extend(f"  {check}" for check in self.checks)
        for hung in self.hung_ops:
            lines.append(f"  hung: {hung}")
        for violation in self.violations:
            lines.append(f"  violation: {violation}")
        return "\n".join(lines)


def _family_totals(timeseries: Any, family: str) -> List[Tuple[float, float]]:
    """Per-sample sum of every labelled series in ``family``."""
    by_key = timeseries.series_matching(family)
    if not by_key:
        return []
    totals: List[Tuple[float, float]] = []
    for index, (t_ms, _values) in enumerate(timeseries.samples):
        total = 0.0
        for points in by_key.values():
            total += points[index][1]
        totals.append((t_ms, total))
    return totals


def _deltas(points: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    out: List[Tuple[float, float]] = []
    previous = 0.0
    for t_ms, value in points:
        out.append((t_ms, max(0.0, value - previous)))
        previous = value
    return out


class ChaosVerifier:
    """Post-run verdict over tracer + telemetry for one chaos run."""

    def __init__(
        self,
        tracer: Any = None,
        timeseries: Any = None,
        engine: Any = None,
        slo: Optional[RecoverySLO] = None,
        fleet: Any = None,
        tenants: Any = None,
        incidents: Any = None,
        resilience: Any = None,
    ) -> None:
        self.tracer = tracer
        self.timeseries = timeseries
        self.engine = engine
        self.slo = slo or RecoverySLO()
        self.fleet = fleet
        self.tenants = tenants
        """Tenant specs of a multi-tenant run (for fair-share weights
        and SLO targets); None outside tenant mode."""
        self.incidents = incidents
        """An :class:`repro.incidents.IncidentReport` from a
        ``--detect`` run; None keeps gate 6 out of the verdict
        entirely (detector-off runs are judged as before)."""
        self.resilience = resilience
        """The run's :class:`~repro.resilience.ResilienceManager`;
        None keeps gate 7 out of the verdict entirely."""

    def verify(self) -> VerifierReport:
        report = VerifierReport()
        self._check_invariants(report)
        self._check_liveness(report)
        self._check_slos(report)
        self._check_replication(report)
        self._check_fairness(report)
        self._check_detection(report)
        self._check_resilience(report)
        return report

    # -- gate 1: invariants --------------------------------------------
    def _check_invariants(self, report: VerifierReport) -> None:
        if self.tracer is None:
            report._skip("invariants (no tracer)")
            return
        violations = self.tracer.violations()
        if violations:
            report.violations = [str(v) for v in violations]
            report._fail(f"invariants: {len(violations)} violation(s)")
        else:
            report._ok("invariants: 0 violations")

    # -- gate 2: liveness ----------------------------------------------
    def _check_liveness(self, report: VerifierReport) -> None:
        if self.tracer is None:
            report._skip("liveness (no tracer)")
            return
        hung = [
            span for span in self.tracer.open_spans()
            if span.kind == "client.op"
        ]
        if hung:
            report.hung_ops = [
                f"{span.actor} {span.attrs.get('op')} "
                f"{span.attrs.get('path')} (since t={span.start_ms:.1f}ms)"
                for span in hung
            ]
            report._fail(f"liveness: {len(hung)} client op(s) never terminated")
        else:
            report._ok("liveness: every client op terminated")

    # -- gate 4: replication factor ------------------------------------
    def _check_replication(self, report: VerifierReport) -> None:
        """Replication factor restored within the SLO window.

        Three ways to fail, checked from the fleet's current state and
        the scanner's repair records:

        * **lost blocks** — any block whose every replica sits on a
          dead node is unrecoverable data loss, a hard FAIL (never a
          silent empty placement);
        * **standing deficit** — blocks still below target RF when the
          run ends (the dead-repair-daemon case);
        * **late repairs** — every repair must complete by
          ``clear + replication_window_ms`` (``window_ms`` when unset).
        """
        if self.fleet is None:
            report._skip("replication (no DataNode fleet)")
            return
        scanner = self.fleet.scanner
        deficits = scanner.under_replicated()
        lost = sorted(bid for bid, holders in deficits.items() if not holders)
        if lost:
            report.lost_blocks = lost
            report._fail(
                f"replication: {len(lost)} block(s) lost "
                f"(zero live replicas): {lost[:8]}"
            )
            return
        if deficits:
            report._fail(
                f"replication: {len(deficits)} block(s) still "
                "under-replicated at end of run"
            )
            return
        _first, clear = self._fault_window()
        repairs = scanner.records
        if clear is not None and repairs is not None and repairs:
            window = self.slo.replication_window_ms
            if window is None:
                window = self.slo.window_ms
            deadline = clear + window
            late = [r for r in repairs if r.restored_ms > deadline]
            last_restore = max(r.restored_ms for r in repairs)
            report.replication_recovery_ms = max(0.0, last_restore - clear)
            if late:
                report._fail(
                    f"replication: {len(late)} repair(s) finished after the "
                    f"{window:.0f} ms window (last at "
                    f"{last_restore - clear:+.0f} ms past clear)"
                )
                return
            report._ok(
                f"replication: RF restored, {len(repairs)} repair(s) done "
                f"{report.replication_recovery_ms:.0f} ms after faults cleared"
            )
            return
        report._ok("replication: no under-replicated blocks")

    # -- gate 3: recovery SLOs -----------------------------------------
    def _fault_window(self) -> Tuple[Optional[float], Optional[float]]:
        if self.engine is None:
            return None, None
        return self.engine.first_fault_at_ms, self.engine.faults_clear_at_ms

    def _check_slos(self, report: VerifierReport) -> None:
        first_fault, clear = self._fault_window()
        if self.timeseries is None or first_fault is None or clear is None:
            report._skip("recovery SLO (no telemetry or no fault window)")
            return
        self._check_latency_slo(report, first_fault, clear)
        self._check_hit_rate_slo(report, first_fault, clear)

    def _latency_intervals(self) -> List[Tuple[float, float]]:
        """(t, mean per-interval op latency) for intervals with ops."""
        counts = _deltas(_family_totals(self.timeseries, "op_latency_ms_count"))
        sums = _deltas(_family_totals(self.timeseries, "op_latency_ms_sum"))
        out = []
        for (t_ms, n), (_t, total) in zip(counts, sums):
            if n > 0:
                out.append((t_ms, total / n))
        return out

    def _hit_rate_intervals(self) -> List[Tuple[float, float]]:
        hits = _deltas(_family_totals(self.timeseries, "cache_hits_total"))
        misses = _deltas(_family_totals(self.timeseries, "cache_misses_total"))
        out = []
        for (t_ms, h), (_t, m) in zip(hits, misses):
            if h + m > 0:
                out.append((t_ms, h / (h + m)))
        return out

    def _baseline(
        self, intervals: List[Tuple[float, float]], first_fault: float
    ) -> Optional[float]:
        # Baseline = steady-state intervals between the scenario epoch
        # (excluding prewarm/prelude traffic before it, whose cold
        # starts would inflate the band) and the first activation.
        epoch = self.engine.epoch if self.engine is not None else None
        window = [
            v for t, v in intervals
            if t < first_fault and (epoch is None or t > epoch)
        ]
        if len(window) < self.slo.min_baseline_samples:
            return None
        return sum(window) / len(window)

    def _check_latency_slo(
        self, report: VerifierReport, first_fault: float, clear: float
    ) -> None:
        intervals = self._latency_intervals()
        baseline = self._baseline(intervals, first_fault)
        if baseline is None:
            report._skip("latency SLO (not enough pre-fault samples)")
            return
        report.baseline_latency_ms = baseline
        bound = self.slo.latency_factor * baseline
        deadline = clear + self.slo.window_ms
        for t_ms, value in intervals:
            if t_ms <= clear or t_ms > deadline:
                continue
            if value <= bound:
                report.recovered_latency_ms = value
                report.recovery_time_ms = max(0.0, t_ms - clear)
                report._ok(
                    f"latency SLO: {value:.2f} ms <= "
                    f"{self.slo.latency_factor:g}x baseline "
                    f"({baseline:.2f} ms) after {t_ms - clear:.0f} ms"
                )
                return
        post = [v for t, v in intervals if clear < t <= deadline]
        if not post:
            report._fail(
                "latency SLO: no completed ops observed in the "
                f"{self.slo.window_ms:.0f} ms recovery window"
            )
            return
        report.recovered_latency_ms = post[-1]
        report._fail(
            f"latency SLO: still {post[-1]:.2f} ms "
            f"(> {self.slo.latency_factor:g}x baseline {baseline:.2f} ms) "
            f"{self.slo.window_ms:.0f} ms after faults cleared"
        )

    def _check_hit_rate_slo(
        self, report: VerifierReport, first_fault: float, clear: float
    ) -> None:
        intervals = self._hit_rate_intervals()
        baseline = self._baseline(intervals, first_fault)
        if baseline is None or baseline <= 0.0:
            report._skip("hit-rate SLO (no pre-fault cache baseline)")
            return
        report.baseline_hit_rate = baseline
        floor = self.slo.hit_rate_band * baseline
        deadline = clear + self.slo.window_ms
        for t_ms, value in intervals:
            if t_ms <= clear or t_ms > deadline:
                continue
            if value >= floor:
                report.recovered_hit_rate = value
                report._ok(
                    f"hit-rate SLO: {value:.2f} >= "
                    f"{self.slo.hit_rate_band:g}x baseline ({baseline:.2f}) "
                    f"after {t_ms - clear:.0f} ms"
                )
                return
        post = [v for t, v in intervals if clear < t <= deadline]
        if not post:
            report._skip("hit-rate SLO (no cache traffic after faults cleared)")
            return
        report.recovered_hit_rate = post[-1]
        report._fail(
            f"hit-rate SLO: still {post[-1]:.2f} "
            f"(< {self.slo.hit_rate_band:g}x baseline {baseline:.2f}) "
            f"{self.slo.window_ms:.0f} ms after faults cleared"
        )

    # -- gate 5: tenant fairness ---------------------------------------
    def _noisy_tenants(self) -> List[str]:
        """Tenants the scenario floods (``tenant_flood`` targets)."""
        scenario = (
            getattr(self.engine, "scenario", None)
            if self.engine is not None else None
        )
        if scenario is None:
            return []
        return sorted({
            str(spec.params.get("tenant"))
            for spec in scenario.faults
            if spec.kind == "tenant_flood" and spec.params.get("tenant")
        })

    def _check_fairness(self, report: VerifierReport) -> None:
        """Victims' p99 and the Jain index recover within the window.

        Only engages when the scenario floods a tenant; judged from
        the per-tenant telemetry (:mod:`repro.tenants.fairness`): the
        per-interval Jain index over tenant throughput must return to
        ≥ ``jain_floor`` **and** the victim tenants' per-interval p99
        (merged bucket deltas) to ≤ ``victim_p99_factor`` × its
        pre-fault baseline, in the same interval, within ``window_ms``
        of the last fault clearing.  The isolation-disabled flood
        latches past its window, so this gate is exactly what the
        ``noisy-neighbor-runaway`` expected-FAIL trips.
        """
        noisy = self._noisy_tenants()
        if not noisy:
            return
        if self.timeseries is None:
            report._skip("fairness (no telemetry)")
            return
        from repro.tenants import fairness

        names = fairness.tenant_names(self.timeseries)
        victims = [name for name in names if name not in noisy]
        if not victims:
            report._skip("fairness (no victim-tenant telemetry)")
            return
        first_fault, clear = self._fault_window()
        if first_fault is None or clear is None:
            report._skip("fairness (no fault window)")
            return
        weights = None
        if self.tenants:
            weights = {
                spec.name: getattr(spec, "weight", 1.0)
                for spec in self.tenants
            }
        jain = fairness.jain_timeline(self.timeseries, names, weights=weights)
        p99 = fairness.p99_timeline(self.timeseries, victims)
        if jain:
            report.jain_min = min(value for _t, value in jain)
        epoch = self.engine.epoch if self.engine is not None else None
        baseline_window = [
            value for t, value in p99
            if t < first_fault and (epoch is None or t > epoch)
            and value != float("inf")
        ]
        if len(baseline_window) < self.slo.min_baseline_samples:
            report._skip("fairness (not enough pre-fault samples)")
            return
        baseline = sum(baseline_window) / len(baseline_window)
        report.baseline_victim_p99_ms = baseline
        bound = max(
            self.slo.victim_p99_factor * baseline,
            self.slo.victim_p99_min_bound_ms,
        )
        deadline = clear + self.slo.window_ms
        jain_at = dict(jain)
        p99_at = dict(p99)
        times = sorted(set(jain_at) & set(p99_at))
        for t_ms in times:
            if t_ms <= clear or t_ms > deadline:
                continue
            jain_value = jain_at[t_ms]
            p99_value = p99_at[t_ms]
            if jain_value >= self.slo.jain_floor and p99_value <= bound:
                report.jain_recovered = jain_value
                report.recovered_victim_p99_ms = p99_value
                report.fairness_recovery_ms = max(0.0, t_ms - clear)
                report._ok(
                    f"fairness: Jain {jain_value:.3f} >= "
                    f"{self.slo.jain_floor:g} and victim p99 "
                    f"{p99_value:.1f} ms <= {bound:.1f} ms "
                    f"after {t_ms - clear:.0f} ms"
                )
                return
        post = [
            (jain_at[t], p99_at[t]) for t in times if clear < t <= deadline
        ]
        if not post:
            report._fail(
                "fairness: no tenant ops observed in the "
                f"{self.slo.window_ms:.0f} ms recovery window"
            )
            return
        last_jain, last_p99 = post[-1]
        report.jain_recovered = last_jain
        report.recovered_victim_p99_ms = last_p99
        report._fail(
            f"fairness: still Jain {last_jain:.3f} "
            f"(floor {self.slo.jain_floor:g}) / victim p99 "
            f"{last_p99:.1f} ms (bound {bound:.1f} ms) "
            f"{self.slo.window_ms:.0f} ms after faults cleared"
        )

    # -- gate 6: detection ---------------------------------------------
    def _injected_kinds(self) -> List[str]:
        scenario = (
            getattr(self.engine, "scenario", None)
            if self.engine is not None else None
        )
        if scenario is None:
            return []
        return sorted({spec.kind for spec in scenario.faults})

    def _check_detection(self, report: VerifierReport) -> None:
        """The detector caught the fault — and blamed the right thing.

        Only engages when an incident report was handed in (a
        ``--detect`` run); detector-off runs keep their five-gate
        verdict untouched.  Two contracts:

        * **fault scenarios** — at least one incident must open within
          ``detection_window_ms`` of the first activation *and* its
          top-ranked suspect must be one of the injected fault kinds
          (a detected-but-misattributed incident is a FAIL: an on-call
          chasing the wrong suspect is as bad as no page);
        * **no-fault control** — zero incidents: any page in a clean
          run is a false positive and fails the gate.
        """
        if self.incidents is None:
            return
        incidents = self.incidents.incidents
        report.incidents_detected = len(incidents)
        kinds = self._injected_kinds()
        if not kinds:
            if incidents:
                report._fail(
                    f"detection: {len(incidents)} incident(s) paged in a "
                    "no-fault run (false positive)"
                )
            else:
                report._ok("detection: no faults, no incidents")
            return
        if not incidents:
            report._fail(
                f"detection: injected {', '.join(kinds)} but no incident "
                "was detected"
            )
            return
        window = self.slo.detection_window_ms
        matched = None
        for incident in incidents:
            top = incident.top_suspect
            if top is None or getattr(top, "fault_kind", None) not in kinds:
                continue
            if incident.mttd_ms is not None and incident.mttd_ms > window:
                continue
            matched = incident
            break
        if matched is None:
            first = incidents[0]
            top = first.top_suspect
            blamed = top.kind if top is not None else "nothing"
            mttd = (
                f"{first.mttd_ms:.0f} ms" if first.mttd_ms is not None
                else "n/a"
            )
            report.top_suspect = top.kind if top is not None else None
            report.detection_ms = first.mttd_ms
            report._fail(
                f"detection: no incident blamed an injected fault "
                f"({', '.join(kinds)}) within {window:.0f} ms "
                f"(first incident blamed {blamed}, MTTD {mttd})"
            )
            return
        report.detection_ms = matched.mttd_ms
        report.top_suspect = matched.top_suspect.kind
        mttd = (
            f"{matched.mttd_ms:.0f} ms" if matched.mttd_ms is not None
            else "n/a"
        )
        report._ok(
            f"detection: incident #{matched.index} blamed "
            f"{matched.top_suspect.kind} (MTTD {mttd}, "
            f"score {matched.top_suspect.score:.2f})"
        )

    # -- gate 7: resilience --------------------------------------------
    def _goodput_intervals(self) -> List[Tuple[float, float]]:
        """(t, successful ops this interval) across the fleet."""
        totals = _deltas(_family_totals(self.timeseries, "ops_total"))
        failed = _deltas(_family_totals(self.timeseries, "ops_failed_total"))
        failed_at = dict(failed)
        return [
            (t_ms, max(0.0, n - failed_at.get(t_ms, 0.0)))
            for t_ms, n in totals
        ]

    def _audit_breakers(self, report: VerifierReport) -> bool:
        """Every breaker's transition log walks the FSM legally."""
        from repro.resilience.primitives import CLOSED, VALID_TRANSITIONS

        transitions = self.resilience.transitions
        report.breaker_transitions = len(transitions)
        by_breaker: dict = {}
        last_t = None
        for event in transitions:
            if (event.from_state, event.to_state) not in VALID_TRANSITIONS:
                report._fail(
                    f"resilience: illegal breaker transition "
                    f"{event.from_state}->{event.to_state} on {event.name}"
                )
                return False
            if last_t is not None and event.t_ms < last_t:
                report._fail(
                    "resilience: breaker transition log is not "
                    f"time-ordered at t={event.t_ms:.1f} ms"
                )
                return False
            last_t = event.t_ms
            expected = by_breaker.get(event.name, CLOSED)
            if event.from_state != expected:
                report._fail(
                    f"resilience: {event.name} jumped from {expected} to "
                    f"{event.from_state} without a logged transition"
                )
                return False
            by_breaker[event.name] = event.to_state
        return True

    def _check_resilience(self, report: VerifierReport) -> None:
        """Shedding broke the metastable loop (and did no hidden harm).

        Only engages when the run carried a resilience layer.  Three
        contracts:

        * **goodput recovery** — mean per-interval goodput
          (successful ops) over the *second half* of the recovery
          window is ≥ ``goodput_floor`` × the pre-fault baseline.
          Judging the late window (not first-recovered-interval)
          is deliberate: a metastable collapse shows exactly as
          goodput pinned near zero long after the fault cleared, and
          one lucky interval must not mask it;
        * **deadline honesty** — zero ops executed past their
          deadline (the shed path must refuse them instead);
        * **breaker audit** — the transition log walks the
          closed/open/half-open FSM legally, in time order.
        """
        if self.resilience is None:
            return
        report.deadline_violations = self.resilience.deadline_violations
        if not self._audit_breakers(report):
            return
        if self.resilience.deadline_violations > 0:
            report._fail(
                f"resilience: {self.resilience.deadline_violations} op(s) "
                "executed past their deadline"
            )
            return
        first_fault, clear = self._fault_window()
        if self.timeseries is None or first_fault is None or clear is None:
            report._skip("resilience goodput (no telemetry or fault window)")
            return
        intervals = self._goodput_intervals()
        # The first post-epoch interval straddles the epoch: its delta
        # includes tail-end prelude ops issued back-to-back before the
        # scenario started, which would inflate an ops-per-interval
        # baseline (unlike the ratio baselines of gates 3/5).  Drop it.
        epoch = self.engine.epoch if self.engine is not None else None
        if epoch is not None:
            post_epoch = [t for t, _v in intervals if t > epoch]
            if post_epoch:
                first_interval = post_epoch[0]
                intervals = [
                    (t, v) for t, v in intervals if t != first_interval
                ]
        baseline = self._baseline(intervals, first_fault)
        if baseline is None or baseline <= 0.0:
            report._skip("resilience goodput (no pre-fault baseline)")
            return
        report.baseline_goodput = baseline
        deadline = clear + self.slo.window_ms
        half = clear + self.slo.window_ms / 2.0
        late = [v for t, v in intervals if half < t <= deadline]
        if not late:
            report._fail(
                "resilience: no telemetry in the second half of the "
                f"{self.slo.window_ms:.0f} ms recovery window"
            )
            return
        recovered = sum(late) / len(late)
        report.recovered_goodput = recovered
        floor = self.slo.goodput_floor * baseline
        if recovered < floor:
            report._fail(
                f"resilience: goodput still {recovered:.1f} ops/interval "
                f"(< {self.slo.goodput_floor:g}x baseline {baseline:.1f}) "
                "in the late recovery window — metastable collapse"
            )
            return
        report._ok(
            f"resilience: goodput {recovered:.1f} >= "
            f"{self.slo.goodput_floor:g}x baseline ({baseline:.1f}), "
            f"0 deadline violations, "
            f"{report.breaker_transitions} breaker transition(s) legal"
        )
