"""Run chaos scenarios against a full λFS under a live workload.

One :func:`run_scenario` call builds a traced + telemetered system,
prewarms two NameNodes per deployment (so INV rounds always have a
remote member and ACK faults have something to bite), establishes TCP
connections with a short read prelude, starts the
:class:`~repro.chaos.engine.ChaosEngine` on the scenario, and drives
closed-loop clients issuing reads plus a slice of writes straight
through the fault window and the recovery window.  Clients catch only
the *typed* RPC errors (``ConnectionDropped`` / ``InstanceTerminated``
/ ``RequestTimeout``) — anything else propagates and fails the run.

The run ends at ``faults-clear + SLO window + drain`` at the latest;
an op still in flight at that point stays an *open* ``client.op``
span, which is exactly what the :class:`~repro.chaos.verifier
.ChaosVerifier` liveness gate looks for.

:func:`run_matrix` sweeps a list of scenarios (default: the regression
:data:`~repro.chaos.scenarios.MATRIX`) in fresh environments and
returns per-scenario results for ``repro chaos matrix``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.bench.harness import build_lambdafs, drive
from repro.core import OpType
from repro.core.client import RequestTimeout
from repro.faas.platform import InstanceTerminated
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.resilience import ResilienceConfig
from repro.rpc.connections import ConnectionDropped
from repro.sim import AllOf, AnyOf, Environment, RngStreams
from repro.tenants.context import TenantGovernor, TenantSpec, chaos_tenants
from repro.tenants.telemetry import install_tenant_telemetry
from repro.workloads import MicroBenchmark
from repro.workloads.multitenant import MultiTenantWorkload

from repro.chaos.engine import ChaosEngine, install_chaos
from repro.chaos.scenario import Scenario
from repro.chaos.verifier import ChaosVerifier, RecoverySLO, VerifierReport
from repro.datanode import DataNodeFleet, DataNodeFleetConfig

#: Fault kinds that only do anything against a DataNode fleet.
DATANODE_FAULT_KINDS = ("datanode_kill", "disk_slow")

#: Fault kinds that only do anything against a multi-tenant workload.
TENANT_FAULT_KINDS = ("tenant_flood",)

#: Fault kinds that only make sense with the resilience layer attached.
RESILIENCE_FAULT_KINDS = ("load_spike", "disable_shedding")


def scenario_needs_datanodes(scenario: Scenario) -> bool:
    """True when ``scenario`` injects data-plane faults."""
    return any(
        spec.kind in DATANODE_FAULT_KINDS for spec in scenario.faults
    )


def scenario_needs_tenants(scenario: Scenario) -> bool:
    """True when ``scenario`` injects tenant-scoped faults."""
    return any(
        spec.kind in TENANT_FAULT_KINDS for spec in scenario.faults
    )


def scenario_needs_resilience(scenario: Scenario) -> bool:
    """True when ``scenario`` injects overload/resilience faults."""
    return any(
        spec.kind in RESILIENCE_FAULT_KINDS for spec in scenario.faults
    )

#: Typed errors a chaos client absorbs and retries past.
RECOVERABLE_ERRORS = (ConnectionDropped, InstanceTerminated, RequestTimeout)


@dataclass(frozen=True)
class ChaosRunConfig:
    """Workload + system shape for one chaos run."""

    seed: int = 0
    clients: int = 24
    deployments: int = 4
    vcpus: float = 512.0
    instances_per_deployment: int = 2
    """Prewarm depth; ≥2 keeps a remote INV target alive per deployment."""
    write_fraction: float = 0.15
    """Slice of ops that are metadata writes (drive INV rounds)."""
    think_ms: float = 40.0
    """Mean closed-loop client think time between ops."""
    replacement_probability: float = 0.02
    """Client FaaS re-invoke probability (keeps the HTTP path warm)."""
    telemetry_interval_ms: float = 250.0
    prelude_ops: int = 12
    """Per-client warm-up reads before the scenario starts (establishes
    TCP connections and populates caches; excluded from the SLO
    baseline, which starts at the engine epoch)."""
    drain_ms: float = 8_000.0
    """Grace beyond the SLO window before the run is cut off; ops
    still in flight then are hung by definition."""
    tree: TreeSpec = field(default_factory=lambda: TreeSpec(depth=3))
    slo: RecoverySLO = field(default_factory=RecoverySLO)
    datanodes: Optional[int] = None
    """DataNode fleet size.  None = auto: 9 when the scenario injects
    data-plane faults, 0 (no fleet, the legacy byte-identical
    configuration) otherwise.  Explicit 0 always disables."""
    datanode_racks: int = 3
    datanode_start: bool = True
    """False attaches the fleet without spawning any of its processes
    (the attached-but-idle determinism regression)."""
    chunk_write_fraction: float = 0.25
    """Slice of ops that are pipelined chunk writes (only drawn when a
    fleet is attached and this is > 0 — a zero fraction consumes no
    extra randomness, keeping fleet-less streams unchanged)."""
    tenants: Optional[Tuple[TenantSpec, ...]] = None
    """Multi-tenant mode.  None = auto: the :func:`~repro.tenants
    .context.chaos_tenants` cast when the scenario injects tenant
    faults, single-tenant (the legacy byte-identical configuration)
    otherwise.  An empty tuple always disables; a non-empty tuple
    forces tenant mode (``config.clients`` is then ignored — each
    spec sizes its own fleet)."""
    governor_headroom: float = 2.0
    """QoS governor budget per tenant, as a multiple of its nominal
    demand (see :meth:`TenantGovernor.for_tenants`)."""
    governor_burst_ms: float = 250.0
    resilience: Optional[ResilienceConfig] = None
    """Resilience layer.  None = auto: a default
    :class:`~repro.resilience.ResilienceConfig` when the scenario
    injects overload faults, detached (the legacy byte-identical
    configuration) otherwise.  An explicit config always attaches."""
    detect: bool = False
    """Attach the :class:`repro.incidents.AlertEngine` to the sampler
    (the single-``is None`` ``on_sample`` hook), evaluate alert rules
    online, and run incident grouping + root-cause attribution after
    the run.  Adds no sim events and draws no RNG, so the event hash
    and fault-log hash are byte-identical either way — and the
    verifier gains the detection gate (gate 6)."""
    ruleset: str = "default"
    """Named rule catalog from :data:`repro.incidents.RULESETS`."""


def resilience_run_config(seed: int = 0, **overrides) -> ChaosRunConfig:
    """The canonical workload for the overload/resilience scenarios.

    The metastable family needs a *convoy-prone* workload — many
    writers colliding on a small hot file set — which the default
    chaos shape (24 mostly-reading clients over a ~500-file tree)
    never produces: its brownouts recover the instant the fault
    clears.  This shape is shared by ``repro resilience``, the smoke
    stage, and the regression tests so gate-7 verdicts stay
    comparable across all three.
    """
    defaults = dict(
        seed=seed,
        clients=48,
        write_fraction=0.5,
        think_ms=40.0,
        tree=TreeSpec(depth=1, dirs_per_dir=2, files_per_dir=8),
        drain_ms=8_000.0,
        slo=RecoverySLO(window_ms=8_000.0),
    )
    defaults.update(overrides)
    return ChaosRunConfig(**defaults)


@dataclass
class ChaosRunResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    report: VerifierReport
    engine: ChaosEngine
    ops_ok: int
    ops_failed: int
    errors: Dict[str, int]
    duration_ms: float
    event_hash: str
    log_hash: str
    fleet: Optional[object] = None
    """The :class:`repro.datanode.DataNodeFleet`, when one ran."""
    tenant_counts: Optional[Dict[str, object]] = None
    """Tenant → :class:`repro.workloads.multitenant.TenantCounts`
    when the run was multi-tenant."""
    timeseries: Optional[object] = None
    """The sampled telemetry, for post-run fairness analysis."""
    incidents: Optional[object] = None
    """The :class:`repro.incidents.IncidentReport` of a ``detect``
    run; None when detection was off."""
    resilience: Optional[Dict[str, object]] = None
    """:meth:`ResilienceManager.snapshot` of a resilience run; None
    when the layer was detached."""

    @property
    def passed(self) -> bool:
        return self.report.passed

    def summary(self) -> str:
        errors = ", ".join(
            f"{name}={count}" for name, count in sorted(self.errors.items())
        ) or "none"
        line = (
            f"{self.scenario.name}: {'PASS' if self.passed else 'FAIL'} "
            f"ok={self.ops_ok} failed={self.ops_failed} "
            f"errors=[{errors}] t={self.duration_ms:.0f}ms "
            f"events={self.event_hash[:12]} faults={self.log_hash[:12]}"
        )
        if self.incidents is not None:
            mttd = self.incidents.mttd_ms
            line += (
                f" incidents={len(self.incidents.incidents)}"
                + (f" mttd={mttd:.0f}ms" if mttd is not None else "")
            )
        if self.resilience is not None:
            line += (
                f" sheds={self.resilience['sheds']}"
                f" breaker_opens={self.resilience['breaker_opens']}"
            )
        return line


def _client_loop(
    env: Environment,
    client,
    paths: Sequence[str],
    rng,
    issue_until: float,
    config: ChaosRunConfig,
    counts: Dict[str, int],
    errors: Dict[str, int],
    fleet=None,
) -> Generator:
    # The chunk-write draw only exists when it can matter; with no
    # fleet the stream consumes exactly one draw per op, as before.
    chunk_writes = fleet is not None and config.chunk_write_fraction > 0.0
    while env.now < issue_until:
        path = paths[rng.randrange(len(paths))]
        try:
            if chunk_writes and rng.random() < config.chunk_write_fraction:
                response = yield from client.write_block(path)
            elif rng.random() < config.write_fraction:
                response = yield from client.set_permission(path, 0o644)
            else:
                response = yield from client.read_file(path)
            counts["ok" if response.ok else "failed"] += 1
        except RECOVERABLE_ERRORS as exc:
            counts["failed"] += 1
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
        if config.think_ms > 0:
            think = rng.uniform(0.5 * config.think_ms, 1.5 * config.think_ms)
            # Demand-surge query; outside a load_spike window this is
            # exactly 1.0, so the multiply is a bit-exact identity and
            # legacy scenario hashes are untouched.
            chaos = env.chaos
            if chaos is not None:
                think *= chaos.think_factor()
            yield env.timeout(think)


def run_scenario(
    scenario: Scenario,
    config: Optional[ChaosRunConfig] = None,
) -> ChaosRunResult:
    """Build a fresh system, run ``scenario`` under load, verify."""
    config = config or ChaosRunConfig()
    env = Environment()
    tenant_specs = config.tenants
    if tenant_specs is None:
        tenant_specs = (
            chaos_tenants() if scenario_needs_tenants(scenario) else ()
        )
    workload = None
    if tenant_specs:
        workload = MultiTenantWorkload(
            env, tenant_specs, seed=config.seed,
            absorb_errors=RECOVERABLE_ERRORS,
        )
        tree = workload.namespace()
    else:
        tree = generate_tree(replace(config.tree, seed=config.seed))
    datanodes = config.datanodes
    if datanodes is None:
        datanodes = 9 if scenario_needs_datanodes(scenario) else 0
    resilience_config = config.resilience
    if resilience_config is None and scenario_needs_resilience(scenario):
        resilience_config = ResilienceConfig()
    fleet_config = None
    build_extra = {}
    if datanodes > 0:
        fleet_config = DataNodeFleetConfig(
            count=datanodes, racks=config.datanode_racks
        )
        if config.datanode_start:
            # A *running* fleet replaces the legacy report publisher;
            # a stale-row filter makes the NameNodes drop DataNodes
            # that stopped publishing (i.e. died).  An attached-but-
            # idle fleet publishes nothing, so the build must stay
            # byte-identical to the fleet-less configuration.
            build_extra = {
                "datanode_overrides": {"count": 0},
                "namenode_overrides": {
                    "datanode_stale_after_ms":
                        2.0 * fleet_config.publish_interval_ms,
                },
            }
    handle = build_lambdafs(
        env,
        tree,
        vcpus=config.vcpus,
        deployments=config.deployments,
        seed=config.seed,
        client_overrides={
            "replacement_probability": config.replacement_probability,
        },
        trace=True,
        telemetry=True,
        telemetry_interval_ms=config.telemetry_interval_ms,
        resilience=resilience_config,
        **build_extra,
    )
    fs = handle.system
    detector = None
    if config.detect and handle.telemetry is not None:
        # Online detection: the engine rides the sampler's on_sample
        # hook — pure arithmetic per sample, no events, no RNG — and
        # mirrors firing state back into the same registry so
        # alerts_firing/alerts_fired_total land in the exports.
        from repro.incidents import AlertEngine, get_ruleset

        detector = handle.telemetry.attach_detector(
            AlertEngine(get_ruleset(config.ruleset),
                        registry=handle.telemetry.registry)
        )
    fleet = None
    if fleet_config is not None:
        fleet = DataNodeFleet(
            env, fleet_config, seed=config.seed, store=fs.store
        )
        fs.datanode_fleet = fleet
        if config.datanode_start:
            fleet.start()
    clients = handle.make_clients(
        workload.total_clients() if workload is not None else config.clients
    )
    if workload is not None and env.metrics is not None:
        install_tenant_telemetry(
            env.metrics, [spec.name for spec in tenant_specs]
        )
    drive(env, fs.prewarm(config.instances_per_deployment))
    if config.prelude_ops > 0:
        # Prelude runs before clients are tenant-tagged, so its warm-up
        # reads stay out of the per-tenant series (and the SLO baseline
        # starts clean at the engine epoch either way).
        bench = MicroBenchmark(env, tree, seed=config.seed)
        drive(
            env,
            bench.run(clients, OpType.READ_FILE, 0, config.prelude_ops),
        )

    engine = install_chaos(env, system=fs, seed=config.seed)
    engine.start(scenario)
    epoch = env.now
    clear = epoch + scenario.clear_ms
    issue_until = clear + config.slo.window_ms
    deadline = issue_until + config.drain_ms

    counts = {"ok": 0, "failed": 0}
    errors: Dict[str, int] = {}
    if workload is not None:
        # Tenant mode: the governor is the QoS isolation under test
        # (``tenant_flood``'s ``disable_isolation`` kills it via
        # ``engine.governor``), and the flood lookup turns the noisy
        # tenant's loops into a storm while the fault is active.
        governor = TenantGovernor.for_tenants(
            env, tenant_specs,
            headroom=config.governor_headroom,
            burst_ms=config.governor_burst_ms,
        )
        engine.governor = governor
        workload.governor = governor
        workload.flood_think = engine.tenant_flood_think_ms
        fleets = workload.partition_clients(clients)
        done = env.process(
            workload.run(fleets, issue_until - env.now)
        )
    else:
        rngs = RngStreams(config.seed)
        workers = [
            env.process(_client_loop(
                env, client, tree.files,
                rngs.stream(f"chaos-client:{index}"),
                issue_until, config, counts, errors,
                fleet=fleet if config.datanode_start else None,
            ))
            for index, client in enumerate(clients)
        ]
        done = AllOf(env, workers)
    # Stop at the deadline even if some op hangs forever — a hung op
    # must not hang the harness, it must show up in the verifier.
    cutoff = env.timeout(deadline - env.now)
    drive(env, _await_any(env, done, cutoff))

    if workload is not None:
        for tally in workload.counts.values():
            counts["ok"] += tally.ok
            counts["failed"] += tally.failed
            for name, count in tally.errors.items():
                errors[name] = errors.get(name, 0) + count

    engine.stop()
    if handle.telemetry is not None:
        handle.telemetry.stop()
    incident_report = None
    if detector is not None:
        from repro.incidents import Evidence, build_report
        from repro.profile import analyze_trace

        alerts = detector.finish(env.now)
        evidence = Evidence(
            fault_log=engine.log,
            profile=(
                analyze_trace(handle.tracer)
                if handle.tracer is not None else None
            ),
            timeseries=handle.telemetry.timeseries,
        )
        incident_report = build_report(
            alerts, evidence,
            scenario=scenario.name,
            seed=config.seed,
            first_fault_at_ms=engine.first_fault_at_ms,
            end_ms=env.now,
        )
    verifier = ChaosVerifier(
        tracer=handle.tracer,
        timeseries=(
            handle.telemetry.timeseries if handle.telemetry is not None else None
        ),
        engine=engine,
        slo=config.slo,
        fleet=fleet if config.datanode_start else None,
        tenants=tenant_specs if workload is not None else None,
        incidents=incident_report,
        resilience=fs.resilience,
    )
    report = verifier.verify()
    return ChaosRunResult(
        scenario=scenario,
        report=report,
        engine=engine,
        ops_ok=counts["ok"],
        ops_failed=counts["failed"],
        errors=errors,
        duration_ms=env.now,
        event_hash=handle.tracer.event_hash(),
        log_hash=engine.log_hash(),
        fleet=fleet,
        tenant_counts=dict(workload.counts) if workload is not None else None,
        timeseries=(
            handle.telemetry.timeseries
            if handle.telemetry is not None else None
        ),
        incidents=incident_report,
        resilience=(
            fs.resilience.snapshot() if fs.resilience is not None else None
        ),
    )


def _await_any(env: Environment, *events) -> Generator:
    yield AnyOf(env, list(events))


def run_matrix(
    scenarios: Sequence[Scenario],
    config: Optional[ChaosRunConfig] = None,
) -> List[ChaosRunResult]:
    """Run each scenario in a fresh environment; collect results."""
    return [run_scenario(scenario, config) for scenario in scenarios]
