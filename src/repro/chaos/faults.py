"""The fault catalog: every injectable fault kind, plus the killer.

Faults are small stateful objects created from a
:class:`~repro.chaos.scenario.FaultSpec` by the engine.  A fault is
*active* between its activation and deactivation edges; while active,
instrumented sites across the stack query the engine
(:meth:`ChaosEngine.tcp_should_drop` etc.), which consults the active
faults of the matching kind.  Faults that change configuration
(lock-timeout storms, cold-start storms, capacity crunches, watch
delays) swap the target's frozen config dataclass on activation and
restore the original on deactivation, so a cleared fault leaves no
residue.

Every stochastic decision draws from the engine's seeded RNG, and
**only while a matching fault is active** — an engine with no active
faults consumes no randomness and injects no events, so its presence
does not perturb the simulation.

The :class:`NameNodeKiller` (§5.6 fault-tolerance experiment) lives
here as the canonical implementation; :mod:`repro.faas.chaos`
re-exports it for backwards compatibility.  Victim selection is a
seeded policy: ``round_robin`` (the paper's — first warm instance of
the next deployment), ``random`` (uniform over warm instances), or
``youngest`` (most recently provisioned).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Type,
)

from repro.sim import Environment, Interrupt

from repro.chaos.scenario import FaultSpec


def derive_rng(seed: int, name: str) -> random.Random:
    """A stream seeded like :class:`repro.sim.RngStreams` streams."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


# -- NameNode killer (canonical home; repro.faas.chaos re-exports) ------

VICTIM_POLICIES = ("round_robin", "random", "youngest")


def pick_victim(warm: List[Any], policy: str, rng: random.Random) -> Any:
    """Choose one warm instance under a victim-selection policy."""
    if policy == "round_robin":
        return warm[0]
    if policy == "random":
        return warm[rng.randrange(len(warm))]
    if policy == "youngest":
        return max(warm, key=lambda i: (i.provisioned_at_ms, i.id))
    raise ValueError(f"unknown victim policy {policy!r}")


@dataclass
class KillRecord:
    time_ms: float
    instance_id: str
    deployment: str


class NameNodeKiller:
    """Terminates one warm instance per interval, rotating deployments.

    The paper's §5.6 experiment uses the default ``round_robin``
    policy: the rotation picks the next deployment and the first warm
    instance in it dies, drawing no randomness at all.  The ``random``
    and ``youngest`` policies draw victims from a seeded stream so
    kill sequences stay reproducible run to run.
    """

    def __init__(
        self,
        env: Environment,
        platform: Any,
        interval_ms: float,
        deployments: Optional[List[str]] = None,
        policy: str = "round_robin",
        seed: int = 0,
        rng: Optional[random.Random] = None,
        on_kill: Optional[Callable[[KillRecord], None]] = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if policy not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {VICTIM_POLICIES}"
            )
        self.env = env
        self.platform = platform
        self.interval_ms = interval_ms
        self.policy = policy
        self.rng = rng if rng is not None else derive_rng(seed, "namenode-killer")
        self._names = deployments
        self._on_kill = on_kill
        self.kills: List[KillRecord] = []
        self._process = None

    def start(self) -> None:
        if self._process is None or not self._process.is_alive:
            self._process = self.env.process(self._loop())

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt()
        self._process = None

    def _targets(self) -> List[str]:
        if self._names is not None:
            return self._names
        return sorted(self.platform.deployments)

    def _loop(self) -> Generator:
        index = 0
        names = self._targets()
        try:
            while True:
                yield self.env.timeout(self.interval_ms)
                # Rotate over deployments; skip ones with no warm
                # instance right now.
                for _ in range(len(names)):
                    deployment = self.platform.deployments[names[index % len(names)]]
                    index += 1
                    warm = [
                        instance
                        for instance in deployment.live_instances()
                        if instance.state == "warm"
                    ]
                    if warm:
                        victim = pick_victim(warm, self.policy, self.rng)
                        record = KillRecord(
                            self.env.now, victim.id, deployment.name
                        )
                        self.kills.append(record)
                        tracer = self.env.tracer
                        if tracer is not None:
                            tracer.point(
                                "chaos.kill", victim.id,
                                deployment=deployment.name,
                            )
                        if self._on_kill is not None:
                            self._on_kill(record)
                        victim.terminate(reason="fault")
                        break
        except Interrupt:
            return


# -- fault base ---------------------------------------------------------

class Fault:
    """One active fault instance (see the subclasses for the catalog)."""

    kind: str = ""
    requires_duration: bool = False
    allowed_params: tuple = ()

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        self.spec = spec
        self.engine = engine
        self.params: Dict[str, Any] = dict(spec.params)
        unknown = set(self.params) - set(self.allowed_params)
        if unknown:
            raise ValueError(
                f"{self.kind}: unknown param(s) {sorted(unknown)}; "
                f"allowed: {sorted(self.allowed_params)}"
            )
        if self.requires_duration and spec.duration_ms <= 0:
            raise ValueError(f"{self.kind}: duration_ms must be > 0")
        #: Absolute sim-time this fault deactivates (set at activation).
        self.until: Optional[float] = None
        self.validate()

    def validate(self) -> None:
        """Subclass hook for parameter checking (raise ValueError)."""

    def matches(self, deployment: Optional[str]) -> bool:
        target = self.params.get("deployment")
        return target is None or target == deployment

    def on_activate(self) -> None:
        """Take effect (config swaps, spawned processes)."""

    def on_deactivate(self) -> None:
        """Undo activation side effects."""

    # -- shared helpers ------------------------------------------------
    def _p(self, name: str = "p", default: float = 0.1) -> float:
        value = float(self.params.get(name, default))
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.kind}: {name} must be in [0, 1]")
        return value


# -- RPC fabric ---------------------------------------------------------

class TcpDropFault(Fault):
    """Drop TCP requests with probability ``p`` (message loss).

    The connection itself stays up — the client's retry loop resubmits
    over the same connection, exercising the NameNode result cache's
    duplicate-suppression.
    """

    kind = "tcp_drop"
    requires_duration = True
    allowed_params = ("p", "deployment")

    def validate(self) -> None:
        self._p()


class TcpDelayFault(Fault):
    """Add latency to TCP sends: ``extra_ms`` (+ uniform ``jitter_ms``)."""

    kind = "tcp_delay"
    requires_duration = True
    allowed_params = ("extra_ms", "jitter_ms", "p", "deployment")

    def validate(self) -> None:
        self._p(default=1.0)
        if float(self.params.get("extra_ms", 5.0)) < 0:
            raise ValueError(f"{self.kind}: extra_ms must be >= 0")


class TcpDuplicateFault(Fault):
    """Deliver TCP requests twice with probability ``p``.

    The duplicate is re-served by the same NameNode; its result cache
    (§3.2 resubmission safety) must return the original answer rather
    than re-running the operation.
    """

    kind = "tcp_duplicate"
    requires_duration = True
    allowed_params = ("p", "deployment")

    def validate(self) -> None:
        self._p()


class TcpSeverFault(Fault):
    """Close every live TCP connection (once, or every ``repeat_ms``).

    Models the fabric partitioning clients from the fleet: clients
    fall back to HTTP invocations until NameNodes connect back.
    """

    kind = "tcp_sever"
    allowed_params = ("deployment", "repeat_ms")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._proc = None

    def on_activate(self) -> None:
        self._sever()
        repeat = self.params.get("repeat_ms")
        if repeat is not None and self.spec.duration_ms > 0:
            self._proc = self.engine.env.process(self._loop(float(repeat)))

    def on_deactivate(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
        self._proc = None

    def _loop(self, repeat_ms: float) -> Generator:
        try:
            while True:
                yield self.engine.env.timeout(repeat_ms)
                self._sever()
        except Interrupt:
            return

    def _sever(self) -> None:
        platform = self.engine.platform
        if platform is None:
            return
        closed = 0
        for name in sorted(platform.deployments):
            if not self.matches(name):
                continue
            for instance in platform.deployments[name].live_instances():
                # _connections is the platform's own bookkeeping of
                # connect-backs; severing is exactly what terminate()
                # does to it, minus killing the instance.
                for connection in list(instance._connections):
                    if connection.alive:
                        connection.close()
                        closed += 1
                instance._connections.clear()
        self.engine._log(self.kind, "inject", closed=closed)


class HttpBrownoutFault(Fault):
    """Degrade the HTTP gateway: extra latency and/or failures.

    ``extra_ms`` (+ uniform ``jitter_ms``) delays every invocation
    passing the gateway; ``fail_p`` times the gateway sheds the
    request entirely (surfacing as a request timeout the client's
    backoff-retry loop handles).
    """

    kind = "http_brownout"
    requires_duration = True
    allowed_params = ("extra_ms", "jitter_ms", "fail_p")

    def validate(self) -> None:
        self._p("fail_p", default=0.0)
        if float(self.params.get("extra_ms", 0.0)) < 0:
            raise ValueError(f"{self.kind}: extra_ms must be >= 0")


# -- metastore ----------------------------------------------------------

class ShardOutageFault(Fault):
    """One store shard (or all) is unavailable for the window.

    Requests touching the shard stall until the window ends — the NDB
    data-node failover gap.  Keep the window shorter than the lock
    timeout unless you *want* an abort storm.
    """

    kind = "shard_outage"
    requires_duration = True
    allowed_params = ("shard",)

    def matches_shard(self, index: int) -> bool:
        shard = self.params.get("shard")
        return shard is None or int(shard) == index


class StoreSlowdownFault(Fault):
    """Multiply store service times by ``factor`` (degraded disks)."""

    kind = "store_slowdown"
    requires_duration = True
    allowed_params = ("factor", "shard")

    def validate(self) -> None:
        if float(self.params.get("factor", 2.0)) <= 0:
            raise ValueError(f"{self.kind}: factor must be > 0")

    def matches_shard(self, index: int) -> bool:
        shard = self.params.get("shard")
        return shard is None or int(shard) == index


class LockStormFault(Fault):
    """Shrink the lock-wait timeout to ``timeout_ms`` for the window.

    Contended transactions abort en masse and retry — the abort storm
    the full-jitter transaction backoff exists to decorrelate.
    """

    kind = "lock_storm"
    requires_duration = True
    allowed_params = ("timeout_ms",)

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._saved: Optional[float] = None

    def on_activate(self) -> None:
        store = self.engine.store
        if store is None:
            return
        self._saved = store.locks.default_timeout_ms
        store.locks.default_timeout_ms = float(
            self.params.get("timeout_ms", 50.0)
        )

    def on_deactivate(self) -> None:
        if self._saved is not None and self.engine.store is not None:
            self.engine.store.locks.default_timeout_ms = self._saved
        self._saved = None


# -- coordinator --------------------------------------------------------

class AckLossFault(Fault):
    """Drop INV ACKs with probability ``p``.

    The coordinator redelivers after ``ack_retry_ms`` (handlers are
    idempotent), so writers eventually unblock.  With
    ``disable_retry`` the coordinator's redelivery is switched off for
    the window — the deliberately broken recovery path: a dropped ACK
    then strands the writer forever, which the
    :class:`~repro.chaos.verifier.ChaosVerifier` flags as a hung op.
    """

    kind = "ack_loss"
    requires_duration = True
    allowed_params = ("p", "deployment", "disable_retry")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._saved: Optional[Dict[str, Any]] = None

    def validate(self) -> None:
        self._p(default=0.5)

    def on_activate(self) -> None:
        coordinator = self.engine.coordinator
        if coordinator is None or not self.params.get("disable_retry", False):
            return
        # Save only the fields this fault touches and restore them into
        # whatever config is current at deactivate time, so overlapping
        # config-swapping faults compose regardless of clear order.
        self._saved = {"ack_max_retries": coordinator.config.ack_max_retries}
        coordinator.config = replace(coordinator.config, ack_max_retries=0)

    def on_deactivate(self) -> None:
        if self._saved is not None and self.engine.coordinator is not None:
            coordinator = self.engine.coordinator
            coordinator.config = replace(coordinator.config, **self._saved)
        self._saved = None


class MembershipFlapFault(Fault):
    """Deregister a live member, then re-register it ``flap_ms`` later.

    Races `watch_death`: watchers fire for a member that is about to
    come back, and INV rounds in flight during the flap must neither
    hang on the absent member nor double-count its ACK.
    """

    kind = "membership_flap"
    allowed_params = ("deployment", "flap_ms")

    def on_activate(self) -> None:
        self.engine.env.process(self._flap())

    def _flap(self) -> Generator:
        engine = self.engine
        coordinator = engine.coordinator
        if coordinator is None:
            return
        target = self.params.get("deployment")
        candidates = []
        for deployment in sorted(coordinator.deployments()):
            if target is not None and deployment != target:
                continue
            for member_id in sorted(coordinator.live_members(deployment)):
                candidates.append((deployment, member_id))
        if not candidates:
            engine._log(self.kind, "inject", member="", note="no-members")
            return
        deployment, member_id = candidates[engine.rng.randrange(len(candidates))]
        handler = coordinator.inv_handler(deployment, member_id)
        coordinator.deregister(deployment, member_id)
        engine._log(self.kind, "inject", member=member_id, phase="down")
        yield engine.env.timeout(float(self.params.get("flap_ms", 500.0)))
        # Only rejoin if the underlying instance is in fact still
        # alive — it may have been killed or reclaimed mid-flap.
        if handler is not None and self._instance_alive(deployment, member_id):
            coordinator.register(deployment, member_id, handler)
            engine._log(self.kind, "inject", member=member_id, phase="up")

    def _instance_alive(self, deployment: str, member_id: str) -> bool:
        platform = self.engine.platform
        if platform is None:
            return True
        bucket = platform.deployments.get(deployment)
        if bucket is None:
            return False
        return any(
            instance.id == member_id and instance.is_alive
            for instance in bucket.live_instances()
        )


class WatchDelayFault(Fault):
    """Multiply (or set) the liveness-notification latency.

    Delayed death notifications widen the window in which the rest of
    the system still believes a dead NameNode is alive.
    """

    kind = "watch_delay"
    requires_duration = True
    allowed_params = ("factor", "watch_ms")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._saved: Optional[Dict[str, Any]] = None

    def on_activate(self) -> None:
        coordinator = self.engine.coordinator
        if coordinator is None:
            return
        self._saved = {"watch_ms": coordinator.config.watch_ms}
        watch = self.params.get("watch_ms")
        if watch is None:
            watch = coordinator.config.watch_ms * float(
                self.params.get("factor", 10.0)
            )
        coordinator.config = replace(coordinator.config, watch_ms=float(watch))

    def on_deactivate(self) -> None:
        if self._saved is not None and self.engine.coordinator is not None:
            coordinator = self.engine.coordinator
            coordinator.config = replace(coordinator.config, **self._saved)
        self._saved = None


# -- FaaS ---------------------------------------------------------------

class NameNodeKillFault(Fault):
    """Kill one warm NameNode per ``interval_ms`` while active.

    Wraps :class:`NameNodeKiller` with the engine's RNG; ``policy``
    selects the victim within the rotated deployment.
    """

    kind = "namenode_kill"
    requires_duration = True
    allowed_params = ("interval_ms", "policy", "deployments")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._killer: Optional[NameNodeKiller] = None

    def validate(self) -> None:
        if float(self.params.get("interval_ms", 1_000.0)) <= 0:
            raise ValueError(f"{self.kind}: interval_ms must be > 0")
        policy = self.params.get("policy", "round_robin")
        if policy not in VICTIM_POLICIES:
            raise ValueError(f"{self.kind}: unknown policy {policy!r}")

    def on_activate(self) -> None:
        engine = self.engine
        if engine.platform is None:
            return
        deployments = self.params.get("deployments")
        self._killer = NameNodeKiller(
            engine.env,
            engine.platform,
            float(self.params.get("interval_ms", 1_000.0)),
            deployments=list(deployments) if deployments is not None else None,
            policy=self.params.get("policy", "round_robin"),
            rng=engine.rng,
            on_kill=lambda record: engine._log(
                self.kind, "inject",
                instance=record.instance_id, deployment=record.deployment,
            ),
        )
        self._killer.start()

    def on_deactivate(self) -> None:
        if self._killer is not None:
            self._killer.stop()
        self._killer = None

    @property
    def kills(self) -> List[KillRecord]:
        return self._killer.kills if self._killer is not None else []


class ColdStartStormFault(Fault):
    """Multiply cold-start boot times by ``factor`` for the window."""

    kind = "cold_start_storm"
    requires_duration = True
    allowed_params = ("factor", "min_ms", "max_ms")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._saved: Optional[Dict[str, Any]] = None

    def on_activate(self) -> None:
        platform = self.engine.platform
        if platform is None:
            return
        self._saved = {
            "cold_start_min_ms": platform.config.cold_start_min_ms,
            "cold_start_max_ms": platform.config.cold_start_max_ms,
        }
        factor = float(self.params.get("factor", 4.0))
        low = float(self.params.get(
            "min_ms", platform.config.cold_start_min_ms * factor
        ))
        high = float(self.params.get(
            "max_ms", platform.config.cold_start_max_ms * factor
        ))
        platform.config = replace(
            platform.config, cold_start_min_ms=low, cold_start_max_ms=high
        )

    def on_deactivate(self) -> None:
        if self._saved is not None and self.engine.platform is not None:
            platform = self.engine.platform
            platform.config = replace(platform.config, **self._saved)
        self._saved = None


class CapacityCrunchFault(Fault):
    """Shrink the cluster vCPU budget for the window.

    New provisioning stalls and a starved deployment forces evictions —
    the container-churn regime of Appendix C.
    """

    kind = "capacity_crunch"
    requires_duration = True
    allowed_params = ("vcpus", "fraction")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._saved: Optional[Dict[str, Any]] = None

    def on_activate(self) -> None:
        platform = self.engine.platform
        if platform is None:
            return
        self._saved = {"cluster_vcpus": platform.config.cluster_vcpus}
        vcpus = self.params.get("vcpus")
        if vcpus is None:
            vcpus = platform.config.cluster_vcpus * float(
                self.params.get("fraction", 0.5)
            )
        platform.config = replace(platform.config, cluster_vcpus=float(vcpus))

    def on_deactivate(self) -> None:
        if self._saved is not None and self.engine.platform is not None:
            platform = self.engine.platform
            platform.config = replace(platform.config, **self._saved)
        self._saved = None


# -- data plane ---------------------------------------------------------

class DataNodeKillFault(Fault):
    """Crash ``count`` DataNodes, one per ``interval_ms`` while active.

    Victims are drawn from the currently-alive nodes via the engine's
    seeded RNG, so same-seed runs kill the same nodes at the same
    times.  Killed nodes stay down (their heartbeats stop, the tracker
    declares them dead after the miss threshold, and the
    re-replication scanner restores replication factor) unless
    ``restart_after_ms`` is given, in which case each victim comes
    back that long after its kill — the flapping-node case.

    ``disable_repair`` switches the fleet's background re-replication
    off **permanently** (a dead repair daemon, not a config window):
    restoring it at deactivation would let repairs complete within the
    SLO window and mask the breakage this expected-FAIL path exists to
    surface.
    """

    kind = "datanode_kill"
    requires_duration = True
    allowed_params = ("count", "interval_ms", "disable_repair", "restart_after_ms")

    def __init__(self, spec: FaultSpec, engine: Any = None) -> None:
        super().__init__(spec, engine)
        self._proc = None
        self.killed: List[str] = []

    def validate(self) -> None:
        if int(self.params.get("count", 1)) < 1:
            raise ValueError(f"{self.kind}: count must be >= 1")
        if float(self.params.get("interval_ms", 400.0)) <= 0:
            raise ValueError(f"{self.kind}: interval_ms must be > 0")
        restart = self.params.get("restart_after_ms")
        if restart is not None and float(restart) <= 0:
            raise ValueError(f"{self.kind}: restart_after_ms must be > 0")

    def on_activate(self) -> None:
        engine = self.engine
        fleet = getattr(engine, "fleet", None)
        if fleet is None:
            engine._log(self.kind, "inject", note="no-fleet")
            return
        if self.params.get("disable_repair", False):
            fleet.repair_enabled = False
            engine._log(self.kind, "inject", note="repair-disabled")
        self._proc = engine.env.process(self._loop(fleet))

    def on_deactivate(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
        self._proc = None

    def _loop(self, fleet: Any) -> Generator:
        engine = self.engine
        count = int(self.params.get("count", 1))
        interval = float(self.params.get("interval_ms", 400.0))
        restart_after = self.params.get("restart_after_ms")
        try:
            for _ in range(count):
                yield engine.env.timeout(interval)
                victims = fleet.live_node_ids()
                if not victims:
                    engine._log(self.kind, "inject", note="no-live-nodes")
                    return
                victim = victims[engine.rng.randrange(len(victims))]
                fleet.kill(victim)
                self.killed.append(victim)
                engine._log(self.kind, "inject", datanode=victim)
                if restart_after is not None:
                    engine.env.process(
                        self._restart_later(fleet, victim, float(restart_after))
                    )
        except Interrupt:
            return

    def _restart_later(
        self, fleet: Any, victim: str, delay_ms: float
    ) -> Generator:
        yield self.engine.env.timeout(delay_ms)
        fleet.restart(victim)
        self.engine._log(self.kind, "inject", datanode=victim, phase="restart")


class DiskSlowFault(Fault):
    """Multiply DataNode disk service times by ``factor`` while active.

    A pure query fault (no processes, no RNG): instrumented disk
    writes ask :meth:`ChaosEngine.datanode_disk_factor` and stack the
    factors of every matching active fault.  Scope with ``rack`` or
    ``datanode`` to degrade one failure domain — the
    slow-disk-in-one-rack regime that drags pipelined writes whose
    chain crosses that rack.
    """

    kind = "disk_slow"
    requires_duration = True
    allowed_params = ("factor", "rack", "datanode")

    def validate(self) -> None:
        if float(self.params.get("factor", 4.0)) <= 0:
            raise ValueError(f"{self.kind}: factor must be > 0")

    def matches_datanode(self, node_id: str, rack: Optional[str]) -> bool:
        want_node = self.params.get("datanode")
        if want_node is not None and want_node != node_id:
            return False
        want_rack = self.params.get("rack")
        return want_rack is None or want_rack == rack

    @property
    def factor(self) -> float:
        return float(self.params.get("factor", 4.0))


class TenantFloodFault(Fault):
    """One tenant's clients go berserk: a noisy neighbor.

    While active, the flooding tenant's closed-loop client think time
    collapses to ``think_ms`` (default 0 — back-to-back ops); the
    tenant workload loops consult
    :meth:`ChaosEngine.tenant_flood_think_ms` before every op, so the
    fault itself is a pure query — no processes, no RNG, no log spam.
    Whether the victims feel it is the :class:`~repro.tenants.context
    .TenantGovernor`'s problem — exactly what the verifier's fairness
    gate judges.

    ``disable_isolation`` models a *dead QoS layer*, and like
    ``datanode_kill``'s ``disable_repair`` it is **one-way**: the
    governor is switched off permanently and the flood think time is
    latched past deactivation (a runaway job nobody is throttling or
    killing).  Restoring either at the window edge would let fairness
    recover on schedule and mask the breakage this expected-FAIL path
    exists to surface.
    """

    kind = "tenant_flood"
    requires_duration = True
    allowed_params = ("tenant", "think_ms", "disable_isolation")

    def validate(self) -> None:
        if not self.params.get("tenant"):
            raise ValueError(f"{self.kind}: tenant param is required")
        if float(self.params.get("think_ms", 0.0)) < 0:
            raise ValueError(f"{self.kind}: think_ms must be >= 0")

    @property
    def tenant(self) -> str:
        return str(self.params["tenant"])

    @property
    def think_ms(self) -> float:
        return float(self.params.get("think_ms", 0.0))

    def on_activate(self) -> None:
        engine = self.engine
        if self.params.get("disable_isolation", False):
            engine.tenant_flood_latch[self.tenant] = self.think_ms
            governor = getattr(engine, "governor", None)
            if governor is not None:
                governor.enabled = False
            engine._log(self.kind, "inject", note="isolation-disabled",
                        tenant=self.tenant)


# -- resilience ---------------------------------------------------------

class LoadSpikeFault(Fault):
    """Every closed-loop client thinks ``think_factor``× as long.

    A pure query fault: the chaos runner's client loops multiply their
    sampled think time by :meth:`ChaosEngine.think_factor` before each
    sleep, so a factor below 1.0 is a demand surge (the whole client
    population speeds up at once) and the fault itself spawns no
    processes and draws no randomness.  Combined with a store slowdown
    this is the recipe for metastable overload: offered load rises
    exactly as capacity falls, and retries amplify the difference.
    """

    kind = "load_spike"
    requires_duration = True
    allowed_params = ("think_factor",)

    def validate(self) -> None:
        if float(self.params.get("think_factor", 0.25)) <= 0:
            raise ValueError(f"{self.kind}: think_factor must be > 0")

    @property
    def think_factor(self) -> float:
        return float(self.params.get("think_factor", 0.25))


class DisableSheddingFault(Fault):
    """Switch the resilience layer off — **permanently**.

    Like ``datanode_kill``'s ``disable_repair`` and ``tenant_flood``'s
    ``disable_isolation``, this is a one-way latch, not a window: a
    dead resilience control plane (deadlines unstamped, breakers
    never rejecting, shedders never dropping).  The
    ``metastable-brownout-noshed`` expected-FAIL twin uses it to show
    the unprotected system staying collapsed after the fault clears.
    """

    kind = "disable_shedding"
    allowed_params = ()

    def on_activate(self) -> None:
        engine = self.engine
        resilience = getattr(engine, "resilience", None)
        if resilience is None:
            engine._log(self.kind, "inject", note="no-resilience")
            return
        resilience.enabled = False
        engine._log(self.kind, "inject", note="shedding-disabled")


# -- registry -----------------------------------------------------------

FAULT_TYPES: Dict[str, Type[Fault]] = {
    cls.kind: cls
    for cls in (
        TcpDropFault,
        TcpDelayFault,
        TcpDuplicateFault,
        TcpSeverFault,
        HttpBrownoutFault,
        ShardOutageFault,
        StoreSlowdownFault,
        LockStormFault,
        AckLossFault,
        MembershipFlapFault,
        WatchDelayFault,
        NameNodeKillFault,
        ColdStartStormFault,
        CapacityCrunchFault,
        DataNodeKillFault,
        DiskSlowFault,
        TenantFloodFault,
        LoadSpikeFault,
        DisableSheddingFault,
    )
}


def make_fault(spec: FaultSpec, engine: Any = None) -> Fault:
    """Instantiate (and thereby validate) the fault for ``spec``."""
    cls = FAULT_TYPES.get(spec.kind)
    if cls is None:
        raise ValueError(
            f"unknown fault kind {spec.kind!r}; "
            f"known: {sorted(FAULT_TYPES)}"
        )
    return cls(spec, engine)


def validate_scenario(scenario: Any) -> None:
    """Raise ValueError if any fault spec in ``scenario`` is invalid."""
    for spec in scenario.faults:
        make_fault(spec, engine=None)
