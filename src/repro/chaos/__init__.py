"""Multi-layer chaos engineering for the simulated λFS stack.

Deterministic, composable fault injection with recovery verification:

- :mod:`repro.chaos.scenario` — the scenario DSL (:class:`FaultSpec`,
  :class:`Scenario`) and its JSON form;
- :mod:`repro.chaos.faults` — the fault catalog (TCP fabric, HTTP
  gateway, metastore shards, coordinator, FaaS platform) and the
  §5.6 :class:`NameNodeKiller`;
- :mod:`repro.chaos.engine` — :class:`ChaosEngine`, which walks a
  scenario's activation edges on the sim clock and answers injection
  queries from the instrumented sites;
- :mod:`repro.chaos.verifier` — :class:`ChaosVerifier`, the post-run
  invariants / liveness / recovery-SLO gates;
- :mod:`repro.chaos.runner` — end-to-end scenario runs under load
  (``repro chaos run`` / ``repro chaos matrix``);
- :mod:`repro.chaos.scenarios` — the built-in catalog and the
  regression :data:`~repro.chaos.scenarios.MATRIX`.
"""

from repro.chaos.engine import ChaosEngine, FaultEvent, install_chaos
from repro.chaos.faults import (
    FAULT_TYPES,
    VICTIM_POLICIES,
    Fault,
    KillRecord,
    NameNodeKiller,
    derive_rng,
    make_fault,
    pick_victim,
    validate_scenario,
)
from repro.chaos.runner import (
    RECOVERABLE_ERRORS,
    ChaosRunConfig,
    ChaosRunResult,
    resilience_run_config,
    run_matrix,
    run_scenario,
    scenario_needs_datanodes,
    scenario_needs_resilience,
    scenario_needs_tenants,
)
from repro.chaos.scenario import (
    FaultSpec,
    Scenario,
    load_scenario,
    save_scenario,
)
from repro.chaos.scenarios import (
    DATANODE_MATRIX,
    EXPECTED_FAIL,
    MATRIX,
    RESILIENCE_MATRIX,
    TENANT_MATRIX,
    builtin_scenarios,
    get_scenario,
)
from repro.chaos.verifier import ChaosVerifier, RecoverySLO, VerifierReport

__all__ = [
    "ChaosEngine",
    "ChaosRunConfig",
    "ChaosRunResult",
    "ChaosVerifier",
    "DATANODE_MATRIX",
    "EXPECTED_FAIL",
    "FAULT_TYPES",
    "Fault",
    "FaultEvent",
    "FaultSpec",
    "KillRecord",
    "MATRIX",
    "NameNodeKiller",
    "RECOVERABLE_ERRORS",
    "RESILIENCE_MATRIX",
    "RecoverySLO",
    "Scenario",
    "TENANT_MATRIX",
    "VICTIM_POLICIES",
    "VerifierReport",
    "builtin_scenarios",
    "derive_rng",
    "get_scenario",
    "install_chaos",
    "load_scenario",
    "make_fault",
    "pick_victim",
    "resilience_run_config",
    "run_matrix",
    "run_scenario",
    "save_scenario",
    "scenario_needs_datanodes",
    "scenario_needs_resilience",
    "scenario_needs_tenants",
    "validate_scenario",
]
