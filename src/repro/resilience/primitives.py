"""Deterministic resilience primitives (λFS §3.2 hardening).

Naive resubmission of timed-out invokes turns a transient brownout
into a metastable congestion collapse: abandoned work keeps executing,
queue delay keeps latency above every watchdog threshold, and the
retry storm sustains itself after the original fault clears.  The
primitives here are the standard control mechanisms that break that
feedback loop:

* :class:`Deadline` math — one absolute sim-time budget per op,
  threaded through every hop so downstream stages can refuse work the
  client has already given up on;
* :class:`CircuitBreaker` — closed/open/half-open per-destination
  state machine with seeded reopen jitter, so a fleet of callers does
  not re-probe a recovering destination in lockstep;
* :class:`RetryBudget` — token bucket: retries spend, successes
  refill; when the bucket is empty the client fails fast instead of
  amplifying load;
* :class:`LoadShedder` — CoDel-style admission control on observed
  queue delay: sustained delay above target starts dropping on the
  classic ``interval / sqrt(drop_count)`` schedule.

Everything is plain state-machine code: no events are created, and
random draws happen only at breaker-open edges (from a seeded stream),
so runs without these attached stay event-hash byte-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the resilience control plane (see docs/resilience.md)."""

    deadline_ms: float = 4_000.0
    """End-to-end budget per metadata op, stamped at issue time."""
    min_attempt_timeout_ms: float = 100.0
    """Floor for a budget-sized per-attempt timeout."""
    attempt_timeout_fraction: float = 0.5
    """Each attempt may spend at most this fraction of the remaining
    budget, keeping headroom for at least one retry elsewhere."""
    breaker_failure_threshold: int = 5
    """Consecutive failure signals that open a breaker."""
    breaker_open_ms: float = 500.0
    """Base open-state dwell before the first half-open probe."""
    breaker_open_jitter: float = 0.5
    """Reopen dwell is ``open_ms * (1 + jitter * U[0,1))`` — seeded,
    so breakers opened by the same burst do not re-probe together."""
    breaker_half_open_probes: int = 1
    """Concurrent trial requests admitted while half-open."""
    shard_latency_threshold_ms: float = 50.0
    """A metastore access slower than this counts as a failure signal
    on the NameNode→shard breaker edge (outages and brownouts both
    manifest as latency, not exceptions)."""
    retry_budget_tokens: float = 8.0
    """Token-bucket capacity; each retry spends one token."""
    retry_budget_refill: float = 0.2
    """Tokens returned per successful op (never above capacity)."""
    shed_target_delay_ms: float = 20.0
    """CoDel target: observed CPU-queue delay the shedder tolerates."""
    shed_interval_ms: float = 100.0
    """Delay must stay above target this long before shedding starts."""
    stale_read_bound_ms: float = 1_000.0
    """Under shed pressure a read may serve an invalidated cache entry
    no older than this (the coherence checker verifies the bound)."""
    stale_keep: int = 512
    """Invalidated-entry snapshots retained per NameNode for bounded-
    staleness serving."""


# -- deadline budget math ---------------------------------------------------

def remaining_budget_ms(deadline_ms: Optional[float], now: float) -> float:
    """Budget left before ``deadline_ms`` (+inf when no deadline)."""
    if deadline_ms is None:
        return math.inf
    return deadline_ms - now


def attempt_timeout_ms(
    config: ResilienceConfig,
    deadline_ms: Optional[float],
    now: float,
    fallback_ms: float,
) -> float:
    """Size one attempt's timeout from the remaining budget.

    Without a deadline this is the legacy fixed ``fallback_ms``.  With
    one, the attempt gets ``fraction`` of what is left (floored at
    ``min_attempt_timeout_ms`` so late attempts are not starved into
    instant timeouts) but never more than the remaining budget itself.
    """
    if deadline_ms is None:
        return fallback_ms
    remaining = deadline_ms - now
    if remaining <= 0.0:
        return 0.0
    sized = max(
        config.min_attempt_timeout_ms,
        remaining * config.attempt_timeout_fraction,
    )
    return min(fallback_ms, remaining, sized)


# -- circuit breaker --------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Legal state-machine edges; the chaos verifier's gate 7 checks every
#: logged transition against this set.
VALID_TRANSITIONS = frozenset([
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, OPEN),
    (HALF_OPEN, CLOSED),
])


@dataclass(frozen=True)
class BreakerTransition:
    """One logged breaker state change (consumed by gate 7)."""

    name: str
    t_ms: float
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Per-destination closed/open/half-open breaker.

    Failure signals are the same ones the retry machinery sees
    (transport errors, sheds, slow shard accesses); ``threshold``
    *consecutive* failures open the breaker, a seeded-jitter dwell
    later one probe is admitted half-open, and its outcome closes or
    re-opens the breaker.
    """

    __slots__ = (
        "name", "config", "_rng", "_on_transition", "state",
        "consecutive_failures", "reopen_at_ms", "probes_in_flight",
        "opens", "rejections",
    )

    def __init__(
        self,
        name: str,
        config: ResilienceConfig,
        rng: random.Random,
        on_transition: Optional[Callable[[BreakerTransition], None]] = None,
    ) -> None:
        self.name = name
        self.config = config
        self._rng = rng
        self._on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.reopen_at_ms = 0.0
        self.probes_in_flight = 0
        self.opens = 0
        self.rejections = 0

    def _transition(self, now: float, to_state: str, reason: str) -> None:
        event = BreakerTransition(self.name, now, self.state, to_state, reason)
        self.state = to_state
        if to_state == OPEN:
            self.opens += 1
            jitter = 1.0 + self.config.breaker_open_jitter * self._rng.random()
            self.reopen_at_ms = now + self.config.breaker_open_ms * jitter
            self.probes_in_flight = 0
        elif to_state == CLOSED:
            self.consecutive_failures = 0
            self.probes_in_flight = 0
        if self._on_transition is not None:
            self._on_transition(event)

    def allow(self, now: float) -> bool:
        """May a request be sent to this destination right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now < self.reopen_at_ms:
                self.rejections += 1
                return False
            self._transition(now, HALF_OPEN, "open dwell elapsed")
        # half-open: admit up to the configured number of probes.
        if self.probes_in_flight < self.config.breaker_half_open_probes:
            self.probes_in_flight += 1
            return True
        self.rejections += 1
        return False

    def retry_after_ms(self, now: float) -> float:
        """How long until an open breaker will admit a probe."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.reopen_at_ms - now)

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._transition(now, CLOSED, "probe succeeded")
        # A late success while OPEN (a request admitted pre-open that
        # finished during the dwell) does not close the breaker: only
        # the half-open probe can, or recoveries would race failures.

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._transition(now, OPEN, "probe failed")
            return
        if self.state == CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.config.breaker_failure_threshold:
                self._transition(
                    now, OPEN,
                    f"{self.consecutive_failures} consecutive failures",
                )
        # Failures reported while already OPEN are in-flight stragglers
        # from before the trip; the dwell timer is not extended.


# -- retry budget -----------------------------------------------------------

class RetryBudget:
    """Client-side retry token bucket.

    Retries (including straggler resubmits) spend one token; each
    successful op refills a fraction of one.  An empty bucket makes
    the client fail fast — the source-side kill switch for retry
    storms.  Invariants (property-tested): tokens never go negative
    and never exceed capacity; refills are monotone.
    """

    __slots__ = ("capacity", "refill_amount", "tokens", "exhaustions")

    def __init__(self, capacity: float, refill_amount: float) -> None:
        if capacity <= 0.0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.refill_amount = max(0.0, refill_amount)
        self.tokens = capacity
        self.exhaustions = 0

    def try_spend(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens; False (and no change) if short."""
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        self.exhaustions += 1
        return False

    def refill(self) -> None:
        self.tokens = min(self.capacity, self.tokens + self.refill_amount)


# -- CoDel-style load shedder ----------------------------------------------

class LoadShedder:
    """Admission control from observed queue delay (CoDel control law).

    ``observe`` feeds measured CPU-queue waits of completed requests;
    once the delay has stayed above ``target`` for a full ``interval``
    the shedder enters the shedding state and ``should_shed`` drops
    requests on the ``interval / sqrt(drop_count)`` schedule until the
    delay falls back under target.  Pure arithmetic on the sim clock —
    no RNG, no events.
    """

    __slots__ = (
        "target_ms", "interval_ms", "first_above_ms", "shedding",
        "drop_next_ms", "drop_count", "sheds",
    )

    def __init__(self, target_ms: float, interval_ms: float) -> None:
        self.target_ms = target_ms
        self.interval_ms = interval_ms
        self.first_above_ms: Optional[float] = None
        self.shedding = False
        self.drop_next_ms = 0.0
        self.drop_count = 0
        self.sheds = 0

    def observe(self, now: float, queue_delay_ms: float) -> None:
        """Record one completed request's measured queue delay."""
        if queue_delay_ms < self.target_ms:
            self.first_above_ms = None
            self.shedding = False
            self.drop_count = 0
            return
        if self.first_above_ms is None:
            self.first_above_ms = now
        if (
            not self.shedding
            and now - self.first_above_ms >= self.interval_ms
        ):
            self.shedding = True
            self.drop_count = 0
            self.drop_next_ms = now  # first drop fires immediately

    @property
    def under_pressure(self) -> bool:
        """True while the shedding state is latched (drives the
        bounded-staleness degraded-read mode)."""
        return self.shedding

    def should_shed(self, now: float) -> bool:
        """Consume the drop schedule: True means drop this request."""
        if not self.shedding or now < self.drop_next_ms:
            return False
        self.drop_count += 1
        self.sheds += 1
        self.drop_next_ms = now + self.interval_ms / math.sqrt(self.drop_count)
        return True


__all__ = [
    "ResilienceConfig",
    "remaining_budget_ms",
    "attempt_timeout_ms",
    "CircuitBreaker",
    "BreakerTransition",
    "RetryBudget",
    "LoadShedder",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "VALID_TRANSITIONS",
]
