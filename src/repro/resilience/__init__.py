"""repro.resilience — graceful degradation under overload.

Deadline propagation, per-destination circuit breakers, client retry
budgets, CoDel-style load shedding, and bounded-staleness degraded
reads.  Attached via ``LambdaFSConfig.resilience``; detached runs are
event-hash byte-identical to a build without this package.

See docs/resilience.md for the mechanism map and tuning guide.
"""

from repro.resilience.manager import ResilienceManager
from repro.resilience.primitives import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    VALID_TRANSITIONS,
    BreakerTransition,
    CircuitBreaker,
    LoadShedder,
    ResilienceConfig,
    RetryBudget,
    attempt_timeout_ms,
    remaining_budget_ms,
)

__all__ = [
    "ResilienceManager",
    "ResilienceConfig",
    "CircuitBreaker",
    "BreakerTransition",
    "RetryBudget",
    "LoadShedder",
    "attempt_timeout_ms",
    "remaining_budget_ms",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "VALID_TRANSITIONS",
]
