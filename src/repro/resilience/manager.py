"""The per-system resilience control plane.

One :class:`ResilienceManager` is attached to a :class:`LambdaFS` when
``LambdaFSConfig.resilience`` is set (the same single-``is None``
opt-in every other subsystem uses).  It owns the shared registries —
circuit breakers per destination edge, one CoDel shedder per NameNode
instance, one retry budget per client — plus the breaker transition
log and shed/violation counters that ChaosVerifier gate 7 audits.

The ``enabled`` flag is the one-way latch the ``disable_shedding``
chaos fault flips: with it False every *enforcement* mechanism stands
down (breakers stop rejecting, shedders stop dropping, attempts stop
being timed out against the budget) while the *observational* side —
deadline stamping and the executed-past-deadline tripwire — keeps
counting.  That split is how the ``metastable-brownout-noshed``
expected-FAIL twin exhibits the unprotected collapse: its ops grind
past their stamped deadlines and gate 7 catches every one.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.messages import MetadataRequest, MetadataResponse
from repro.resilience.primitives import (
    BreakerTransition,
    CircuitBreaker,
    LoadShedder,
    ResilienceConfig,
    RetryBudget,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class ResilienceManager:
    """Registries + counters for the resilience mechanisms."""

    def __init__(
        self,
        env: "Environment",
        config: ResilienceConfig,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.config = config
        self._rng = rng
        #: One-way latch; the ``disable_shedding`` fault sets False.
        self.enabled = True
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._shedders: Dict[str, LoadShedder] = {}
        self._budgets: Dict[str, RetryBudget] = {}
        self.transitions: List[BreakerTransition] = []
        self.sheds = 0
        self.deadline_expirations = 0
        self.deadline_violations = 0
        self.stale_reads = 0
        self.budget_exhaustions = 0

    @property
    def active(self) -> bool:
        """Gate every hot-path mechanism check behind one read."""
        return self.enabled

    # -- deadline stamping --------------------------------------------------
    def stamp(self, request: MetadataRequest) -> None:
        """Assign the op's absolute end-to-end deadline at issue time."""
        if request.deadline_ms is None:
            request.deadline_ms = self.env.now + self.config.deadline_ms

    def expired(self, request: MetadataRequest) -> bool:
        deadline = request.deadline_ms
        return deadline is not None and self.env.now >= deadline

    def note_deadline_expired(
        self, request: MetadataRequest, stage: str, actor: str = ""
    ) -> None:
        """One op gave up (or was refused) because its budget ran out."""
        self.deadline_expirations += 1
        env = self.env
        if env.metrics is not None:
            env.metrics.inc("resilience_deadline_expired_total", stage=stage)
        if env.tracer is not None:
            env.tracer.point(
                "resilience.deadline", actor or stage,
                parent=request.trace_parent, stage=stage,
                request_id=request.request_id,
            )

    # -- breakers -----------------------------------------------------------
    def breaker(self, edge: str, destination: str) -> CircuitBreaker:
        """The breaker for one (edge kind, destination) pair.

        Edges in use: ``("client", deployment)`` guarding invokes and
        ``("shard", str(index))`` guarding metastore accesses.  The
        registry is shared system-wide so every caller feeds (and
        honors) the same view of a destination's health.
        """
        key = (edge, destination)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                f"{edge}:{destination}", self.config, self._rng,
                on_transition=self._log_transition,
            )
            self._breakers[key] = breaker
        return breaker

    def _log_transition(self, event: BreakerTransition) -> None:
        self.transitions.append(event)
        env = self.env
        if env.metrics is not None:
            env.metrics.inc(
                "resilience_breaker_transitions_total", to=event.to_state
            )
        if env.tracer is not None:
            env.tracer.point(
                "resilience.breaker", event.name,
                from_state=event.from_state, to_state=event.to_state,
                reason=event.reason,
            )

    def breaker_rejected(self, edge: str) -> None:
        if self.env.metrics is not None:
            self.env.metrics.inc("resilience_breaker_rejections_total",
                                 edge=edge)

    def breaker_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    # -- shedders / budgets -------------------------------------------------
    def shedder(self, member_id: str) -> LoadShedder:
        shedder = self._shedders.get(member_id)
        if shedder is None:
            shedder = LoadShedder(
                self.config.shed_target_delay_ms,
                self.config.shed_interval_ms,
            )
            self._shedders[member_id] = shedder
        return shedder

    def budget(self, client_id: str) -> RetryBudget:
        budget = self._budgets.get(client_id)
        if budget is None:
            budget = RetryBudget(
                self.config.retry_budget_tokens,
                self.config.retry_budget_refill,
            )
            self._budgets[client_id] = budget
        return budget

    def budget_exhausted(self) -> None:
        self.budget_exhaustions += 1
        if self.env.metrics is not None:
            self.env.metrics.inc("resilience_retry_budget_exhausted_total")

    # -- shed bookkeeping ---------------------------------------------------
    def shed_response(
        self,
        request: MetadataRequest,
        stage: str,
        reason: str,
        actor: str = "",
    ) -> MetadataResponse:
        """Count one shed and build the pushback response for it."""
        self.sheds += 1
        if reason == "deadline":
            self.note_deadline_expired(request, stage)
        env = self.env
        if env.metrics is not None:
            env.metrics.inc("resilience_sheds_total",
                            stage=stage, reason=reason)
        if env.tracer is not None:
            env.tracer.point(
                "resilience.shed", actor or stage,
                parent=request.trace_parent, stage=stage, reason=reason,
                request_id=request.request_id,
            )
        return MetadataResponse(
            request_id=request.request_id, ok=False,
            error=f"shed at {stage}: {reason}", shed=True,
        )

    def note_deadline_violation(self, stage: str) -> None:
        """Tripwire: work executed past its deadline (gate 7 wants 0)."""
        self.deadline_violations += 1
        if self.env.metrics is not None:
            self.env.metrics.inc("resilience_deadline_violations_total",
                                 stage=stage)

    def note_stale_read(self, staleness_ms: float) -> None:
        self.stale_reads += 1
        if self.env.metrics is not None:
            self.env.metrics.inc("resilience_stale_reads_total")

    # -- reporting ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Counter summary for run results / BENCH JSON."""
        return {
            "enabled": self.enabled,
            "sheds": self.sheds,
            "deadline_expirations": self.deadline_expirations,
            "deadline_violations": self.deadline_violations,
            "stale_reads": self.stale_reads,
            "budget_exhaustions": self.budget_exhaustions,
            "breaker_opens": self.breaker_opens(),
            "breaker_transitions": len(self.transitions),
        }


__all__ = ["ResilienceManager"]
