"""Sim-time metric primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` attaches to an
:class:`~repro.sim.Environment` (``env.metrics``) exactly like the
tracer does: instrumentation sites across the stack do one attribute
check (``env.metrics is None``) and pay nothing when telemetry is off.

Each metric is a *family* keyed by name; label sets select children::

    m = MetricsRegistry(env)
    m.inc("rpc_requests_total", transport="tcp")
    m.register_gauge("faas_instances_live", deployment.live_count,
                     deployment="NameNode0")
    m.observe("coord_ack_latency_ms", 3.2)

Counters only go up; gauges are set directly or backed by a callback
evaluated at collection time (the cheap way to expose live structures
— fleet sizes, queue depths, trie sizes — without touching hot
paths); histograms count observations into fixed buckets.

The registry never consumes simulated time and uses no randomness, so
a same-seed run produces byte-identical collections.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Default histogram buckets (milliseconds): spans sub-ms lock waits
#: through multi-second cold starts.
DEFAULT_BUCKETS_MS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, key: LabelKey) -> str:
    """Prometheus-style series id: ``name{k="v",...}``."""
    if not key:
        return name
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
    return f"{name}{{{inner}}}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_SERIES_RE = re.compile(r'^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$')
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_key` (used by the dashboard)."""
    match = _SERIES_RE.match(key)
    if match is None:
        return key, {}
    labels = {
        k: v.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        for k, v in _LABEL_RE.findall(match.group("labels") or "")
    }
    return match.group("name"), labels


class Counter:
    """A monotonically increasing family of values."""

    __slots__ = ("name", "help", "_values")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labeled child."""
        return sum(self._values.values())

    def collect(self) -> Dict[str, float]:
        return {
            series_key(self.name, key): value
            for key, value in self._values.items()
        }


class Gauge:
    """A family of instantaneous values, set directly or via callback."""

    __slots__ = ("name", "help", "_values", "_callbacks")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}
        self._callbacks: Dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_fn(self, fn: Callable[[], float], **labels: Any) -> None:
        """Back this child with ``fn``, evaluated at collection time."""
        self._callbacks[label_key(labels)] = fn

    def value(self, **labels: Any) -> float:
        key = label_key(labels)
        fn = self._callbacks.get(key)
        if fn is not None:
            return float(fn())
        return self._values.get(key, 0.0)

    def collect(self) -> Dict[str, float]:
        out = {
            series_key(self.name, key): value
            for key, value in self._values.items()
        }
        for key, fn in self._callbacks.items():
            out[series_key(self.name, key)] = float(fn())
        return out


class Histogram:
    """Fixed-bucket distribution; exposes ``_count``/``_sum`` series.

    Per-sample time series keep only count and sum (rates and means
    are derivable); the full cumulative bucket vector appears in the
    Prometheus text dump.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sums")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        help: str = "",
    ) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # child -> [per-bucket counts..., +inf count]
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self._counts[key] = counts
            self._sums[key] = 0.0
        counts[bisect_left(self.buckets, value)] += 1
        self._sums[key] += value

    def count(self, **labels: Any) -> int:
        return sum(self._counts.get(label_key(labels), ()))

    def sum(self, **labels: Any) -> float:
        return self._sums.get(label_key(labels), 0.0)

    def quantile(self, q: float, **labels: Any) -> float:
        """Upper bucket bound containing the ``q``-quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        counts = self._counts.get(label_key(labels))
        if not counts or sum(counts) == 0:
            return 0.0
        target = q * sum(counts)
        running = 0
        for index, bucket_count in enumerate(counts):
            running += bucket_count
            if running >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")

    def aggregate_quantile(self, q: float) -> float:
        """Quantile over the merged buckets of every labeled child."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        merged = [0] * (len(self.buckets) + 1)
        for counts in self._counts.values():
            for index, bucket_count in enumerate(counts):
                merged[index] += bucket_count
        total = sum(merged)
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for index, bucket_count in enumerate(merged):
            running += bucket_count
            if running >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")

    def collect(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key in self._counts:
            out[series_key(f"{self.name}_count", key)] = float(sum(self._counts[key]))
            out[series_key(f"{self.name}_sum", key)] = self._sums[key]
        return out

    def cumulative_buckets(self, key: LabelKey) -> List[Tuple[str, int]]:
        """(le, cumulative count) pairs for the Prometheus dump."""
        counts = self._counts.get(key, [])
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            out.append((repr(bound), running))
        running += counts[-1] if counts else 0
        out.append(("+Inf", running))
        return out


class MetricsRegistry:
    """The per-environment metric namespace.

    Families are created lazily by the ``inc``/``set``/``observe``
    helpers so instrumentation sites stay one-liners, or declared up
    front with :meth:`counter`/:meth:`gauge`/:meth:`histogram` to
    attach help text and custom buckets.
    """

    def __init__(self, env: Optional[Any] = None) -> None:
        self.env = env
        #: Set by :class:`repro.telemetry.Telemetry` so code holding
        #: only ``env.metrics`` can reach the sampler/exporter bundle.
        self.bundle: Optional[Any] = None
        self._metrics: Dict[str, Any] = {}
        if env is not None:
            env.metrics = self

    def detach(self) -> None:
        """Disconnect from the environment (telemetry turns off)."""
        if self.env is not None and getattr(self.env, "metrics", None) is self:
            self.env.metrics = None

    # -- declaration -----------------------------------------------------
    def _declare(self, cls, name: str, *args, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._declare(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._declare(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        help: str = "",
    ) -> Histogram:
        return self._declare(Histogram, name, buckets, help=help)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    # -- hot-path helpers -------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.counter(name).inc(amount, **labels)

    def set(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name).observe(value, **labels)

    def register_gauge(
        self, name: str, fn: Callable[[], float], help: str = "", **labels: Any
    ) -> None:
        self.gauge(name, help=help).set_fn(fn, **labels)

    # -- collection -------------------------------------------------------
    def collect(self) -> Dict[str, float]:
        """Flattened snapshot of every series (callbacks evaluated)."""
        out: Dict[str, float] = {}
        for metric in self._metrics.values():
            out.update(metric.collect())
        return out

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key in sorted(metric._counts):
                    for le, cumulative in metric.cumulative_buckets(key):
                        bucket_key = key + (("le", le),)
                        lines.append(
                            f"{series_key(name + '_bucket', bucket_key)} {cumulative}"
                        )
                    lines.append(
                        f"{series_key(name + '_sum', key)} {metric._sums[key]!r}"
                    )
                    lines.append(
                        f"{series_key(name + '_count', key)} {sum(metric._counts[key])}"
                    )
            else:
                for series, value in sorted(metric.collect().items()):
                    lines.append(f"{series} {value!r}")
        return "\n".join(lines) + "\n"
