"""Sim-time sampling of a registry into an in-memory time-series.

The :class:`Sampler` is a simulation process: every ``interval_ms``
of *simulated* time it snapshots every series in the registry
(counters cumulatively, gauges instantaneously with callbacks
evaluated, histograms as ``_count``/``_sum``) into a
:class:`TimeSeries`.  Sampling is driven purely by the simulation
clock — never the wall clock — so runs are deterministic: the same
seed yields byte-identical sample streams.

The sampler only reads state; it never mutates the system under
measurement, consumes no RNG, and its timeout events interleave with
the workload without reordering it — enabling telemetry cannot change
simulation results (it does change the kernel event-sequence hash,
since the sample timeouts are themselves events).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry, parse_series_key


class TimeSeries:
    """An append-only sequence of (sim-time, {series: value}) samples."""

    def __init__(self) -> None:
        self.samples: List[Tuple[float, Dict[str, float]]] = []

    def __len__(self) -> int:
        return len(self.samples)

    def append(self, t_ms: float, values: Dict[str, float]) -> None:
        self.samples.append((t_ms, values))

    def times(self) -> List[float]:
        return [t for t, _ in self.samples]

    def keys(self) -> List[str]:
        """Sorted union of every series name seen in any sample."""
        seen = set()
        for _, values in self.samples:
            seen.update(values)
        return sorted(seen)

    def series(self, key: str, default: float = 0.0) -> List[Tuple[float, float]]:
        """(t, value) pairs for one series over the whole run."""
        return [(t, values.get(key, default)) for t, values in self.samples]

    def series_matching(self, name: str) -> Dict[str, List[Tuple[float, float]]]:
        """Every series belonging to metric family ``name``.

        Keys are the full series ids (with labels); use
        :func:`~repro.telemetry.registry.parse_series_key` on them to
        recover label values.
        """
        out: Dict[str, List[Tuple[float, float]]] = {}
        for key in self.keys():
            if parse_series_key(key)[0] == name:
                out[key] = self.series(key)
        return out

    def deltas(self, key: str) -> List[Tuple[float, float]]:
        """Per-interval increases of a cumulative series (for rates)."""
        points = self.series(key)
        out: List[Tuple[float, float]] = []
        previous = 0.0
        for t, value in points:
            out.append((t, max(0.0, value - previous)))
            previous = value
        return out

    def last(self, key: str) -> float:
        for _, values in reversed(self.samples):
            if key in values:
                return values[key]
        return 0.0

    # -- windowed queries (the detectors' read API) --------------------
    def window(self, t0_ms: float, t1_ms: float) -> "TimeSeries":
        """Samples with ``t0_ms <= t <= t1_ms`` (both ends inclusive).

        Inclusive on both sides so a window whose bounds land exactly
        on sample instants keeps those samples — detector windows are
        built from sample times, and a half-open window would silently
        drop the very sample that triggered the query.  The returned
        series shares the sample dicts (read-only by convention).
        """
        out = TimeSeries()
        for t_ms, values in self.samples:
            if t0_ms <= t_ms <= t1_ms:
                out.samples.append((t_ms, values))
        return out

    def last_k(self, key: str, k: int, default: float = 0.0) -> List[Tuple[float, float]]:
        """The trailing ``k`` (t, value) points of one series.

        Fewer than ``k`` samples yields all of them; ``k <= 0`` yields
        an empty list.
        """
        if k <= 0:
            return []
        return [
            (t, values.get(key, default))
            for t, values in self.samples[-k:]
        ]

    def rate_over_window(
        self, key: str, t0_ms: float, t1_ms: float
    ) -> float:
        """Increase of a cumulative series across a window, per second.

        The increase is measured between the first and last samples
        inside ``[t0_ms, t1_ms]`` (inclusive) and divided by their
        time span.  Empty and single-sample windows have no measurable
        span and return 0.0; counter resets (decreases) clamp to 0.0.
        """
        points = [
            (t, values.get(key, 0.0))
            for t, values in self.samples
            if t0_ms <= t <= t1_ms
        ]
        if len(points) < 2:
            return 0.0
        (first_t, first_v), (last_t, last_v) = points[0], points[-1]
        span_ms = last_t - first_t
        if span_ms <= 0:
            return 0.0
        return max(0.0, last_v - first_v) / (span_ms / 1_000.0)


class Sampler:
    """The sampling sim-process feeding a :class:`TimeSeries`."""

    def __init__(
        self,
        env,
        registry: MetricsRegistry,
        interval_ms: float = 500.0,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.env = env
        self.registry = registry
        self.interval_ms = interval_ms
        self.timeseries = TimeSeries()
        self.on_sample = None
        """Optional callback ``fn(timeseries)`` invoked after each new
        sample lands (the alert detectors' attachment point).  Mirrors
        the stack-wide single ``is None`` check pattern: detection off
        costs one attribute read per sample, and a pure-read callback
        (no events, no RNG) cannot perturb the simulation."""
        self._stopped = False
        self._proc = None

    @property
    def running(self) -> bool:
        return self._proc is not None and not self._stopped

    def start(self) -> "Sampler":
        """Begin sampling at the current sim-time (idempotent)."""
        if self._proc is None:
            self._proc = self.env.process(self._run())
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop sampling; optionally take one last snapshot now.

        The loop exits on its next wake-up; no events are injected, so
        stopping is safe even after the run loop has drained.
        """
        self._stopped = True
        if final_sample:
            self.sample_now(force=True)

    def sample_now(self, force: bool = False) -> None:
        """Take one snapshot immediately.

        Consecutive snapshots at the same sim-instant are identical,
        so duplicates are skipped unless ``force`` is set.
        """
        now = self.env.now
        samples = self.timeseries.samples
        if not force and samples and samples[-1][0] == now:
            return
        self.timeseries.append(now, self.registry.collect())
        if self.on_sample is not None:
            self.on_sample(self.timeseries)

    def _run(self):
        while not self._stopped:
            self.sample_now()
            yield self.env.timeout(self.interval_ms)
