"""Telemetry exporters: JSONL snapshots, CSV time-series, Prometheus.

Three formats, three audiences:

* **JSONL** — one JSON object per sample, lossless, round-trips back
  into a :class:`~repro.telemetry.sampler.TimeSeries` (the ``repro
  telemetry --load`` path);
* **CSV** — one column per series, for spreadsheets and pandas;
* **Prometheus text** — the registry's *final* state (cumulative
  counters, last gauges, full histogram buckets) in the standard
  exposition format, so real Prometheus/Grafana tooling can ingest a
  finished run.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Dict, List, Union

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampler import TimeSeries

PathOrFile = Union[str, IO[str]]


def _open(target: PathOrFile, mode: str):
    if isinstance(target, str):
        return open(target, mode, newline=""), True
    return target, False


def write_jsonl(timeseries: TimeSeries, target: PathOrFile) -> int:
    """Write one JSON object per sample; returns lines written."""
    handle, owned = _open(target, "w")
    try:
        for t_ms, values in timeseries.samples:
            handle.write(json.dumps(
                {"t_ms": t_ms, "values": values}, sort_keys=True
            ))
            handle.write("\n")
        return len(timeseries.samples)
    finally:
        if owned:
            handle.close()


def read_jsonl(source: PathOrFile) -> TimeSeries:
    """Load a time-series previously written by :func:`write_jsonl`."""
    handle, owned = _open(source, "r")
    timeseries = TimeSeries()
    try:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "t_ms" not in record:
                continue  # tolerate meta/comment records
            timeseries.append(float(record["t_ms"]), dict(record.get("values", {})))
        return timeseries
    finally:
        if owned:
            handle.close()


def write_csv(timeseries: TimeSeries, target: PathOrFile) -> List[str]:
    """Write ``t_ms`` plus one column per series; returns the header."""
    keys = timeseries.keys()
    header = ["t_ms"] + keys
    handle, owned = _open(target, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(header)
        for t_ms, values in timeseries.samples:
            writer.writerow(
                [repr(t_ms)] + [
                    repr(values[key]) if key in values else "" for key in keys
                ]
            )
        return header
    finally:
        if owned:
            handle.close()


def write_prometheus(registry: MetricsRegistry, target: PathOrFile) -> str:
    """Dump the registry's final state in Prometheus text format."""
    text = registry.prometheus_text()
    handle, owned = _open(target, "w")
    try:
        handle.write(text)
        return text
    finally:
        if owned:
            handle.close()


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Minimal parser for the exposition format (used by smoke tests).

    Returns ``{series: value}``; raises ``ValueError`` on malformed
    sample lines so CI can assert a dump is well-formed.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed sample line: {line!r}")
        out[series] = float(value)
    return out
