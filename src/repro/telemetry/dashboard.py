"""The ascii telemetry dashboard (``repro telemetry``).

Renders the sampled time-series as labelled sparkline timelines —
the terminal analogue of the paper's Figures 6–15 panels:

* fleet — per-deployment live-instance counts, desired vs actual;
* rpc — TCP vs HTTP request mix per sampling interval;
* cache — per-deployment hit ratio and trie size;
* a closing table of end-of-run counters.

Anything the well-known sections don't cover is listed generically,
so the dashboard stays useful for registries with custom metrics.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.ascii_plot import sparkline
from repro.telemetry.registry import (
    MetricsRegistry,
    label_key,
    parse_series_key,
    series_key,
)
from repro.telemetry.sampler import TimeSeries

#: Families the named sections consume (the generic tail skips these).
_SECTION_FAMILIES = {
    "faas_instances_live", "fleet_desired_namenodes", "fleet_actual_namenodes",
    "rpc_requests_total", "cache_hit_ratio", "cache_trie_size",
    "cache_hits_total", "cache_misses_total",
}


def _resample(values: Sequence[float], width: int) -> List[float]:
    """At most ``width`` points, evenly spaced over the series."""
    if len(values) <= width:
        return list(values)
    step = len(values) / width
    return [values[int(index * step)] for index in range(width)]


def _spark_row(label: str, points: Sequence[Tuple[float, float]],
               width: int, fmt: str = "{:,.0f}") -> str:
    values = [v for _, v in points]
    spark = sparkline(_resample(values, width))
    # min/max over finite samples only — one NaN in a ratio series
    # must not poison the whole row's summary stats.
    finite = [v for v in values if math.isfinite(v)]
    low = min(finite) if finite else 0.0
    high = max(finite) if finite else 0.0
    last = values[-1] if values else 0.0
    last_text = fmt.format(last) if math.isfinite(last) else str(last)
    return (f"  {label:<26s} {spark}  "
            f"min {fmt.format(low)}  max {fmt.format(high)}  "
            f"last {last_text}")


def _label_of(key: str, label: str) -> str:
    name, labels = parse_series_key(key)
    return labels.get(label, name)


def _fleet_section(ts: TimeSeries, width: int) -> List[str]:
    lines: List[str] = []
    per_deployment = ts.series_matching("faas_instances_live")
    for key in sorted(per_deployment):
        lines.append(_spark_row(
            _label_of(key, "deployment"), per_deployment[key], width
        ))
    if per_deployment:
        totals = [
            (t, sum(points[index][1] for points in per_deployment.values()))
            for index, (t, _) in enumerate(next(iter(per_deployment.values())))
        ]
        lines.append(_spark_row("fleet total", totals, width))
    for family, label in (
        ("fleet_desired_namenodes", "desired (Fig 6 model)"),
        ("fleet_actual_namenodes", "actual"),
    ):
        for key, points in sorted(ts.series_matching(family).items()):
            lines.append(_spark_row(label, points, width, fmt="{:,.1f}"))
    if lines:
        lines.insert(0, "== fleet (NameNodes per deployment) ==")
    return lines


def _rpc_section(ts: TimeSeries, width: int) -> List[str]:
    lines: List[str] = []
    for key in sorted(ts.series_matching("rpc_requests_total")):
        transport = _label_of(key, "transport")
        lines.append(_spark_row(
            f"{transport} req/interval", ts.deltas(key), width
        ))
    if lines:
        lines.insert(0, "== rpc mix (per sampling interval) ==")
    return lines


def _interval_hit_rate(ts: TimeSeries, hits_key: str,
                       misses_key: str) -> List[Tuple[float, float]]:
    """Per-interval hit %, from deltas of the cumulative counters.

    Unlike the cumulative ratio, this dips sharply when an
    invalidation storm empties the caches mid-run.
    """
    hits = ts.deltas(hits_key)
    misses = dict(ts.deltas(misses_key))
    out: List[Tuple[float, float]] = []
    for t, hit_delta in hits:
        lookups = hit_delta + misses.get(t, 0.0)
        out.append((t, 100.0 * hit_delta / lookups if lookups else 0.0))
    return out


def _cache_section(ts: TimeSeries, width: int) -> List[str]:
    lines: List[str] = []
    for hits_key in sorted(ts.series_matching("cache_hits_total")):
        name, labels = parse_series_key(hits_key)
        misses_key = series_key("cache_misses_total", label_key(labels))
        lines.append(_spark_row(
            f"hit%/intvl {labels.get('deployment', name)}",
            _interval_hit_rate(ts, hits_key, misses_key),
            width, fmt="{:.1f}",
        ))
    for key in sorted(ts.series_matching("cache_hit_ratio")):
        lines.append(_spark_row(
            f"hit% {_label_of(key, 'deployment')}",
            [(t, v * 100.0) for t, v in ts.series(key)],
            width, fmt="{:.1f}",
        ))
    trie = ts.series_matching("cache_trie_size")
    if trie:
        totals = [
            (t, sum(points[index][1] for points in trie.values()))
            for index, (t, _) in enumerate(next(iter(trie.values())))
        ]
        lines.append(_spark_row("trie entries (fleet)", totals, width))
    if lines:
        lines.insert(0, "== namespace cache ==")
    return lines


def _generic_section(ts: TimeSeries, width: int, limit: int = 12) -> List[str]:
    leftovers = [
        key for key in ts.keys()
        if parse_series_key(key)[0] not in _SECTION_FAMILIES
        and not key.endswith("_sum")
    ]
    if not leftovers:
        return []
    lines = ["== other series =="]
    for key in leftovers[:limit]:
        lines.append(_spark_row(key, ts.series(key), width, fmt="{:,.1f}"))
    if len(leftovers) > limit:
        lines.append(f"  … {len(leftovers) - limit} more series "
                     f"(see the CSV/JSONL exports)")
    return lines


def _counters_table(registry: MetricsRegistry) -> List[str]:
    # Imported here: repro.bench pulls in the harness, which imports
    # this package — a module-level import would be circular.
    from repro.bench.report import format_cell, tabulate

    rows = []
    for name in sorted(registry.names()):
        metric = registry.get(name)
        if metric.kind == "counter":
            rows.append([name, metric.total()])
        elif metric.kind == "histogram":
            total = sum(sum(counts) for counts in metric._counts.values())
            # One aggregate row per histogram family (children merged).
            rows.append([f"{name} (n, ≤p99)",
                         f"{total:,.0f}, {format_cell(metric.aggregate_quantile(0.99))}"])
    if not rows:
        return []
    return ["== end-of-run counters ==",
            tabulate(["metric", "value"], rows)]


def render_dashboard(
    timeseries: TimeSeries,
    registry: Optional[MetricsRegistry] = None,
    width: int = 56,
) -> str:
    """Render the full dashboard; returns a printable string."""
    if not timeseries.samples:
        return "telemetry: no samples recorded"
    t0 = timeseries.samples[0][0]
    t1 = timeseries.samples[-1][0]
    header = (f"telemetry: {len(timeseries.samples)} samples over "
              f"{(t1 - t0) / 1_000.0:.2f} s simulated "
              f"({len(timeseries.keys())} series)")
    sections: List[List[str]] = [
        _fleet_section(timeseries, width),
        _rpc_section(timeseries, width),
        _cache_section(timeseries, width),
        _generic_section(timeseries, width),
    ]
    if registry is not None:
        sections.append(_counters_table(registry))
    body = "\n\n".join("\n".join(s) for s in sections if s)
    return f"{header}\n\n{body}" if body else header
