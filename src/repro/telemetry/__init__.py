"""Fleet-wide, sim-time telemetry for the λFS simulator.

Mirrors the tracer (PR 2): a :class:`MetricsRegistry` hangs off
``env.metrics`` and every instrumentation site across the stack does a
single ``env.metrics is None`` check — telemetry off costs one
attribute read per site.  A :class:`Sampler` sim-process snapshots the
registry every N sim-ms into a :class:`TimeSeries`; exporters write
JSONL/CSV/Prometheus; :func:`render_dashboard` turns a run into an
ascii report (``repro telemetry``).

Typical wiring (what ``bench.harness`` does for ``telemetry=True``)::

    telemetry = install_telemetry(env, interval_ms=500.0)
    ...  # build system, run workload
    telemetry.stop()
    telemetry.export("out/")          # telemetry.{jsonl,csv,prom}
    print(telemetry.dashboard())
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.telemetry.registry import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
    parse_series_key,
    series_key,
)
from repro.telemetry.sampler import Sampler, TimeSeries
from repro.telemetry.export import (
    parse_prometheus_text,
    read_jsonl,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.dashboard import render_dashboard

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sampler",
    "Telemetry",
    "TimeSeries",
    "install_telemetry",
    "label_key",
    "parse_prometheus_text",
    "parse_series_key",
    "read_jsonl",
    "render_dashboard",
    "series_key",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
]


class Telemetry:
    """Bundle of one registry + one sampler attached to an environment."""

    def __init__(self, env: Any, interval_ms: float = 500.0) -> None:
        self.env = env
        self.registry = MetricsRegistry(env)
        self.registry.bundle = self  # backref for shared-env reuse
        self.sampler = Sampler(env, self.registry, interval_ms=interval_ms)

    @property
    def timeseries(self) -> TimeSeries:
        return self.sampler.timeseries

    def start(self) -> "Telemetry":
        self.sampler.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        self.sampler.stop(final_sample=final_sample)

    def export(self, directory: str, basename: str = "telemetry") -> Dict[str, str]:
        """Write all three formats into ``directory``; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = {
            "jsonl": os.path.join(directory, f"{basename}.jsonl"),
            "csv": os.path.join(directory, f"{basename}.csv"),
            "prom": os.path.join(directory, f"{basename}.prom"),
        }
        write_jsonl(self.timeseries, paths["jsonl"])
        write_csv(self.timeseries, paths["csv"])
        write_prometheus(self.registry, paths["prom"])
        return paths

    def dashboard(self, width: int = 56) -> str:
        return render_dashboard(self.timeseries, self.registry, width=width)

    def attach_detector(self, detector: Any) -> Any:
        """Hook an alert detector onto the sampler.

        ``detector.observe(timeseries)`` runs after every sample; pass
        the detector's registry mirror this bundle's registry so
        firing-state gauges land in the exports.  Returns the detector
        for chaining.
        """
        self.sampler.on_sample = detector.observe
        return detector

    def detach_detector(self) -> None:
        self.sampler.on_sample = None


def install_telemetry(
    env: Any,
    interval_ms: float = 500.0,
    start: bool = True,
) -> Telemetry:
    """Attach a registry to ``env.metrics`` and start the sampler."""
    telemetry = Telemetry(env, interval_ms=interval_ms)
    if start:
        telemetry.start()
    return telemetry
