"""File-system namespace model shared by every MDS in this repository.

The authoritative namespace lives in a persistent metadata store
(:mod:`repro.metastore`) as INode and directory-entry rows; this
package provides the data model (:class:`INode`), path utilities, and
the in-memory trie cache (:class:`MetadataCache`) used by caching
NameNodes (λFS, HopsFS+Cache, λIndexFS).
"""

from repro.namespace.cache import CacheStats, MetadataCache
from repro.namespace.inode import INode, ROOT_INODE_ID
from repro.namespace.paths import (
    components,
    is_descendant,
    join,
    normalize,
    parent_of,
    split,
)
from repro.namespace.treegen import TreeSpec, generate_tree

__all__ = [
    "CacheStats",
    "INode",
    "MetadataCache",
    "ROOT_INODE_ID",
    "TreeSpec",
    "components",
    "generate_tree",
    "is_descendant",
    "join",
    "normalize",
    "parent_of",
    "split",
]
