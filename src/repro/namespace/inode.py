"""The INode record: one row per file or directory.

This mirrors the schema HopsFS keeps in MySQL NDB: INodes are keyed
by id, and directory entries (``dirent`` rows) map
``(parent_id, name)`` to a child id, which lets path resolution run as
batched primary-key lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

ROOT_INODE_ID = 1
"""The well-known id of "/". Ids below this are never allocated."""


@dataclass(frozen=True)
class INode:
    """An immutable snapshot of one file-system object's metadata.

    Instances are value objects: stores and caches exchange copies, so
    mutating shared state is impossible by construction (the coherence
    protocol, not aliasing, keeps caches in sync).
    """

    id: int
    parent_id: Optional[int]
    name: str
    is_dir: bool
    permission: int = 0o755
    owner: str = "hdfs"
    group: str = "hdfs"
    size: int = 0
    mtime: float = 0.0
    block_ids: tuple = field(default_factory=tuple)

    def with_updates(self, **changes) -> "INode":
        """A copy of this INode with the given fields replaced."""
        return replace(self, **changes)

    @property
    def is_root(self) -> bool:
        return self.id == ROOT_INODE_ID

    @staticmethod
    def root() -> "INode":
        """The canonical root directory INode."""
        return INode(id=ROOT_INODE_ID, parent_id=None, name="", is_dir=True)


def inode_key(inode_id: int) -> tuple:
    """Store key for an INode row."""
    return ("inode", inode_id)


def dirent_key(parent_id: int, name: str) -> tuple:
    """Store key for a directory-entry row."""
    return ("dirent", parent_id, name)


def dirent_prefix(parent_id: int) -> tuple:
    """Store scan prefix covering every entry of one directory."""
    return ("dirent", parent_id)
