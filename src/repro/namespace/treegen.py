"""Synthetic directory-tree generation for experiments.

The paper's benchmarks pre-create directory trees ("an existing
directory tree", §5.3) and then run operations against random files.
:func:`generate_tree` builds such a tree deterministically and returns
the file/directory path lists so workloads can sample targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class TreeSpec:
    """Shape of a generated namespace.

    ``depth`` levels of directories, ``dirs_per_dir`` fanout, and
    ``files_per_dir`` files in each leaf-most directory level.
    """

    depth: int = 3
    dirs_per_dir: int = 4
    files_per_dir: int = 8
    root: str = "/bench"
    seed: int = 0


@dataclass
class GeneratedTree:
    """Paths produced by :func:`generate_tree`."""

    directories: List[str] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    def sample_files(self, rng: random.Random, count: int) -> List[str]:
        """``count`` file paths sampled uniformly with replacement."""
        return [rng.choice(self.files) for _ in range(count)]

    def sample_directories(self, rng: random.Random, count: int) -> List[str]:
        return [rng.choice(self.directories) for _ in range(count)]


def generate_tree(spec: TreeSpec) -> GeneratedTree:
    """Generate directory and file paths for ``spec`` (no I/O).

    Directories at every level receive files, so caches see both
    shallow and deep paths; the result is deterministic in ``spec``.
    """
    tree = GeneratedTree()
    tree.directories.append(spec.root)

    def expand(path: str, level: int) -> None:
        for file_index in range(spec.files_per_dir):
            tree.files.append(f"{path}/f{level}_{file_index}")
        if level >= spec.depth:
            return
        for dir_index in range(spec.dirs_per_dir):
            child = f"{path}/d{level}_{dir_index}"
            tree.directories.append(child)
            expand(child, level + 1)

    expand(spec.root, 0)
    return tree


def flat_directory(root: str, file_count: int, prefix: str = "f") -> GeneratedTree:
    """A single directory holding ``file_count`` files.

    Used by the subtree-operation experiments (Table 3), which move
    directories of 2^18..2^20 files.
    """
    tree = GeneratedTree()
    tree.directories.append(root)
    tree.files = [f"{root}/{prefix}{index}" for index in range(file_count)]
    return tree
