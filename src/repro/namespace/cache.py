"""Trie-backed metadata cache with prefix invalidation (§3.3, App. D).

λFS NameNodes cache the metadata of *every* INode along a resolved
path, stored in an in-memory trie.  The trie shape makes subtree
(prefix) invalidations cheap: invalidating "/foo" prunes one subtree
node instead of touching each cached descendant individually.

Capacity is bounded: when the number of cached INodes exceeds
``capacity`` the least-recently-used *leaves* are evicted, which is
how the "reduced-cache λFS" configuration of §5.2.3 is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

from repro.namespace.inode import INode
from repro.namespace.paths import components, normalize


@dataclass
class CacheStats:
    """Hit/miss/invalidations counters for one cache.

    This is the *single* source of truth for cache accounting: the
    NameNode request handlers call :meth:`record_lookup` at their
    hit/miss decision points, and every downstream consumer
    (``MetricsRecorder.cache_hit_ratio``, telemetry gauges, reports)
    reads from here instead of keeping parallel counters.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_lookup(self, hit: bool) -> None:
        """Count one request-level cache decision (hit or miss)."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Add ``other``'s counters into this one (for fleet rollups)."""
        self.hits += other.hits
        self.misses += other.misses
        self.insertions += other.insertions
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        return self

    @staticmethod
    def aggregate(stats: "Iterable[CacheStats]") -> "CacheStats":
        """A fresh CacheStats summing every element of ``stats``."""
        total = CacheStats()
        for item in stats:
            total.merge(item)
        return total


class _TrieNode:
    __slots__ = ("name", "inode", "children", "parent", "last_used")

    def __init__(self, name: str, parent: Optional["_TrieNode"]) -> None:
        self.name = name
        self.inode: Optional[INode] = None
        self.children: Dict[str, "_TrieNode"] = {}
        self.parent = parent
        self.last_used = 0.0


class MetadataCache:
    """An LRU-bounded path trie of INode snapshots."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._root = _TrieNode("", None)
        self._size = 0
        self._clock = 0.0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return self._size

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    # -- lookups -------------------------------------------------------
    def get(self, path: str) -> Optional[INode]:
        """The cached INode for ``path``, or None on a miss."""
        node = self._find(path)
        if node is None or node.inode is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(node)
        return node.inode

    def get_path_prefix(self, path: str) -> Dict[str, INode]:
        """All cached INodes along ``path``, keyed by their path.

        Used for path resolution: the NameNode only needs to fetch the
        suffix that is missing from the cache.
        """
        found: Dict[str, INode] = {}
        node = self._root
        current = ""
        if node.inode is not None:
            found["/"] = node.inode
        for part in components(path):
            node = node.children.get(part)
            if node is None:
                break
            current = f"{current}/{part}"
            if node.inode is not None:
                found[current] = node.inode
                self._touch(node)
        return found

    def peek(self, path: str) -> Optional[INode]:
        """The cached INode without touching stats or LRU order.

        Used by the resilience stale-snapshot hook, which inspects an
        entry at invalidation time — not a lookup, so it must not
        perturb hit ratios or eviction behaviour.
        """
        node = self._find(path)
        return node.inode if node is not None else None

    def __contains__(self, path: str) -> bool:
        node = self._find(path)
        return node is not None and node.inode is not None

    # -- mutation ------------------------------------------------------
    def put(self, path: str, inode: INode) -> None:
        """Insert or refresh the cached INode for ``path``."""
        parts = components(path)
        node = self._root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                child = _TrieNode(part, node)
                node.children[part] = child
            node = child
        if node.inode is None:
            self._size += 1
            self.stats.insertions += 1
        node.inode = inode
        self._touch(node)
        self._evict_if_needed()

    def invalidate(self, path: str) -> int:
        """Drop the single entry for ``path``; returns entries removed."""
        node = self._find(path)
        if node is None or node.inode is None:
            return 0
        node.inode = None
        self._size -= 1
        self.stats.invalidations += 1
        self._prune(node)
        return 1

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop ``prefix`` and everything beneath it (subtree INV).

        This is the trie-powered prefix invalidation from Appendix D:
        the whole subtree is detached in one step.
        """
        normalized = normalize(prefix)
        if normalized == "/":
            removed = self._size
            self._root = _TrieNode("", None)
            self._size = 0
            self.stats.invalidations += removed
            return removed
        node = self._find(normalized)
        if node is None:
            return 0
        removed = self._count_entries(node)
        parent = node.parent
        if parent is not None:
            del parent.children[node.name]
            self._prune(parent)
        self._size -= removed
        self.stats.invalidations += removed
        return removed

    def clear(self) -> None:
        """Drop everything (used when an instance restarts cold)."""
        self._root = _TrieNode("", None)
        self._size = 0

    # -- iteration -------------------------------------------------------
    def paths(self) -> Iterator[str]:
        """Yield every cached path (for tests and debugging)."""

        def walk(node: _TrieNode, path: str) -> Iterator[str]:
            if node.inode is not None:
                yield path or "/"
            for name, child in node.children.items():
                yield from walk(child, f"{path}/{name}")

        yield from walk(self._root, "")

    # -- internals -------------------------------------------------------
    def _find(self, path: str) -> Optional[_TrieNode]:
        node = self._root
        for part in components(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def _touch(self, node: _TrieNode) -> None:
        node.last_used = self._tick()

    def _count_entries(self, node: _TrieNode) -> int:
        total = 1 if node.inode is not None else 0
        for child in node.children.values():
            total += self._count_entries(child)
        return total

    def _prune(self, node: _TrieNode) -> None:
        """Remove empty trie branches bottom-up."""
        while (
            node.parent is not None
            and node.inode is None
            and not node.children
        ):
            parent = node.parent
            del parent.children[node.name]
            node = parent

    def _evict_if_needed(self) -> None:
        while self._size > self.capacity:
            victim = self._lru_leaf()
            if victim is None:
                return
            victim.inode = None
            self._size -= 1
            self.stats.evictions += 1
            self._prune(victim)

    def _lru_leaf(self) -> Optional[_TrieNode]:
        """The least-recently-used node holding an entry.

        Walking the whole trie is O(size); capacities in experiments
        are small enough that this stays off the critical path, and it
        keeps eviction correct under prefix invalidations without a
        separate intrusive list.
        """
        best: Optional[_TrieNode] = None
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.inode is not None and (
                best is None or node.last_used < best.last_used
            ):
                best = node
            stack.extend(node.children.values())
        return best
