"""Path manipulation helpers (POSIX-style absolute paths)."""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple


@lru_cache(maxsize=65_536)
def normalize(path: str) -> str:
    """Normalize ``path`` to a canonical absolute form.

    Collapses repeated slashes and trailing slashes; the root is "/".
    Relative paths are rejected because DFS clients always issue
    absolute paths.  Memoized: normalization is pure and the same hot
    paths are normalized millions of times in large experiments.
    """
    if not path or not path.startswith("/"):
        raise ValueError(f"path must be absolute, got {path!r}")
    parts = [part for part in path.split("/") if part]
    for part in parts:
        if part in (".", ".."):
            raise ValueError(f"path must not contain {part!r}: {path!r}")
    return "/" + "/".join(parts)


def components(path: str) -> List[str]:
    """Split a normalized path into its components (root excluded)."""
    normalized = normalize(path)
    if normalized == "/":
        return []
    return normalized[1:].split("/")


def split(path: str) -> Tuple[str, str]:
    """Return ``(parent, name)`` of ``path``; the root has no name."""
    normalized = normalize(path)
    if normalized == "/":
        raise ValueError("the root directory has no parent")
    parent, _, name = normalized.rpartition("/")
    return (parent or "/", name)


def parent_of(path: str) -> str:
    """The parent directory of ``path``."""
    return split(path)[0]


def join(parent: str, name: str) -> str:
    """Join a parent path and a child name."""
    base = normalize(parent)
    if "/" in name or not name:
        raise ValueError(f"invalid child name {name!r}")
    if base == "/":
        return "/" + name
    return f"{base}/{name}"


def is_descendant(path: str, ancestor: str) -> bool:
    """True if ``path`` equals or lies beneath ``ancestor``."""
    child = normalize(path)
    root = normalize(ancestor)
    if root == "/":
        return True
    return child == root or child.startswith(root + "/")
