"""A LevelDB-like SSTable store for the IndexFS/λIndexFS port (§4).

Vanilla IndexFS packs metadata into LevelDB SSTables; the λFS port
keeps LevelDB only as the persistent metadata store.  The model here
captures LevelDB's characteristic behaviours that matter for the
Figure 16 experiment:

* writes are cheap (WAL append + memtable insert);
* reads get slower as immutable runs accumulate (each run may need
  to be searched) until compaction merges them;
* flush and compaction run in the background but occupy the store's
  I/O capacity, which throttles foreground work during bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim import Environment, Resource


@dataclass(frozen=True)
class SSTableConfig:
    io_threads: int = 4
    write_service_ms: float = 0.08
    read_service_ms: float = 0.12
    per_run_penalty_ms: float = 0.05
    flush_threshold: int = 4096
    max_runs: int = 6
    flush_ms_per_1k_entries: float = 3.0
    compact_ms_per_1k_entries: float = 6.0


@dataclass
class SSTableStats:
    puts: int = 0
    gets: int = 0
    flushes: int = 0
    compactions: int = 0
    runs_searched: int = 0


class SSTableStore:
    """One LevelDB instance."""

    _TOMBSTONE = object()

    def __init__(self, env: Environment, config: Optional[SSTableConfig] = None) -> None:
        self.env = env
        self.config = config or SSTableConfig()
        self._memtable: Dict[Any, Any] = {}
        self._runs: List[Dict[Any, Any]] = []
        self._io = Resource(env, capacity=self.config.io_threads)
        self._flushing = False
        self.stats = SSTableStats()

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def load_bulk(self, items: Dict[Any, Any]) -> None:
        """Install rows instantly as a single compacted run (setup)."""
        self._runs.insert(0, dict(items))

    # -- foreground operations -----------------------------------------
    def put(self, key: Any, value: Any) -> Generator:
        """WAL append + memtable insert."""
        with self._io.request() as slot:
            yield slot
            yield self.env.timeout(self.config.write_service_ms)
        self._memtable[key] = value
        self.stats.puts += 1
        self._maybe_flush()

    def delete(self, key: Any) -> Generator:
        yield from self.put(key, self._TOMBSTONE)

    def get(self, key: Any) -> Generator:
        """Search memtable then runs newest-to-oldest."""
        searched = 0
        value = self._memtable.get(key, _MISSING)
        if value is _MISSING:
            for run in self._runs:
                searched += 1
                value = run.get(key, _MISSING)
                if value is not _MISSING:
                    break
        cost = self.config.read_service_ms + searched * self.config.per_run_penalty_ms
        with self._io.request() as slot:
            yield slot
            yield self.env.timeout(cost)
        self.stats.gets += 1
        self.stats.runs_searched += searched
        if value is _MISSING or value is self._TOMBSTONE:
            return None
        return value

    def scan_prefix(self, prefix: Tuple) -> Generator:
        """All live rows whose key[:-1] == prefix (merged over runs)."""
        merged: Dict[Any, Any] = {}
        for run in reversed(self._runs):
            for key, value in run.items():
                if isinstance(key, tuple) and key[:-1] == prefix:
                    merged[key] = value
        for key, value in self._memtable.items():
            if isinstance(key, tuple) and key[:-1] == prefix:
                merged[key] = value
        cost = self.config.read_service_ms * (1 + len(self._runs))
        with self._io.request() as slot:
            yield slot
            yield self.env.timeout(cost)
        return {
            key: value
            for key, value in merged.items()
            if value is not self._TOMBSTONE
        }

    # -- background maintenance -------------------------------------------
    def _maybe_flush(self) -> None:
        if self._flushing or len(self._memtable) < self.config.flush_threshold:
            return
        self._flushing = True
        self.env.process(self._flush())

    def _flush(self) -> Generator:
        frozen, self._memtable = self._memtable, {}
        cost = self.config.flush_ms_per_1k_entries * max(1, len(frozen)) / 1000.0
        with self._io.request() as slot:
            yield slot
            yield self.env.timeout(cost)
        self._runs.insert(0, frozen)
        self.stats.flushes += 1
        self._flushing = False
        if len(self._runs) > self.config.max_runs:
            yield from self._compact()

    def _compact(self) -> Generator:
        victims = self._runs
        total = sum(len(run) for run in victims)
        cost = self.config.compact_ms_per_1k_entries * max(1, total) / 1000.0
        with self._io.request() as slot:
            yield slot
            yield self.env.timeout(cost)
        merged: Dict[Any, Any] = {}
        for run in reversed(victims):
            merged.update(run)
        live = {k: v for k, v in merged.items() if v is not self._TOMBSTONE}
        # Runs flushed while compacting stay newer than the merged run.
        self._runs = self._runs[: len(self._runs) - len(victims)] + [live]
        self.stats.compactions += 1


_MISSING = object()
