"""A shared/exclusive row-lock manager with FIFO fairness.

Grant rules follow classic strict two-phase locking:

* any number of holders may share a key in ``SHARED`` mode;
* ``EXCLUSIVE`` requires sole ownership;
* a lone ``SHARED`` holder may upgrade to ``EXCLUSIVE`` in place;
* waiters are served FIFO, except that compatible ``SHARED`` waiters
  are granted in batches, which prevents writer starvation without
  serializing readers.

Deadlock handling is by timeout: a request that waits longer than its
budget fails with :class:`~repro.metastore.errors.LockTimeout` (callers
also keep deadlocks rare by locking keys in a canonical order, the
same discipline HopsFS uses for its subtree protocol).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Optional

from repro.metastore.errors import LockTimeout
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class _LockRequest(Event):
    __slots__ = ("owner", "mode")

    def __init__(self, env: "Environment", owner: Any, mode: LockMode) -> None:
        super().__init__(env)
        self.owner = owner
        self.mode = mode


class _KeyLock:
    __slots__ = ("holders", "queue", "exclusive_holder")

    def __init__(self) -> None:
        # owner -> mode currently held
        self.holders: Dict[Any, LockMode] = {}
        self.queue: Deque[_LockRequest] = deque()
        # At most one exclusive holder can exist; tracking it directly
        # keeps grant checks O(1) even with hundreds of sharers on a
        # hot ancestor row.
        self.exclusive_holder: Any = None

    @property
    def exclusive_held(self) -> bool:
        return self.exclusive_holder is not None

    def grant(self, owner: Any, mode: LockMode) -> None:
        self.holders[owner] = mode
        if mode is LockMode.EXCLUSIVE:
            self.exclusive_holder = owner

    def revoke(self, owner: Any) -> None:
        del self.holders[owner]
        if self.exclusive_holder == owner:
            self.exclusive_holder = None


class LockManager:
    """Row locks keyed by arbitrary hashable keys."""

    def __init__(self, env: "Environment", default_timeout_ms: float = 10_000.0) -> None:
        self.env = env
        self.default_timeout_ms = default_timeout_ms
        self._locks: Dict[Any, _KeyLock] = {}
        if env.metrics is not None:
            env.metrics.register_gauge(
                "lock_queue_depth",
                lambda locks=self._locks: float(
                    sum(len(lock.queue) for lock in locks.values())
                ),
                help="Total transactions parked waiting for row locks",
            )

    def holders(self, key: Any) -> Dict[Any, LockMode]:
        """Snapshot of current holders for ``key`` (for tests)."""
        lock = self._locks.get(key)
        return dict(lock.holders) if lock else {}

    def queue_length(self, key: Any) -> int:
        lock = self._locks.get(key)
        return len(lock.queue) if lock else 0

    def acquire(self, owner: Any, key: Any, mode: LockMode, timeout_ms: Optional[float] = None):
        """Generator: acquire ``key`` in ``mode`` for ``owner``.

        Raises :class:`LockTimeout` if not granted within the budget.
        """
        budget = self.default_timeout_ms if timeout_ms is None else timeout_ms
        lock = self._locks.setdefault(key, _KeyLock())
        env = self.env
        # One env.instrumented read covers tracer + metrics on the
        # hottest lock path (every row access comes through here).
        if env.instrumented:
            tracer = env.tracer
            metrics = env.metrics
        else:
            tracer = None
            metrics = None

        held = lock.holders.get(owner)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return  # already strong enough
            if len(lock.holders) == 1:
                # Lone holder: upgrade in place.
                lock.grant(owner, LockMode.EXCLUSIVE)
                if tracer is not None:
                    tracer.point("lock.acquire", repr(owner), key=repr(key),
                                 mode="exclusive", upgrade=True,
                                 epoch=getattr(owner, "_lock_epoch", None))
                return
            # Upgrade with other sharers present: holding the shared
            # lock while waiting would deadlock against a concurrent
            # upgrader, so release and requeue for exclusive (the
            # caller must treat previously read values as stale).
            lock.revoke(owner)
            if tracer is not None:
                tracer.point("lock.release", repr(owner), key=repr(key),
                             upgrade_requeue=True)
            self._grant_waiters(key, lock)
            lock = self._locks.setdefault(key, _KeyLock())

        if self._grantable(lock, owner, mode) and not lock.queue:
            lock.grant(owner, mode)
            if tracer is not None:
                tracer.point("lock.acquire", repr(owner), key=repr(key),
                             mode=mode.value,
                             epoch=getattr(owner, "_lock_epoch", None))
            return

        if budget <= 0.0:
            # Deadline-capped callers can arrive with no wait budget
            # left; fail fast without enqueuing (no events, no timer —
            # detached runs never reach here, so hashes are safe).
            if metrics is not None:
                metrics.inc("lock_waits_total", mode=mode.value)
                metrics.inc("lock_wait_timeouts_total")
            if tracer is not None:
                tracer.point("lock.wait_timeout", repr(owner), key=repr(key),
                             budget_ms=budget)
            raise LockTimeout(f"lock wait on {key!r} exceeded {budget} ms")

        wait_span = None
        if tracer is not None:
            # A *span*, not a point: its duration is the lock-wait
            # stage on the critical path (begin at enqueue, end at
            # grant or timeout).  The discipline checker consumes the
            # begin edge exactly like the old point.
            wait_span = tracer.begin(
                "lock.wait", repr(owner),
                parent=getattr(owner, "_trace_span", None),
                key=repr(key), mode=mode.value,
                epoch=getattr(owner, "_lock_epoch", None),
            )
        if metrics is not None:
            metrics.inc("lock_waits_total", mode=mode.value)
        wait_started = self.env.now
        request = _LockRequest(self.env, owner, mode)
        lock.queue.append(request)
        timer = self.env.timeout(budget)
        result = yield request | timer
        if metrics is not None:
            metrics.observe("lock_wait_ms", self.env.now - wait_started)
        if request not in result:
            try:
                lock.queue.remove(request)
            except ValueError:
                pass
            if metrics is not None:
                metrics.inc("lock_wait_timeouts_total")
            if tracer is not None:
                tracer.end(wait_span, granted=False, budget_ms=budget)
                tracer.point("lock.wait_timeout", repr(owner), key=repr(key),
                             budget_ms=budget)
            raise LockTimeout(f"lock wait on {key!r} exceeded {budget} ms")
        if tracer is not None:
            tracer.end(wait_span, granted=True)
        return

    def release(self, owner: Any, key: Any) -> None:
        """Release ``owner``'s lock on ``key`` (no-op if not held)."""
        lock = self._locks.get(key)
        if lock is None or owner not in lock.holders:
            return
        lock.revoke(owner)
        tracer = self.env.tracer if self.env.instrumented else None
        if tracer is not None:
            tracer.point("lock.release", repr(owner), key=repr(key))
        self._grant_waiters(key, lock)

    def release_all(self, owner: Any, keys) -> None:
        for key in keys:
            self.release(owner, key)

    # -- internals -----------------------------------------------------
    def _grantable(self, lock: _KeyLock, owner: Any, mode: LockMode) -> bool:
        if mode is LockMode.SHARED:
            exclusive = lock.exclusive_holder
            return exclusive is None or exclusive == owner
        if not lock.holders:
            return True
        return len(lock.holders) == 1 and owner in lock.holders

    def _grant_waiters(self, key: Any, lock: _KeyLock) -> None:
        tracer = self.env.tracer if self.env.instrumented else None
        granted_any = True
        while granted_any and lock.queue:
            granted_any = False
            head = lock.queue[0]
            if head.triggered:
                lock.queue.popleft()
                granted_any = True
                continue
            if self._grantable(lock, head.owner, head.mode):
                lock.queue.popleft()
                lock.grant(head.owner, head.mode)
                if tracer is not None:
                    tracer.point("lock.acquire", repr(head.owner),
                                 key=repr(key), mode=head.mode.value,
                                 epoch=getattr(head.owner, "_lock_epoch", None))
                head.succeed()
                granted_any = True
                # Batch-grant further compatible shared requests.
                if head.mode is LockMode.SHARED:
                    remaining = deque()
                    for request in lock.queue:
                        if request.triggered:
                            continue
                        if request.mode is LockMode.SHARED:
                            lock.grant(request.owner, LockMode.SHARED)
                            if tracer is not None:
                                tracer.point("lock.acquire",
                                             repr(request.owner),
                                             key=repr(key), mode="shared",
                                             epoch=getattr(request.owner,
                                                           "_lock_epoch", None))
                            request.succeed()
                        else:
                            remaining.append(request)
                    lock.queue = remaining
        if not lock.holders and not lock.queue:
            self._locks.pop(key, None)
