"""Persistent metadata stores.

* :class:`NdbStore` — a MySQL-Cluster-NDB-like store: sharded,
  transactional (two-phase locking with shared/exclusive row locks),
  with a finite per-shard service capacity that makes it a realistic
  bottleneck under write-heavy or cache-less load.
* :class:`SSTableStore` — a LevelDB-like store (memtable + sorted
  runs) used by the IndexFS/λIndexFS port.

Both are driven by the DES: every operation that costs time is a
generator to be ``yield from``-ed inside a simulation process.
"""

from repro.metastore.errors import (
    LockTimeout,
    StoreError,
    TransactionAborted,
)
from repro.metastore.locks import LockManager, LockMode
from repro.metastore.ndb import NdbConfig, NdbStore, Transaction
from repro.metastore.sstable import SSTableConfig, SSTableStore

__all__ = [
    "LockManager",
    "LockMode",
    "LockTimeout",
    "NdbConfig",
    "NdbStore",
    "SSTableConfig",
    "SSTableStore",
    "StoreError",
    "Transaction",
    "TransactionAborted",
]
