"""A MySQL-Cluster-NDB-like persistent metadata store.

The store is sharded; each shard has a finite pool of worker threads
(a :class:`~repro.sim.Resource`) and a per-row service time, so the
store saturates realistically: cache-less systems (HopsFS) hit its
read ceiling and every system hits its write ceiling — the effects
the paper's evaluation leans on (§5.3: "the persistent metadata store
quickly becomes a bottleneck").

Transactions provide strict two-phase locking over row keys, ACID
apply-at-commit semantics, and NDB-style lock-wait timeouts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Set, Tuple

from repro._util import stable_hash
from repro.metastore.errors import TransactionAborted
from repro.metastore.locks import LockManager, LockMode
from repro.rpc.retry import RetryPolicy
from repro.sim import Environment, Resource


@dataclass(frozen=True)
class NdbConfig:
    """Capacity and latency knobs for the store.

    Defaults approximate the paper's 4-data-node NDB deployment,
    scaled to simulation units (milliseconds).
    """

    shards: int = 4
    workers_per_shard: int = 8
    read_service_ms: float = 0.30
    write_service_ms: float = 1.30
    commit_service_ms: float = 0.50
    rtt_ms: float = 0.5
    lock_timeout_ms: float = 2_000.0
    batch_row_discount: float = 0.25
    """Extra rows in one batched query cost this fraction of a full row
    (models NDB batched primary-key reads; §2's single batch query)."""


@dataclass
class NdbStats:
    """Aggregate counters, including busy-time for utilization."""

    reads: int = 0
    rows_read: int = 0
    writes: int = 0
    commits: int = 0
    aborts: int = 0
    scans: int = 0
    busy_ms: float = 0.0


class NdbStore:
    """The sharded transactional store."""

    def __init__(
        self,
        env: Environment,
        config: Optional[NdbConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.config = config or NdbConfig()
        # Jitter stream for transaction-retry backoff; callers (e.g.
        # LambdaFS) pass a named RngStreams stream for reproducibility.
        self._retry_rng = rng if rng is not None else random.Random(0)
        self._data: Dict[Any, Any] = {}
        self._prefix_index: Dict[Any, Set[Any]] = {}
        self.locks = LockManager(env, self.config.lock_timeout_ms)
        self._shards: List[Resource] = [
            Resource(env, capacity=self.config.workers_per_shard)
            for _ in range(self.config.shards)
        ]
        self._txn_ids = count(1)
        self.stats = NdbStats()
        #: Optional :class:`~repro.resilience.ResilienceManager`; when
        #: attached, shard accesses report latency to per-shard circuit
        #: breakers and transactions honor request deadlines.
        self.resilience = None
        if env.metrics is not None:
            self._register_gauges(env.metrics)

    def _register_gauges(self, metrics: Any) -> None:
        """Expose NdbStats and shard queues as sample-time callbacks."""
        stats = self.stats
        for field_name in ("reads", "rows_read", "writes", "commits",
                          "aborts", "scans", "busy_ms"):
            metrics.register_gauge(
                f"store_{field_name}",
                lambda f=field_name, s=stats: float(getattr(s, f)),
                help="NdbStats field (cumulative)",
            )
        for index, shard in enumerate(self._shards):
            metrics.register_gauge(
                "store_shard_queue_depth",
                lambda r=shard: float(r.queue_length),
                help="Requests waiting for a shard worker",
                shard=str(index),
            )

    # -- direct (non-transactional) access ------------------------------
    def peek(self, key: Any) -> Any:
        """Committed value without cost or locks (tests/bootstrap only)."""
        return self._data.get(key)

    def load_bulk(self, items: Dict[Any, Any]) -> None:
        """Install rows instantly (experiment setup, not on the clock)."""
        for key, value in items.items():
            self._apply_write(key, value)

    def keys_with_prefix(self, prefix: Tuple) -> List[Any]:
        """Committed keys whose ``key[:-1]`` equals ``prefix``."""
        return sorted(self._prefix_index.get(prefix, ()), key=repr)

    def __len__(self) -> int:
        return len(self._data)

    # -- transactions ----------------------------------------------------
    def begin(
        self,
        label: str = "",
        trace_parent=None,
        deadline_ms: Optional[float] = None,
    ) -> "Transaction":
        """Start a new transaction.

        ``deadline_ms`` is the absolute sim-time deadline of the op this
        transaction serves; lock waits are capped by the remaining
        budget so a doomed transaction fails fast instead of camping on
        rows for the full NDB lock-wait timeout.
        """
        txn = Transaction(self, next(self._txn_ids), label,
                          deadline_ms=deadline_ms)
        tracer = self.env.tracer if self.env.instrumented else None
        if tracer is not None:
            txn._trace_span = tracer.begin(
                "txn", repr(txn), parent=trace_parent, label=label
            )
        return txn

    def run_transaction(
        self,
        body: Callable[["Transaction"], Generator],
        retries: int = 8,
        backoff_ms: float = 2.0,
        backoff_cap_ms: float = 64.0,
        label: str = "",
        trace_parent=None,
        deadline_ms: Optional[float] = None,
    ) -> Generator:
        """Run ``body`` with retry-on-abort; returns the body's value.

        ``body`` is a generator function taking the transaction; it is
        retried when aborted (lock timeouts) after a full-jitter
        exponential backoff capped at ``backoff_cap_ms``: aborts come
        in storms (one timeout aborts every waiter on the row), and
        uncapped, lock-step retries would re-collide indefinitely.

        With ``deadline_ms`` set, each (re)attempt first checks the
        remaining budget and aborts permanently once it is exhausted —
        retrying a transaction whose caller has already given up only
        feeds metastable overload.
        """
        attempt = 0
        policy = RetryPolicy(
            base_ms=backoff_ms, factor=2.0, max_ms=backoff_cap_ms
        )
        while True:
            if deadline_ms is not None and self.env.now >= deadline_ms:
                raise TransactionAborted(
                    f"deadline expired before txn attempt ({label or 'txn'})"
                )
            txn = self.begin(label, trace_parent, deadline_ms=deadline_ms)
            try:
                result = yield from body(txn)
                yield from txn.commit()
                return result
            except TransactionAborted:
                txn.abort()
                attempt += 1
                if attempt > retries:
                    raise
                delay = policy.full_jitter_delay(attempt, self._retry_rng)
                tracer = self.env.tracer
                retry_span = None
                if tracer is not None:
                    retry_span = tracer.begin(
                        "txn.backoff", repr(txn), parent=trace_parent,
                        attempt=attempt, label=label, backoff_ms=delay,
                    )
                yield self.env.timeout(delay)
                if tracer is not None:
                    tracer.end(retry_span)
            except BaseException:
                # Application errors (NotFound, AlreadyExists, ...)
                # must release the transaction's locks on the way out
                # or the rows stay poisoned forever.
                txn.abort()
                raise

    # -- internals shared with Transaction ------------------------------
    def _shard_of(self, key: Any) -> Resource:
        return self._shards[stable_hash(key) % len(self._shards)]

    def _service(self, shard: Resource, service_ms: float) -> Generator:
        """One shard access: half RTT, queue for a worker, serve, half RTT."""
        res = self.resilience
        breaker = None
        if res is not None and res.active:
            breaker = res.breaker("shard", str(self._shards.index(shard)))
            if not breaker.allow(self.env.now):
                res.breaker_rejected("shard")
                raise TransactionAborted(
                    f"{breaker.name} breaker open"
                )
        started = self.env.now
        chaos = self.env.chaos if self.env.instrumented else None
        if chaos is not None:
            index = self._shards.index(shard)
            hold = chaos.store_hold_ms(index)
            if hold > 0.0:
                # Shard unavailability window: the request stalls
                # until the shard (NDB data-node failover) comes back.
                yield self.env.timeout(hold)
            service_ms = service_ms * chaos.store_factor(index)
        half_rtt = self.config.rtt_ms / 2.0
        if half_rtt:
            yield self.env.timeout(half_rtt)
        with shard.request() as slot:
            yield slot
            self.stats.busy_ms += service_ms
            yield self.env.timeout(service_ms)
        if half_rtt:
            yield self.env.timeout(half_rtt)
        if breaker is not None:
            # Brownouts (chaos slowdowns, failover holds, queueing) show
            # up as latency, so a slow completion is a failure signal to
            # the breaker even though the access ultimately succeeded.
            elapsed = self.env.now - started
            if elapsed > res.config.shard_latency_threshold_ms:
                breaker.record_failure(self.env.now)
            else:
                breaker.record_success(self.env.now)

    def _service_batch(self, keys: Iterable[Any], base_ms: float) -> Generator:
        """Access several rows as one batched request.

        NDB routes a transaction through one transaction coordinator,
        which fans out to data nodes; we model the batch as a single
        access on the coordinating shard (chosen by the first key)
        whose cost grows sub-linearly with the row count — the same
        capacity semantics with far fewer simulation events.
        """
        key_list = list(keys)
        if not key_list:
            return
        cost = base_ms * (
            1 + self.config.batch_row_discount * (len(key_list) - 1)
        )
        # The coordinating shard is picked by the whole key set, not
        # the first key: distinct batches spread across shards even
        # when they share a common prefix (e.g. the root dirent that
        # every path resolution touches).
        coordinator = self._shards[stable_hash(tuple(key_list)) % len(self._shards)]
        yield from self._service(coordinator, cost)

    def _apply_write(self, key: Any, value: Any) -> None:
        if value is _TOMBSTONE:
            self._data.pop(key, None)
            prefix = key[:-1] if isinstance(key, tuple) and len(key) > 1 else None
            if prefix is not None:
                bucket = self._prefix_index.get(prefix)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._prefix_index[prefix]
            return
        self._data[key] = value
        if isinstance(key, tuple) and len(key) > 1:
            self._prefix_index.setdefault(key[:-1], set()).add(key)


_TOMBSTONE = object()


class Transaction:
    """One ACID transaction against an :class:`NdbStore`.

    Reads take shared locks, writes take exclusive locks; staged
    writes become visible only at :meth:`commit`.  All time-costing
    methods are generators (``yield from`` them inside a process).
    """

    def __init__(
        self,
        store: NdbStore,
        txn_id: int,
        label: str = "",
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.store = store
        self.id = txn_id
        self.label = label
        self.deadline_ms = deadline_ms
        self._staged: Dict[Any, Any] = {}
        self._locked: Set[Any] = set()
        self._done = False
        self._trace_span = None
        # Canonical-order locking is promised per acquisition batch
        # (one lock_many call, or one standalone lock), not across a
        # transaction's lifetime; the epoch labels each batch so the
        # lock-discipline checker scopes its ordering rule correctly.
        self._lock_epoch = 0

    def __repr__(self) -> str:
        tag = f" {self.label}" if self.label else ""
        return f"<Txn {self.id}{tag}>"

    # -- locking ---------------------------------------------------------
    def lock(self, key: Any, exclusive: bool = False, _batched: bool = False) -> Generator:
        """Acquire a row lock (aborting this txn on timeout)."""
        self._check_open()
        if not _batched:
            self._lock_epoch += 1
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        timeout_ms = None
        if self.deadline_ms is not None:
            # Cap the lock wait by the op's remaining deadline budget:
            # once the caller would give up anyway, waiting the full
            # NDB lock-wait timeout just keeps rows poisoned longer.
            remaining = self.deadline_ms - self.store.env.now
            timeout_ms = min(self.store.config.lock_timeout_ms, remaining)
        try:
            yield from self.store.locks.acquire(
                self, key, mode, timeout_ms=timeout_ms
            )
        except TransactionAborted:
            self.abort()
            raise
        self._locked.add(key)

    def lock_many(
        self,
        keys: Iterable[Any],
        exclusive: bool = False,
        exclusive_keys: Iterable[Any] = (),
    ) -> Generator:
        """Lock several keys in canonical order (deadlock avoidance).

        ``exclusive_keys`` names keys to lock in write mode even when
        ``exclusive`` is False — callers that know they will modify a
        row take the write lock up front instead of upgrading later
        (upgrades between concurrent readers deadlock).
        """
        strong = set(exclusive_keys)
        self._lock_epoch += 1
        for key in sorted(set(keys) | strong, key=repr):
            yield from self.lock(key, exclusive or key in strong, _batched=True)

    # -- reads -------------------------------------------------------------
    def read(self, key: Any) -> Generator:
        """Read one row (shared lock + one shard access)."""
        self._check_open()
        yield from self.lock(key)
        yield from self.store._service(
            self.store._shard_of(key), self.store.config.read_service_ms
        )
        self.store.stats.reads += 1
        self.store.stats.rows_read += 1
        return self._visible(key)

    def read_many(
        self, keys: Iterable[Any], exclusive_keys: Iterable[Any] = ()
    ) -> Generator:
        """Batched multi-row read (the HopsFS "single batch query")."""
        self._check_open()
        key_list = list(keys)
        yield from self.lock_many(key_list, exclusive_keys=exclusive_keys)
        yield from self.store._service_batch(key_list, self.store.config.read_service_ms)
        self.store.stats.reads += 1
        self.store.stats.rows_read += len(key_list)
        return {key: self._visible(key) for key in key_list}

    def scan_prefix(self, prefix: Tuple) -> Generator:
        """Read every row under ``prefix`` (index scan, shared locks)."""
        self._check_open()
        keys = self.store.keys_with_prefix(prefix)
        # Include rows this txn itself staged under the prefix.
        for key in self._staged:
            if isinstance(key, tuple) and key[:-1] == prefix and key not in keys:
                keys.append(key)
        yield from self.lock_many(keys)
        yield from self.store._service_batch(keys, self.store.config.read_service_ms)
        self.store.stats.scans += 1
        self.store.stats.rows_read += len(keys)
        result = {}
        for key in keys:
            value = self._visible(key)
            if value is not None:
                result[key] = value
        return result

    # -- writes ------------------------------------------------------------
    def write(self, key: Any, value: Any) -> Generator:
        """Stage a row write (exclusive lock now, visible at commit)."""
        self._check_open()
        yield from self.lock(key, exclusive=True)
        self._staged[key] = value

    def delete(self, key: Any) -> Generator:
        """Stage a row delete."""
        self._check_open()
        yield from self.lock(key, exclusive=True)
        self._staged[key] = _TOMBSTONE

    # -- completion ----------------------------------------------------------
    def commit(self) -> Generator:
        """Apply staged writes and release all locks."""
        self._check_open()
        env = self.store.env
        instrumented = env.instrumented
        if self._staged:
            tracer = env.tracer if instrumented else None
            commit_span = None
            if tracer is not None:
                commit_span = tracer.begin(
                    "txn.commit", repr(self), parent=self._trace_span,
                    rows=len(self._staged),
                )
            yield from self.store._service_batch(
                self._staged.keys(), self.store.config.write_service_ms
            )
            yield from self.store._service(
                self.store._shard_of(("__commit__", self.id)),
                self.store.config.commit_service_ms,
            )
            if tracer is not None:
                tracer.end(commit_span)
            for key, value in self._staged.items():
                self.store._apply_write(key, value)
            self.store.stats.writes += len(self._staged)
        self.store.stats.commits += 1
        if instrumented and env.metrics is not None:
            env.metrics.inc("store_txns_total", outcome="commit")
        self._finish(committed=True)

    def abort(self) -> None:
        """Discard staged writes and release all locks (instantaneous)."""
        if self._done:
            return
        self.store.stats.aborts += 1
        env = self.store.env
        if env.instrumented and env.metrics is not None:
            env.metrics.inc("store_txns_total", outcome="abort")
        self._finish(committed=False)

    # -- internals -------------------------------------------------------------
    def _visible(self, key: Any) -> Any:
        if key in self._staged:
            value = self._staged[key]
            return None if value is _TOMBSTONE else value
        return self.store.peek(key)

    def _finish(self, committed: bool = False) -> None:
        # ``_locked`` is a set; released sorted so the wake order of
        # waiters parked on different keys never depends on the
        # per-process hash salt (lock_many acquires in the same
        # canonical order).
        self.store.locks.release_all(self, sorted(self._locked, key=repr))
        self._locked.clear()
        self._staged.clear()
        self._done = True
        env = self.store.env
        tracer = env.tracer if env.instrumented else None
        if tracer is not None:
            # txn.end comes after release_all so the lock-discipline
            # checker has seen every lock.release for this owner.
            tracer.point("txn.end", repr(self), committed=committed)
            tracer.end(self._trace_span, committed=committed)
            self._trace_span = None

    def _check_open(self) -> None:
        if self._done:
            raise TransactionAborted(f"{self!r} is already finished")
