"""Exceptions raised by the metadata stores."""


class StoreError(Exception):
    """Base class for store failures."""


class TransactionAborted(StoreError):
    """The transaction was aborted and its effects discarded."""


class LockTimeout(TransactionAborted):
    """A row lock could not be acquired within the wait budget.

    Mirrors NDB's lock-wait-timeout behaviour; the enclosing
    transaction is aborted and the caller is expected to retry.
    """
