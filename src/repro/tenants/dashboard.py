"""Per-tenant ascii dashboard (``repro tenants``).

One sparkline block per tenant — interval throughput, interval p99 —
plus the cross-tenant fairness section: the Jain-index timeline and
the summary table from :func:`repro.tenants.fairness.summarize`.
Read-only over the sampled time-series, like the fleet dashboard in
:mod:`repro.telemetry.dashboard`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.metrics.ascii_plot import sparkline
from repro.tenants.fairness import (
    FairnessReport,
    interval_ops,
    p99_timeline,
    summarize,
    tenant_names,
)


def _resample(values: Sequence[float], width: int) -> List[float]:
    if len(values) <= width:
        return list(values)
    step = len(values) / width
    return [values[int(i * step)] for i in range(width)]


def _row(label: str, points: Sequence[Tuple[float, float]], width: int,
         fmt: str = "{:,.0f}") -> str:
    values = [v for _, v in points]
    spark = sparkline(_resample(values, width))
    # Summary stats over finite samples only: an empty p99 window
    # yields NaN, which must not poison min/max.
    finite = [v for v in values if math.isfinite(v)]
    low = min(finite) if finite else 0.0
    high = max(finite) if finite else 0.0
    last = values[-1] if values else 0.0
    last_text = fmt.format(last) if math.isfinite(last) else str(last)
    return (f"    {label:<14s} {spark}  "
            f"min {fmt.format(low)}  max {fmt.format(high)}  "
            f"last {last_text}")


def render_tenant_dashboard(
    timeseries,
    specs: Optional[Sequence] = None,
    width: int = 48,
    report: Optional[FairnessReport] = None,
) -> str:
    """The multi-tenant run at a glance."""
    names = tenant_names(timeseries)
    if not names:
        return "tenant dashboard: no tenant-labelled series sampled"
    if report is None:
        report = summarize(timeseries, specs)
    interval_ms = 0.0
    times = timeseries.times()
    if len(times) >= 2:
        interval_ms = (times[-1] - times[0]) / (len(times) - 1)
    lines: List[str] = [
        f"tenants ({len(names)}), {len(timeseries.samples)} samples "
        f"@ ~{interval_ms:.0f} ms"
    ]
    ops_rows = interval_ops(timeseries, names)
    for name in names:
        lines.append(f"  {name}")
        per_interval = [(t, row[name]) for t, row in ops_rows]
        lines.append(_row("ops/interval", per_interval, width))
        p99 = p99_timeline(timeseries, [name])
        finite = [(t, v) for t, v in p99 if v != float("inf")]
        if finite:
            lines.append(_row("p99 ms", finite, width, fmt="{:,.1f}"))
    lines.append("  fairness (Jain index per interval)")
    lines.append(_row("jain", report.timeline, width, fmt="{:.3f}"))
    lines.append("")
    lines.append(report.render())
    return "\n".join(lines)
