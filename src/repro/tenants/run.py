"""The reusable multi-tenant run driver behind ``repro tenants``.

One :func:`run_tenants` call builds a traced + telemetered λFS over
the merged tenant namespaces, tags each tenant's client fleet, drives
every tenant's closed-loop workload for a fixed duration, and folds
the sampled per-tenant series into a
:class:`~repro.tenants.fairness.FairnessReport`.  The result carries
everything the CLI / tests need: per-tenant counts, the report, the
raw timeseries and registry, the kernel event hash, and (optionally)
a per-tenant critical-path profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.sim import Environment
from repro.tenants.context import TenantGovernor, TenantSpec, default_tenants
from repro.tenants.fairness import FairnessReport, summarize
from repro.tenants.telemetry import install_tenant_telemetry

if TYPE_CHECKING:  # import-time cycle; the name is for annotations only
    from repro.workloads.multitenant import TenantCounts


@dataclass(frozen=True)
class TenantRunConfig:
    """Shape of one multi-tenant run."""

    seed: int = 0
    duration_ms: float = 10_000.0
    deployments: int = 4
    vcpus: float = 512.0
    instances_per_deployment: int = 2
    telemetry_interval_ms: float = 250.0
    governed: bool = False
    """Attach a :class:`TenantGovernor` (QoS rate caps).  Off by
    default: a compliant cast never hits its budget, so the governor
    only matters when composing with chaos floods."""
    governor_headroom: float = 2.0
    governor_burst_ms: float = 250.0
    profile: bool = False
    """Also attribute every op's critical path (slower; enables the
    per-tenant stage breakdown)."""


@dataclass
class TenantRunResult:
    """Everything one multi-tenant run produced."""

    specs: Tuple[TenantSpec, ...]
    counts: Dict[str, TenantCounts]
    report: FairnessReport
    timeseries: object
    registry: object
    tracer: object
    event_hash: str
    duration_ms: float
    profile: Optional[object] = None
    throttled: Dict[str, int] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return sum(c.issued for c in self.counts.values())


def run_tenants(
    specs: Optional[Sequence[TenantSpec]] = None,
    config: Optional[TenantRunConfig] = None,
) -> TenantRunResult:
    """Drive ``specs`` (default: :func:`default_tenants`) for
    ``config.duration_ms`` and summarize fairness/QoS."""
    # Imported here: the harness pulls in repro.workloads, whose
    # package init imports the multitenant driver, which needs this
    # package — a cycle at import time but not at call time.
    from repro.bench.harness import build_lambdafs, drive
    from repro.workloads.multitenant import MultiTenantWorkload

    specs = tuple(specs) if specs is not None else default_tenants()
    config = config or TenantRunConfig()
    env = Environment()
    workload = MultiTenantWorkload(env, specs, seed=config.seed)
    handle = build_lambdafs(
        env,
        workload.namespace(),
        vcpus=config.vcpus,
        deployments=config.deployments,
        seed=config.seed,
        trace=True,
        telemetry=True,
        telemetry_interval_ms=config.telemetry_interval_ms,
    )
    install_tenant_telemetry(env.metrics, [spec.name for spec in specs])
    governor = None
    if config.governed:
        governor = TenantGovernor.for_tenants(
            env, specs,
            headroom=config.governor_headroom,
            burst_ms=config.governor_burst_ms,
        )
        workload.governor = governor
    drive(env, handle.system.prewarm(config.instances_per_deployment))
    clients = handle.make_clients(workload.total_clients())
    fleets = workload.partition_clients(clients)
    drive(env, workload.run(fleets, config.duration_ms))
    if handle.telemetry is not None:
        handle.telemetry.stop()
    timeseries = handle.telemetry.timeseries
    report = summarize(timeseries, specs=specs)
    profile = None
    if config.profile:
        from repro.profile.critical_path import analyze_trace

        profile = analyze_trace(handle.tracer)
    return TenantRunResult(
        specs=specs,
        counts=workload.counts,
        report=report,
        timeseries=timeseries,
        registry=env.metrics,
        tracer=handle.tracer,
        event_hash=handle.tracer.event_hash(),
        duration_ms=env.now,
        profile=profile,
        throttled=dict(governor.throttled) if governor is not None else {},
    )
