"""Fairness and QoS analysis over per-tenant telemetry.

Pure read-side math over a sampled
:class:`~repro.telemetry.sampler.TimeSeries`: Jain's fairness index
over per-tenant interval throughput, per-interval tenant latency
quantiles reconstructed from the cumulative bucket-count series
(:mod:`repro.tenants.telemetry`), and SLO burn rates.  The chaos
verifier's fairness gate and the ``repro tenants`` dashboard both
consume these helpers; nothing here touches the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.tenants.telemetry import INF_LABEL
from repro.telemetry.registry import parse_series_key


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``, in ``(0, 1]``.

    1.0 means perfectly even shares; a single tenant hogging
    everything among *n* drives it to ``1/n``.  An empty or all-zero
    allocation is vacuously fair (1.0).  Negative shares are invalid.
    """
    if any(v < 0 for v in values):
        raise ValueError("shares must be non-negative")
    largest = max(values, default=0.0)
    if not values or largest == 0:
        return 1.0
    # Normalise by the largest share first: squaring raw denormals
    # underflows to 0 (and huge shares overflow to inf), which would
    # poison the ratio even though the index is scale-invariant.
    scaled = [v / largest for v in values]
    total = sum(scaled)
    squares = sum(v * v for v in scaled)
    return (total * total) / (len(scaled) * squares)


def tenant_names(timeseries) -> List[str]:
    """Tenants that emitted ops into this time-series, sorted."""
    names = set()
    for key in timeseries.series_matching("tenant_ops_total"):
        label = parse_series_key(key)[1].get("tenant")
        if label:
            names.add(label)
    return sorted(names)


def _tenant_delta_rows(
    timeseries, family: str, tenants: Sequence[str]
) -> List[Tuple[float, Dict[str, float]]]:
    """Per-sample interval deltas of ``family`` summed per tenant."""
    by_key = timeseries.series_matching(family)
    wanted = set(tenants)
    per_tenant: Dict[str, List[List[float]]] = {t: [] for t in tenants}
    for key, points in by_key.items():
        tenant = parse_series_key(key)[1].get("tenant")
        if tenant in wanted:
            per_tenant[tenant].append([v for _t, v in points])
    rows: List[Tuple[float, Dict[str, float]]] = []
    previous = {t: 0.0 for t in tenants}
    for index, (t_ms, _values) in enumerate(timeseries.samples):
        row: Dict[str, float] = {}
        for tenant in tenants:
            total = sum(series[index] for series in per_tenant[tenant])
            row[tenant] = max(0.0, total - previous[tenant])
            previous[tenant] = total
        rows.append((t_ms, row))
    return rows


def interval_ops(
    timeseries, tenants: Optional[Sequence[str]] = None
) -> List[Tuple[float, Dict[str, float]]]:
    """(sample time, {tenant: ops completed that interval})."""
    if tenants is None:
        tenants = tenant_names(timeseries)
    return _tenant_delta_rows(timeseries, "tenant_ops_total", tenants)


def jain_timeline(
    timeseries,
    tenants: Optional[Sequence[str]] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> List[Tuple[float, float]]:
    """Per-interval Jain index over tenant throughput.

    Intervals where nobody completed an op are skipped.  With
    ``weights``, each tenant's share is normalized by its fair-share
    weight first, so a 2×-weight tenant doing 2× the ops still scores
    1.0.
    """
    out: List[Tuple[float, float]] = []
    for t_ms, row in interval_ops(timeseries, tenants):
        if sum(row.values()) <= 0:
            continue
        shares = [
            ops / (weights.get(tenant, 1.0) if weights else 1.0)
            for tenant, ops in sorted(row.items())
        ]
        out.append((t_ms, jain_index(shares)))
    return out


# -- interval latency quantiles from bucket series ----------------------

def _bucket_bounds(timeseries, tenant: str) -> List[str]:
    """The ``le`` labels present for ``tenant``, sorted numerically."""
    bounds = set()
    for key in timeseries.series_matching("tenant_latency_bucket"):
        labels = parse_series_key(key)[1]
        if labels.get("tenant") == tenant and "le" in labels:
            bounds.add(labels["le"])
    return sorted(
        bounds,
        key=lambda le: float("inf") if le == INF_LABEL else float(le),
    )


def bucket_delta_rows(
    timeseries, tenants: Sequence[str]
) -> Tuple[List[str], List[Tuple[float, List[float]]]]:
    """Merged per-interval bucket-count deltas for ``tenants``.

    Returns the sorted ``le`` labels and, per sample, the
    *non-cumulative* per-bucket observation counts summed over the
    given tenants — a per-interval latency distribution.
    """
    if not tenants:
        return [], []
    bounds = _bucket_bounds(timeseries, tenants[0])
    if not bounds:
        return [], []
    series: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for key, points in timeseries.series_matching(
        "tenant_latency_bucket"
    ).items():
        labels = parse_series_key(key)[1]
        if labels.get("tenant") in tenants and labels.get("le") in bounds:
            series[(labels["tenant"], labels["le"])] = points
    rows: List[Tuple[float, List[float]]] = []
    previous = [0.0] * len(bounds)
    for index, (t_ms, _values) in enumerate(timeseries.samples):
        cumulative = []
        for le in bounds:
            total = 0.0
            for tenant in tenants:
                points = series.get((tenant, le))
                if points is not None:
                    total += points[index][1]
            cumulative.append(total)
        # Cumulative-over-buckets and cumulative-over-time: diff over
        # time first, then de-cumulate over the bucket axis.
        interval = [c - p for c, p in zip(cumulative, previous)]
        previous = cumulative
        counts = [interval[0]] + [
            interval[i] - interval[i - 1] for i in range(1, len(interval))
        ]
        rows.append((t_ms, [max(0.0, c) for c in counts]))
    return bounds, rows


def quantile_from_counts(
    bounds: Sequence[str], counts: Sequence[float], q: float
) -> float:
    """Upper bucket bound containing the q-quantile (0..1)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = sum(counts)
    if total <= 0:
        return 0.0
    target = q * total
    running = 0.0
    for le, count in zip(bounds, counts):
        running += count
        if running >= target:
            return float("inf") if le == INF_LABEL else float(le)
    return float("inf")


def p99_timeline(
    timeseries, tenants: Sequence[str], q: float = 0.99
) -> List[Tuple[float, float]]:
    """(sample time, interval q-quantile latency) over ``tenants``.

    Intervals with no completed ops are skipped; quantiles are upper
    bucket bounds (the histogram's resolution).
    """
    bounds, rows = bucket_delta_rows(timeseries, tenants)
    out: List[Tuple[float, float]] = []
    for t_ms, counts in rows:
        if sum(counts) > 0:
            out.append((t_ms, quantile_from_counts(bounds, counts, q)))
    return out


def slo_violation_fraction(
    bounds: Sequence[str], counts: Sequence[float], slo_ms: float
) -> float:
    """Fraction of observations above ``slo_ms`` (bucket resolution:
    an op counts as compliant when its bucket bound is ≤ the SLO)."""
    total = sum(counts)
    if total <= 0:
        return 0.0
    within = sum(
        count for le, count in zip(bounds, counts)
        if le != INF_LABEL and float(le) <= slo_ms
    )
    return max(0.0, 1.0 - within / total)


def burn_rate(
    timeseries, tenant: str, slo_ms: float, error_budget: float = 0.05
) -> float:
    """SLO burn rate over the whole run: violation fraction divided
    by the error budget (1.0 = exactly consuming the budget)."""
    bounds, rows = bucket_delta_rows(timeseries, [tenant])
    totals = [0.0] * len(bounds)
    for _t, counts in rows:
        for index, count in enumerate(counts):
            totals[index] += count
    fraction = slo_violation_fraction(bounds, totals, slo_ms)
    return fraction / max(error_budget, 1e-9)


# -- the per-run fairness report ----------------------------------------

@dataclass
class TenantStats:
    """One tenant's run summary."""

    name: str
    ops: float = 0.0
    failed: float = 0.0
    mean_ops_per_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    hit_rate: Optional[float] = None
    burn_rate: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ops": self.ops,
            "failed": self.failed,
            "mean_ops_per_s": self.mean_ops_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "hit_rate": self.hit_rate,
            "burn_rate": self.burn_rate,
        }


@dataclass
class FairnessReport:
    """Fairness/QoS summary of one multi-tenant run."""

    tenants: List[TenantStats] = field(default_factory=list)
    jain_overall: float = 1.0
    jain_min: float = 1.0
    jain_mean: float = 1.0
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenants": [stats.as_dict() for stats in self.tenants],
            "jain_overall": self.jain_overall,
            "jain_min": self.jain_min,
            "jain_mean": self.jain_mean,
            "timeline": self.timeline,
        }

    def render(self) -> str:
        lines = [
            "fairness: Jain overall "
            f"{self.jain_overall:.3f}  interval min {self.jain_min:.3f}  "
            f"mean {self.jain_mean:.3f}"
        ]
        header = (
            f"  {'tenant':<12s} {'ops':>8s} {'fail':>6s} {'ops/s':>8s} "
            f"{'p50 ms':>8s} {'p99 ms':>8s} {'hit%':>6s} {'burn':>6s}"
        )
        lines.append(header)
        for stats in self.tenants:
            hit = (
                f"{100.0 * stats.hit_rate:5.1f}"
                if stats.hit_rate is not None else "    -"
            )
            p99 = (
                "inf" if stats.p99_ms == float("inf")
                else f"{stats.p99_ms:8.1f}"
            )
            lines.append(
                f"  {stats.name:<12s} {stats.ops:8.0f} {stats.failed:6.0f} "
                f"{stats.mean_ops_per_s:8.1f} {stats.p50_ms:8.1f} "
                f"{p99:>8s} {hit:>6s} {stats.burn_rate:6.2f}"
            )
        return "\n".join(lines)


def _tenant_total(timeseries, family: str, tenant: str) -> float:
    total = 0.0
    for key, points in timeseries.series_matching(family).items():
        if parse_series_key(key)[1].get("tenant") == tenant and points:
            total += points[-1][1]
    return total


def summarize(
    timeseries,
    specs: Optional[Sequence] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> FairnessReport:
    """Build the :class:`FairnessReport` for one sampled run.

    ``specs`` (``TenantSpec``-like, needing ``name`` / ``p99_slo_ms``
    / ``error_budget``) supply per-tenant SLO targets and fair-share
    weights; without them, defaults apply (50 ms SLO, 5% budget,
    equal weights).
    """
    by_name = {spec.name: spec for spec in (specs or [])}
    if weights is None and specs:
        weights = {
            spec.name: getattr(spec, "weight", 1.0) for spec in specs
        }
    names = tenant_names(timeseries)
    report = FairnessReport()
    duration_ms = 0.0
    if timeseries.samples:
        duration_ms = timeseries.samples[-1][0] - timeseries.samples[0][0]
    totals: List[float] = []
    for name in names:
        spec = by_name.get(name)
        slo_ms = getattr(spec, "p99_slo_ms", 50.0)
        budget = getattr(spec, "error_budget", 0.05)
        bounds, rows = bucket_delta_rows(timeseries, [name])
        merged = [0.0] * len(bounds)
        for _t, counts in rows:
            for index, count in enumerate(counts):
                merged[index] += count
        ops = _tenant_total(timeseries, "tenant_ops_total", name)
        hits = _tenant_total(timeseries, "tenant_cache_hits_total", name)
        misses = _tenant_total(timeseries, "tenant_cache_misses_total", name)
        stats = TenantStats(
            name=name,
            ops=ops,
            failed=_tenant_total(timeseries, "tenant_ops_failed_total", name),
            mean_ops_per_s=(
                1_000.0 * ops / duration_ms if duration_ms > 0 else 0.0
            ),
            p50_ms=quantile_from_counts(bounds, merged, 0.5),
            p99_ms=quantile_from_counts(bounds, merged, 0.99),
            hit_rate=(
                hits / (hits + misses) if hits + misses > 0 else None
            ),
            burn_rate=(
                slo_violation_fraction(bounds, merged, slo_ms)
                / max(budget, 1e-9)
            ),
        )
        report.tenants.append(stats)
        totals.append(
            ops / (weights.get(name, 1.0) if weights else 1.0)
        )
    report.jain_overall = jain_index(totals)
    report.timeline = jain_timeline(timeseries, names, weights=weights)
    if report.timeline:
        values = [v for _t, v in report.timeline]
        report.jain_min = min(values)
        report.jain_mean = sum(values) / len(values)
    return report
