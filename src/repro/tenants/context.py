"""Tenant identity, namespaces, and the QoS rate governor.

λFS's pitch is pay-as-you-go metadata serving for many independent
users, so the simulator needs to know *who* is issuing each operation.
A :class:`TenantSpec` names one tenant and its traffic shape: how many
closed-loop clients it runs, its think time and op mix (by workload
archetype), its arrival burstiness, and the disjoint namespace subtree
it operates in (``/tenants/<name>`` by default, so the consistent-hash
partitioner spreads tenants across deployments exactly like any other
directory structure).

The :class:`TenantGovernor` is the isolation mechanism the
noisy-neighbor chaos scenario verifies: a deterministic per-tenant
token bucket that caps each tenant's issue rate at a weighted share of
the cluster budget.  It draws no randomness and consumes simulated
time only when a tenant is over its share, so an all-compliant run
with the governor attached is event-for-event identical to one
without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Mapping, Optional, Sequence, Tuple

from repro.namespace.treegen import (
    GeneratedTree,
    TreeSpec,
    flat_directory,
    generate_tree,
)
from repro.sim import Environment

#: Workload archetypes a tenant can run (see
#: :data:`repro.workloads.multitenant.WORKLOAD_MIXES` for the op mixes).
WORKLOADS = ("mixed", "mltrain", "readstorm", "writeheavy")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and traffic shape."""

    name: str
    workload: str = "mixed"
    """Archetype selecting the default op mix: ``mixed`` (Spotify-like
    metadata traffic), ``mltrain`` (small-file read storms over a flat
    dataset directory plus checkpoint creates), ``readstorm`` (reads
    and stats only), ``writeheavy`` (create-dominated)."""
    clients: int = 6
    weight: float = 1.0
    """Fair-share weight; the governor budget divides along these."""
    think_ms: float = 40.0
    """Mean closed-loop think time between ops."""
    burst_on_ms: float = 0.0
    burst_off_ms: float = 0.0
    """Arrival burstiness: when both are > 0, clients alternate
    ``burst_on_ms`` of issuing with ``burst_off_ms`` of silence
    (a deterministic on/off square wave, phase-shifted per client).
    Zero means steady arrivals."""
    subtree: str = ""
    """Namespace root; empty means ``/tenants/<name>``."""
    tree: TreeSpec = field(default_factory=lambda: TreeSpec(depth=2))
    """Shape of the tenant's directory tree (root is overridden by
    :meth:`subtree_root`; ``mltrain`` tenants get a flat dataset
    directory of ``dataset_files`` instead)."""
    dataset_files: int = 256
    """Flat-directory dataset size for ``mltrain`` tenants."""
    p99_slo_ms: float = 50.0
    """This tenant's latency SLO target (burn-rate gauge input)."""
    error_budget: float = 0.05
    """Allowed fraction of ops over ``p99_slo_ms`` (burn rate 1.0 =
    exactly consuming the budget)."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; expected one of {WORKLOADS}"
            )
        if self.clients < 1:
            raise ValueError("tenant needs at least one client")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if (self.burst_on_ms > 0) != (self.burst_off_ms > 0):
            raise ValueError(
                "burst_on_ms and burst_off_ms must both be set (or both zero)"
            )

    def subtree_root(self) -> str:
        return self.subtree or f"/tenants/{self.name}"

    def demand_ops_per_ms(self) -> float:
        """Nominal steady-state demand of this tenant's client fleet."""
        duty = 1.0
        if self.burst_on_ms > 0:
            duty = self.burst_on_ms / (self.burst_on_ms + self.burst_off_ms)
        return duty * self.clients / max(self.think_ms, 1.0)


def default_tenants() -> Tuple[TenantSpec, ...]:
    """The ``repro tenants`` CLI's default four-tenant mix: one
    ML-training pipeline, one bursty analytics scanner, and two
    steady mixed-traffic tenants of different sizes."""
    return (
        TenantSpec("mltrain", workload="mltrain", clients=8, think_ms=15.0,
                   weight=2.0, dataset_files=256),
        TenantSpec("analytics", workload="readstorm", clients=6, think_ms=25.0,
                   burst_on_ms=1_000.0, burst_off_ms=1_500.0),
        TenantSpec("prod", workload="mixed", clients=8, think_ms=30.0,
                   weight=2.0),
        TenantSpec("batch", workload="writeheavy", clients=4, think_ms=50.0),
    )


def chaos_tenants() -> Tuple[TenantSpec, ...]:
    """The noisy-neighbor cast: one prospective hog, three victims."""
    return (
        TenantSpec("hog", workload="readstorm", clients=8, think_ms=30.0),
        TenantSpec("tenant-a", workload="mixed", clients=6, think_ms=30.0),
        TenantSpec("tenant-b", workload="readstorm", clients=6, think_ms=30.0),
        TenantSpec("tenant-c", workload="mixed", clients=6, think_ms=30.0),
    )


def build_tenant_namespaces(
    specs: Sequence[TenantSpec], seed: int = 0
) -> Tuple[GeneratedTree, Dict[str, GeneratedTree]]:
    """Disjoint per-tenant trees plus their merged install list.

    ``mltrain`` tenants get a flat dataset directory (the FalconFS
    million-entry-flat-directory shape, scaled) plus pre-created
    checkpoint directories; everyone else gets a regular generated
    tree rooted at their subtree.
    """
    seen: Dict[str, str] = {}
    merged = GeneratedTree()
    merged.directories.append("/tenants")
    per_tenant: Dict[str, GeneratedTree] = {}
    for spec in specs:
        root = spec.subtree_root()
        if root in seen:
            raise ValueError(
                f"tenants {seen[root]!r} and {spec.name!r} share subtree {root!r}"
            )
        seen[root] = spec.name
        if spec.workload == "mltrain":
            tree = flat_directory(f"{root}/dataset", spec.dataset_files)
            tree.directories.insert(0, root)
            tree.directories.append(f"{root}/ckpt")
        else:
            tree = generate_tree(replace(spec.tree, root=root, seed=seed))
        per_tenant[spec.name] = tree
        merged.directories.extend(tree.directories)
        merged.files.extend(tree.files)
    return merged, per_tenant


class TenantGovernor:
    """Deterministic per-tenant token-bucket rate limiter (QoS).

    Each tenant refills at ``rate`` ops/ms up to a burst allowance of
    ``burst_ms × rate`` tokens; a client that finds the bucket empty
    waits exactly until the next token accrues.  No randomness, no
    events while every tenant stays under its share — so attaching a
    governor to a compliant workload leaves the event sequence
    unchanged.

    ``enabled = False`` turns the governor into a pass-through; the
    ``tenant_flood`` chaos fault's ``disable_isolation`` path flips it
    off *permanently* (a dead QoS layer — the expected-FAIL scenario).
    """

    def __init__(
        self,
        env: Environment,
        rates_ops_per_ms: Mapping[str, float],
        burst_ms: float = 250.0,
    ) -> None:
        for tenant, rate in rates_ops_per_ms.items():
            if rate <= 0:
                raise ValueError(f"rate for tenant {tenant!r} must be positive")
        self.env = env
        self.enabled = True
        self.rates = dict(rates_ops_per_ms)
        self.burst_ms = burst_ms
        self._tokens: Dict[str, float] = {
            tenant: rate * burst_ms for tenant, rate in self.rates.items()
        }
        self._last: Dict[str, float] = {
            tenant: env.now for tenant in self.rates
        }
        self.throttled: Dict[str, int] = {}
        self.throttled_ms: Dict[str, float] = {}

    @classmethod
    def for_tenants(
        cls,
        env: Environment,
        specs: Sequence[TenantSpec],
        headroom: float = 2.0,
        burst_ms: float = 250.0,
    ) -> "TenantGovernor":
        """Budget each tenant at ``headroom ×`` its nominal demand.

        Compliant tenants never hit their cap; a flooding tenant is
        held near its historical share instead of eating the fleet.
        """
        rates = {
            spec.name: max(headroom * spec.demand_ops_per_ms(), 1e-6)
            for spec in specs
        }
        return cls(env, rates, burst_ms=burst_ms)

    def _refill(self, tenant: str) -> None:
        now = self.env.now
        elapsed = now - self._last[tenant]
        if elapsed > 0:
            rate = self.rates[tenant]
            cap = rate * self.burst_ms
            self._tokens[tenant] = min(
                cap, self._tokens[tenant] + elapsed * rate
            )
            self._last[tenant] = now

    def acquire(self, tenant: str) -> Generator:
        """Take one op token, waiting out any deficit.  A generator —
        drive with ``yield from``; returns immediately (no events)
        whenever a token is available or the governor is off."""
        if not self.enabled or tenant not in self.rates:
            return
        while True:
            self._refill(tenant)
            # The 1e-9 slack absorbs refill round-off: without it a
            # bucket refilled to 1.0-ulp computes a ~1e-16 deficit whose
            # wait underflows to zero sim-time at large ``env.now``
            # (now + wait == now), and the loop never advances.
            if self._tokens[tenant] >= 1.0 - 1e-9:
                self._tokens[tenant] = max(0.0, self._tokens[tenant] - 1.0)
                return
            deficit = 1.0 - self._tokens[tenant]
            wait = deficit / self.rates[tenant]
            self.throttled[tenant] = self.throttled.get(tenant, 0) + 1
            self.throttled_ms[tenant] = (
                self.throttled_ms.get(tenant, 0.0) + wait
            )
            yield self.env.timeout(wait)
            if not self.enabled:
                return


def tag_clients(clients: Sequence, spec: TenantSpec) -> List:
    """Set ``client.tenant`` on each client; returns the list back."""
    for client in clients:
        client.tenant = spec.name
    return list(clients)
