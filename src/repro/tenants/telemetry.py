"""Per-tenant metric families and their registration.

The client emits four tenant-labelled families when ``client.tenant``
is set (see :meth:`repro.core.client.LambdaFSClient.execute`):

* ``tenant_ops_total{tenant=,op=}`` / ``tenant_ops_failed_total``
* ``tenant_op_latency_ms{tenant=}`` (histogram: ``_count``/``_sum``)
* ``tenant_cache_hits_total{tenant=}`` / ``tenant_cache_misses_total``

These are *separate* families from the fleet-global ``ops_total`` /
``op_latency_ms`` — the chaos verifier's recovery-SLO gate sums every
series in a family, so tenant-labelled children on the existing
families would double-count each op.

The sampler only keeps a histogram's ``_count``/``_sum`` per sample,
which is enough for interval means but not interval quantiles.
:func:`install_tenant_telemetry` therefore registers one gauge per
(tenant × bucket bound) exposing the *cumulative* bucket count as a
``tenant_latency_bucket{tenant=,le=}`` series; interval deltas of
those series reconstruct a per-interval latency distribution, which
is how the fairness gate computes windowed victim p99
(:func:`repro.tenants.fairness.p99_timeline`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Tuple

from repro.telemetry.registry import (
    DEFAULT_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)

#: Every family the tenant layer emits (dashboard + export tooling).
TENANT_FAMILIES = (
    "tenant_ops_total",
    "tenant_ops_failed_total",
    "tenant_op_latency_ms",
    "tenant_cache_hits_total",
    "tenant_cache_misses_total",
    "tenant_latency_bucket",
)

INF_LABEL = "+Inf"


def _bucket_reader(
    histogram: Histogram, tenant: str, index: int
) -> Callable[[], float]:
    key = (("tenant", tenant),)

    def read() -> float:
        counts = histogram._counts.get(key)
        if counts is None:
            return 0.0
        return float(sum(counts[: index + 1]))

    return read


def install_tenant_telemetry(
    metrics: MetricsRegistry,
    tenant_names: Sequence[str],
    buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
) -> Histogram:
    """Declare the tenant latency histogram and its bucket gauges.

    Idempotent per (tenant, bucket): re-registering replaces the
    callback with an equivalent one.  Returns the histogram so
    callers can read end-of-run quantiles directly.
    """
    histogram = metrics.histogram(
        "tenant_op_latency_ms", buckets=buckets,
        help="per-tenant client op latency",
    )
    bounds: Tuple[float, ...] = histogram.buckets
    for tenant in tenant_names:
        for index, bound in enumerate(bounds):
            metrics.register_gauge(
                "tenant_latency_bucket",
                _bucket_reader(histogram, tenant, index),
                tenant=tenant, le=repr(bound),
            )
        metrics.register_gauge(
            "tenant_latency_bucket",
            _bucket_reader(histogram, tenant, len(bounds)),
            tenant=tenant, le=INF_LABEL,
        )
    return histogram
