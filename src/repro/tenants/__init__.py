"""Tenant-scoped observability: identity, QoS, and fairness telemetry.

λFS bills metadata serving per-operation, which only makes sense if
the operator can see *per-tenant* behavior: who is driving load, who
is missing their latency SLO, and whether one tenant's storm degrades
everyone else.  This package threads a tenant context end-to-end
through the simulator:

- :mod:`repro.tenants.context` — :class:`TenantSpec` traffic shapes,
  disjoint per-tenant namespaces, and the :class:`TenantGovernor`
  token-bucket QoS isolation;
- :mod:`repro.tenants.telemetry` — the ``tenant_*`` metric families
  (op counters, latency histogram, cache hits, cumulative bucket
  gauges for windowed quantiles);
- :mod:`repro.tenants.fairness` — Jain's fairness index, per-tenant
  interval p50/p99, SLO burn rate, and the :class:`FairnessReport`;
- :mod:`repro.tenants.dashboard` — the ascii per-tenant dashboard;
- :mod:`repro.tenants.run` — the ``repro tenants`` driver.

The noisy-neighbor chaos scenarios (:data:`repro.chaos.scenarios
.TENANT_MATRIX`) compose these into a verified isolation test.
"""

from repro.tenants.context import (
    WORKLOADS,
    TenantGovernor,
    TenantSpec,
    build_tenant_namespaces,
    chaos_tenants,
    default_tenants,
    tag_clients,
)
from repro.tenants.dashboard import render_tenant_dashboard
from repro.tenants.fairness import (
    FairnessReport,
    TenantStats,
    burn_rate,
    jain_index,
    jain_timeline,
    p99_timeline,
    summarize,
    tenant_names,
)
from repro.tenants.run import TenantRunConfig, TenantRunResult, run_tenants
from repro.tenants.telemetry import TENANT_FAMILIES, install_tenant_telemetry

__all__ = [
    "FairnessReport",
    "TENANT_FAMILIES",
    "TenantGovernor",
    "TenantRunConfig",
    "TenantRunResult",
    "TenantSpec",
    "TenantStats",
    "WORKLOADS",
    "build_tenant_namespaces",
    "burn_rate",
    "chaos_tenants",
    "default_tenants",
    "install_tenant_telemetry",
    "jain_index",
    "jain_timeline",
    "p99_timeline",
    "render_tenant_dashboard",
    "run_tenants",
    "summarize",
    "tag_clients",
    "tenant_names",
]
