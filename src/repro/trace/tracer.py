"""Causal op-tracing for the discrete-event simulation.

A :class:`Tracer` attaches to an :class:`~repro.sim.Environment`
(``env.tracer``) and observes the whole stack: the sim kernel folds
every executed event into a streaming **determinism hash**, and the
instrumented subsystems (rpc, namenode, coordinator, metastore) emit
:class:`Span` records that carry sim-time, an actor id, and a parent
span id — so a single client operation yields a complete causal tree:

    client.op
    └── rpc.tcp (attempt 1)
        └── nn.handle
            ├── txn (resolve)
            ├── coord.inv (deployment d3)
            └── txn (create file)

Tracing is strictly opt-in and zero-cost when disabled: every
instrumentation site is guarded by a single ``env.tracer is None``
check and no tracer object exists unless one was installed.  The
tracer never schedules events or consumes simulated time, so enabling
it cannot change simulation behaviour — same-seed runs produce the
same event sequence (and therefore the same hash) traced or not.

Online invariant checkers (see :mod:`repro.trace.invariants`)
subscribe to the span stream and validate protocol correctness as the
simulation runs.
"""

from __future__ import annotations

import hashlib
from itertools import count
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


class Span:
    """One traced operation (or point event, when ``end_ms == start_ms``)."""

    __slots__ = ("span_id", "parent_id", "kind", "actor", "start_ms", "end_ms", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        kind: str,
        actor: str,
        start_ms: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.actor = actor
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        """Span duration; 0.0 while still open (or for point events)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def open(self) -> bool:
        return self.end_ms is None

    def __repr__(self) -> str:
        state = "open" if self.open else f"{self.duration_ms:.3f}ms"
        return (
            f"<Span {self.span_id} {self.kind} actor={self.actor!r} "
            f"t={self.start_ms:.3f} {state}>"
        )


def parent_id_of(parent: Any) -> Optional[int]:
    """Accept a Span, a span id, or None as a parent reference."""
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.span_id
    return int(parent)


class Tracer:
    """Collects spans, streams them to checkers, hashes the event flow.

    Parameters
    ----------
    env:
        The simulation environment to attach to.  The tracer installs
        itself as ``env.tracer``; call :meth:`detach` to remove it.
    keep_spans:
        Retain finished span objects for causal-tree reconstruction
        and timing analysis.  Checkers receive the stream either way.
    max_spans:
        Retention cap.  Beyond it new spans are still streamed to
        checkers and counted, but no longer stored (``dropped``).
    """

    def __init__(
        self,
        env,
        keep_spans: bool = True,
        max_spans: int = 500_000,
    ) -> None:
        self.env = env
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.spans: Dict[int, Span] = {}
        self.dropped = 0
        self.started = 0
        self.points = 0
        self.checkers: List[Any] = []
        self._ids = count(1)
        self._hash = hashlib.blake2b(digest_size=16)
        self.events_hashed = 0
        self.connections_opened = 0
        self.connections_closed = 0
        env.tracer = self

    # -- connection accounting -------------------------------------------
    def connection_opened(self) -> None:
        """One TCP connection came up (rpc layer hook)."""
        self.connections_opened += 1

    def connection_closed(self) -> None:
        """One TCP connection went down (rpc layer hook)."""
        self.connections_closed += 1

    @property
    def open_connections(self) -> int:
        """Connections opened but never closed — leak tripwire.

        A nonzero count at run end (after the system tears down) means
        some timeout/error path dropped a :class:`TcpConnection`
        without calling ``close()``; surfaced in :meth:`summary` next
        to ``open_spans`` so leaks stay visible.
        """
        return self.connections_opened - self.connections_closed

    def detach(self) -> None:
        """Disconnect from the environment (tracing turns off)."""
        if getattr(self.env, "tracer", None) is self:
            self.env.tracer = None

    # -- span stream -----------------------------------------------------
    def begin(self, kind: str, actor: str, parent: Any = None, **attrs: Any) -> Span:
        """Open a span at the current sim-time."""
        span = Span(
            next(self._ids), parent_id_of(parent), kind, actor, self.env.now, attrs
        )
        self.started += 1
        if self.keep_spans:
            if len(self.spans) < self.max_spans:
                self.spans[span.span_id] = span
            else:
                self.dropped += 1
        self._emit("begin", span)
        return span

    def end(self, span: Optional[Span], **attrs: Any) -> None:
        """Close ``span`` at the current sim-time (None is a no-op)."""
        if span is None:
            return
        span.end_ms = self.env.now
        if attrs:
            span.attrs.update(attrs)
        self._emit("end", span)

    def point(self, kind: str, actor: str, parent: Any = None, **attrs: Any) -> Span:
        """Record an instantaneous event (a zero-duration span)."""
        span = self.begin(kind, actor, parent, **attrs)
        span.end_ms = span.start_ms
        self.points += 1
        self._emit("point", span)
        return span

    def _emit(self, phase: str, span: Span) -> None:
        for checker in self.checkers:
            checker.observe(phase, span)

    # -- checker plumbing -------------------------------------------------
    def add_checker(self, checker: Any) -> Any:
        self.checkers.append(checker)
        return checker

    def violations(self) -> List[Any]:
        """All violations recorded by every attached checker."""
        found: List[Any] = []
        for checker in self.checkers:
            found.extend(getattr(checker, "violations", ()))
        return found

    # -- kernel hook -------------------------------------------------------
    def on_step(self, when: float, priority: int, eid: int, event: Any) -> None:
        """Called by :meth:`Environment.step` for every executed event.

        Folds the (time, priority, insertion-order, event-type) tuple
        into a streaming hash; two runs are step-for-step identical
        iff their hashes match.
        """
        self._hash.update(
            f"{when!r}|{priority}|{eid}|{type(event).__name__}\n".encode()
        )
        self.events_hashed += 1

    def event_hash(self) -> str:
        """Hex digest of the event sequence executed so far."""
        return self._hash.hexdigest()

    # -- analysis ----------------------------------------------------------
    def roots(self) -> List[Span]:
        """Spans with no parent (e.g. one per client operation)."""
        return [span for span in self.spans.values() if span.parent_id is None]

    def children(self, span: Any) -> List[Span]:
        """Direct children of ``span`` (a Span or span id)."""
        wanted = parent_id_of(span)
        return [s for s in self.spans.values() if s.parent_id == wanted]

    def tree(self, root: Any) -> List[Tuple[int, Span]]:
        """Depth-first (depth, span) pairs of the causal tree under ``root``."""
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in self.spans.values():
            by_parent.setdefault(span.parent_id, []).append(span)
        for bucket in by_parent.values():
            bucket.sort(key=lambda s: (s.start_ms, s.span_id))
        root_id = parent_id_of(root)
        out: List[Tuple[int, Span]] = []
        root_span = self.spans.get(root_id)
        if root_span is None:
            return out
        stack: List[Tuple[int, Span]] = [(0, root_span)]
        while stack:
            depth, span = stack.pop()
            out.append((depth, span))
            for child in reversed(by_parent.get(span.span_id, ())):
                stack.append((depth + 1, child))
        return out

    def render_tree(self, root: Any) -> str:
        """ASCII rendering of one causal tree (for docs and debugging)."""
        lines = []
        for depth, span in self.tree(root):
            attrs = " ".join(
                f"{k}={v!r}" for k, v in sorted(span.attrs.items())
                if k in ("op", "path", "attempt", "deployment", "inv_id")
            )
            duration = "open" if span.open else f"{span.duration_ms:.2f}ms"
            lines.append(
                f"{'  ' * depth}{span.kind} [{span.actor}] "
                f"@{span.start_ms:.2f} {duration} {attrs}".rstrip()
            )
        return "\n".join(lines)

    def timing_by_kind(self) -> Dict[str, Tuple[int, float]]:
        """Flame-style aggregate: kind -> (count, total duration ms).

        Combine with :func:`repro.bench.report.tabulate` or the
        :mod:`repro.metrics` percentile helpers for reporting.
        """
        totals: Dict[str, Tuple[int, float]] = {}
        for span in self.spans.values():
            n, total = totals.get(span.kind, (0, 0.0))
            totals[span.kind] = (n + 1, total + span.duration_ms)
        return totals

    def durations(self, kind: str) -> List[float]:
        """All closed-span durations for one kind (feeds percentile())."""
        return [
            span.duration_ms
            for span in self.spans.values()
            if span.kind == kind and not span.open
        ]

    def open_spans(self) -> List[Span]:
        """Retained spans never closed — instrumentation leaks.

        A span left open at run end means some ``begin()`` lacks a
        matching ``end()`` on one code path (usually an exception
        path); the profiler excludes such trees, so the leak count is
        surfaced in :meth:`summary` to keep them visible.
        """
        return [span for span in self.spans.values() if span.open]

    def summary(self) -> Dict[str, Any]:
        """One-glance report used by the CLI and bench drivers."""
        return {
            "event_hash": self.event_hash(),
            "events_hashed": self.events_hashed,
            "spans": self.started,
            "points": self.points,
            "dropped": self.dropped,
            "open_spans": len(self.open_spans()),
            "open_connections": self.open_connections,
            "violations": len(self.violations()),
        }
