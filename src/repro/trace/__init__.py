"""Causal op-tracing and runtime invariant checking for the DES.

Opt-in, zero-cost-when-disabled tracing threaded through the sim
kernel, RPC fabric, NameNodes, Coordinator, and metadata store::

    from repro.sim import Environment
    from repro.trace import install_tracer

    env = Environment()
    tracer = install_tracer(env)          # coherence + lock checkers
    ... run any workload ...
    assert tracer.violations() == []
    print(tracer.event_hash())            # determinism fingerprint
    print(tracer.render_tree(tracer.roots()[0].span_id))

See ``docs/tracing.md`` for the span model and how to add a checker.
"""

from repro.trace.invariants import (
    Checker,
    CoherenceChecker,
    InvariantViolation,
    LockDisciplineChecker,
    Violation,
    default_checkers,
    install_tracer,
)
from repro.trace.tracer import Span, Tracer, parent_id_of

__all__ = [
    "Checker",
    "CoherenceChecker",
    "InvariantViolation",
    "LockDisciplineChecker",
    "Span",
    "Tracer",
    "Violation",
    "default_checkers",
    "install_tracer",
    "parent_id_of",
]
