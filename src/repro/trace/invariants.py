"""Runtime invariant checkers over the trace span stream.

Checkers subscribe to a :class:`~repro.trace.tracer.Tracer` and
validate, online, the correctness properties the paper's arguments
rest on:

* **Coherence** (Algorithm 1 / Appendix D): a write must not commit
  while an INV round it initiated for the same path is still awaiting
  ACKs, and a NameNode must never serve a cached read for a path that
  an INV already invalidated on that NameNode.
* **Lock discipline** (strict two-phase locking in the metadata
  store): no release-without-acquire, no two owners holding
  incompatible modes on one row, no locks surviving past transaction
  end, and no blocking lock acquisition out of canonical key order
  within one acquisition batch (the deadlock-avoidance discipline of
  ``Transaction.lock_many``; cross-batch hierarchical orders are
  legitimate and protected by timeout+retry instead).

Checkers record :class:`Violation` objects; with ``fail_fast=True``
they raise :class:`InvariantViolation` immediately so a broken run
dies at the first bad event instead of producing numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.trace.tracer import Span, Tracer


class InvariantViolation(AssertionError):
    """Raised by a fail-fast checker at the moment an invariant breaks."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation."""

    checker: str
    rule: str
    message: str
    time_ms: float
    actor: str = ""

    def __str__(self) -> str:
        return f"[{self.checker}/{self.rule}] t={self.time_ms:.3f}ms {self.message}"


class Checker:
    """Base class: violation bookkeeping plus the observe() hook."""

    name = "checker"

    def __init__(self, fail_fast: bool = False) -> None:
        self.fail_fast = fail_fast
        self.violations: List[Violation] = []

    def observe(self, phase: str, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _flag(self, rule: str, message: str, span: Span) -> None:
        violation = Violation(self.name, rule, message, span.start_ms, span.actor)
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantViolation(str(violation))


def _covers(paths: Tuple[str, ...], prefix: Optional[str], path: str) -> bool:
    """True when an INV round's target set includes ``path``."""
    if prefix is not None:
        return path == prefix or path.startswith(prefix.rstrip("/") + "/")
    return path in paths


class CoherenceChecker(Checker):
    """ACK-INV protocol: writes persist only after invalidation.

    Consumes:

    * ``coord.inv`` spans (begin = INVs sent, end = every ACK in, with
      ``initiator``/``paths``/``prefix`` attrs);
    * ``coord.inv_deliver`` points (an INV reached one member — from
      that instant any cached copy of those paths on that member is
      stale *by protocol*, whatever the member's handler does);
    * ``nn.commit`` points (a write transaction is about to persist
      ``paths``, emitted by the leader NameNode);
    * ``nn.cache_put`` / ``nn.cache_hit`` points from NameNode caches.
    """

    name = "coherence"

    def __init__(self, fail_fast: bool = False) -> None:
        super().__init__(fail_fast)
        # inv_id -> (initiator, paths, prefix, causal parent span id).
        # A NameNode serves writes concurrently, so rounds are matched
        # to commits by the originating request (the shared parent
        # span), not just by the initiating actor — txn B must not be
        # blamed for txn A's still-open round on the same path.
        self.open_rounds: Dict[
            int, Tuple[str, Tuple[str, ...], Optional[str], Optional[int]]
        ] = {}
        # actor -> path -> True (validly cached) or the sim-time the
        # entry was invalidated (a float; kept so bounded-staleness
        # hits can be verified against the *checker's own* clock, not
        # the server's claim).
        self.validity: Dict[str, Dict[str, Any]] = {}
        self.commits_checked = 0
        self.hits_checked = 0
        self.stale_hits_ok = 0
        """Bounded-staleness hits served within their declared bound
        (the resilience degradation path, verified rather than waived)."""

    def observe(self, phase: str, span: Span) -> None:
        kind = span.kind
        if kind == "coord.inv":
            inv_id = span.attrs.get("inv_id")
            if phase == "begin":
                self.open_rounds[inv_id] = (
                    span.attrs.get("initiator", ""),
                    tuple(span.attrs.get("paths", ())),
                    span.attrs.get("prefix"),
                    span.parent_id,
                )
            elif phase == "end":
                self.open_rounds.pop(inv_id, None)
        elif phase != "point":
            return
        elif kind == "coord.inv_deliver":
            self._mark_invalid(
                span.attrs.get("member", span.actor),
                tuple(span.attrs.get("paths", ())),
                span.attrs.get("prefix"),
                span.start_ms,
            )
        elif kind == "nn.commit":
            self._check_commit(span)
        elif kind == "nn.cache_put":
            self.validity.setdefault(span.actor, {})[span.attrs["path"]] = True
        elif kind == "nn.cache_invalidate":
            # A local invalidation (leader refreshing its own cache);
            # ``prefix`` covers subtree invalidations.
            self._mark_invalid(
                span.actor, (span.attrs["path"],), span.attrs.get("prefix"),
                span.start_ms,
            )
        elif kind == "nn.cache_hit":
            self._check_hit(span)

    # -- rules ---------------------------------------------------------
    def _check_commit(self, span: Span) -> None:
        self.commits_checked += 1
        paths = tuple(span.attrs.get("paths", ()))
        for inv_id, (initiator, inv_paths, prefix, parent) in self.open_rounds.items():
            if initiator != span.actor or parent != span.parent_id:
                continue
            stale = [p for p in paths if _covers(inv_paths, prefix, p)]
            if stale:
                self._flag(
                    "commit-before-ack",
                    f"{span.actor} committed write to {stale} while INV round "
                    f"{inv_id} (paths={list(inv_paths)!r}, prefix={prefix!r}) "
                    f"still awaits ACKs",
                    span,
                )

    def _check_hit(self, span: Span) -> None:
        self.hits_checked += 1
        path = span.attrs["path"]
        value = self.validity.get(span.actor, {}).get(path)
        if value is None or value is True:
            return
        # The entry was invalidated on this NameNode.  A hit declaring
        # ``bounded_stale`` is the resilience degradation path: legal
        # iff the staleness — measured against the invalidation time
        # *this checker* recorded, not the server's claim — is within
        # the declared bound.  An undeclared hit is the original
        # coherence violation.
        if span.attrs.get("bounded_stale"):
            bound = span.attrs.get("stale_bound_ms")
            invalidated_at = value if isinstance(value, float) else None
            staleness = (
                span.start_ms - invalidated_at
                if invalidated_at is not None
                else span.attrs.get("staleness_ms")
            )
            if bound is not None and staleness is not None and staleness <= bound:
                self.stale_hits_ok += 1
                return
            self._flag(
                "stale-hit-beyond-bound",
                f"{span.actor} served bounded-stale read of {path!r} "
                f"{staleness if staleness is not None else '?'} ms after "
                f"invalidation (bound {bound} ms)",
                span,
            )
            return
        self._flag(
            "stale-cache-hit",
            f"{span.actor} served cached read of {path!r} after it was "
            f"invalidated on this NameNode",
            span,
        )

    def _mark_invalid(
        self,
        actor: str,
        paths: Tuple[str, ...],
        prefix: Optional[str],
        at_ms: float = 0.0,
    ) -> None:
        state = self.validity.setdefault(actor, {})
        for path in paths:
            state[path] = at_ms
        if prefix is not None:
            for path in state:
                if _covers((), prefix, path):
                    state[path] = at_ms


class LockDisciplineChecker(Checker):
    """Strict-2PL discipline over the metastore row locks.

    Consumes ``lock.acquire`` / ``lock.release`` points and
    ``lock.wait`` *spans* (the ordering rule fires at the begin edge —
    the instant blocking starts) from
    :class:`~repro.metastore.locks.LockManager`, plus ``txn.end``
    points from :class:`~repro.metastore.ndb.Transaction`.  Row keys
    are compared by their ``repr`` — the same canonical order
    ``Transaction.lock_many`` sorts by.
    """

    name = "locks"

    def __init__(self, fail_fast: bool = False) -> None:
        super().__init__(fail_fast)
        # owner label -> key repr -> mode ("shared" | "exclusive")
        self.held: Dict[str, Dict[str, str]] = {}
        # key repr -> {owner label: mode} (for mutual-exclusion checks)
        self.by_key: Dict[str, Dict[str, str]] = {}
        # owner label -> key repr -> acquisition batch epoch.  The
        # canonical-order promise is per lock_many batch; hierarchical
        # orders across batches are legitimate (timeout+retry handles
        # those deadlocks), so the ordering rule only compares keys
        # acquired in the same epoch as the blocking wait.
        self.key_epoch: Dict[str, Dict[str, Any]] = {}
        self.acquires = 0
        self.releases = 0

    def observe(self, phase: str, span: Span) -> None:
        kind = span.kind
        if kind == "lock.wait":
            if phase == "begin":
                self._on_wait(span)
            return
        if phase != "point":
            return
        if kind == "lock.acquire":
            self._on_acquire(span)
        elif kind == "lock.release":
            self._on_release(span)
        elif kind == "txn.end":
            self._on_txn_end(span)

    # -- rules ---------------------------------------------------------
    def _on_acquire(self, span: Span) -> None:
        self.acquires += 1
        owner, key, mode = span.actor, span.attrs["key"], span.attrs["mode"]
        holders = self.by_key.setdefault(key, {})
        for other, other_mode in holders.items():
            if other == owner:
                continue
            if mode == "exclusive" or other_mode == "exclusive":
                self._flag(
                    "mutual-exclusion",
                    f"{owner} granted {mode} on {key} while {other} holds "
                    f"{other_mode}",
                    span,
                )
        holders[owner] = mode
        self.held.setdefault(owner, {})[key] = mode
        self.key_epoch.setdefault(owner, {})[key] = span.attrs.get("epoch")

    def _on_release(self, span: Span) -> None:
        self.releases += 1
        owner, key = span.actor, span.attrs["key"]
        mine = self.held.get(owner, {})
        if key not in mine:
            self._flag(
                "release-without-acquire",
                f"{owner} released {key} which it does not hold",
                span,
            )
            return
        del mine[key]
        self.key_epoch.get(owner, {}).pop(key, None)
        holders = self.by_key.get(key)
        if holders is not None:
            holders.pop(owner, None)
            if not holders:
                del self.by_key[key]

    def _on_wait(self, span: Span) -> None:
        owner, key = span.actor, span.attrs["key"]
        mine = self.held.get(owner, {})
        epochs = self.key_epoch.get(owner, {})
        epoch = span.attrs.get("epoch")
        later = [
            held for held in mine
            if held > key and epochs.get(held) == epoch
        ]
        if later:
            self._flag(
                "out-of-order-wait",
                f"{owner} blocks on {key} while holding later-ordered "
                f"key(s) {sorted(later)} — deadlock-prone acquisition order",
                span,
            )

    def _on_txn_end(self, span: Span) -> None:
        owner = span.actor
        self.key_epoch.pop(owner, None)
        leftover = self.held.pop(owner, {})
        if leftover:
            self._flag(
                "locks-held-past-txn-end",
                f"{owner} ended with lock(s) still held: {sorted(leftover)}",
                span,
            )
            for key in leftover:
                holders = self.by_key.get(key)
                if holders is not None:
                    holders.pop(owner, None)
                    if not holders:
                        del self.by_key[key]


def default_checkers(fail_fast: bool = False) -> List[Checker]:
    """The standard battery: coherence + lock discipline."""
    return [CoherenceChecker(fail_fast), LockDisciplineChecker(fail_fast)]


def install_tracer(
    env,
    fail_fast: bool = False,
    keep_spans: bool = True,
    checkers: Optional[List[Checker]] = None,
) -> Tracer:
    """Attach a tracer with the default invariant battery to ``env``."""
    tracer = Tracer(env, keep_spans=keep_spans)
    for checker in default_checkers(fail_fast) if checkers is None else checkers:
        tracer.add_checker(checker)
    return tracer
