"""Subtree operations: the augmented HopsFS protocol (Appendix D).

Three phases, with λFS' two additions:

1. take the subtree lock flag on the root (subtree isolation),
2. quiesce — walk the subtree in a predefined total order taking and
   releasing write locks, building the in-memory tree and computing
   the set of deployments caching subtree metadata,
3. execute sub-operations in parallel batches.

λFS additions: a single **prefix invalidation** replaces per-INode
INVs (the trie cache prunes whole subtrees in one step), and batches
of sub-operations are **offloaded** to helper NameNodes in other
deployments to exploit FaaS parallelism ("serverless offloading").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Tuple

from repro.core.errors import FsError
from repro.core.messages import MetadataRequest, OpType
from repro.metastore.errors import TransactionAborted
from repro.namespace.inode import INode, dirent_key, inode_key
from repro.namespace.paths import normalize, parent_of, split
from repro.sim import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fs import LambdaFS
    from repro.core.namenode import LambdaNameNode


@dataclass(frozen=True)
class SubtreeConfig:
    batch_size: int = 256
    """Sub-operations per batch; larger favors less offload overhead,
    smaller favors parallelism (the Appendix D trade-off)."""
    offload_enabled: bool = True
    max_helpers: int = 8


class SubtreeProtocol:
    """Orchestrates subtree MV and DELETE for a leader NameNode."""

    def __init__(self, fs: "LambdaFS", config: SubtreeConfig | None = None) -> None:
        self.fs = fs
        self.config = config or SubtreeConfig()

    def execute(
        self,
        leader: "LambdaNameNode",
        request: MetadataRequest,
        span=None,
    ) -> Generator:
        root_path = normalize(request.path)
        root = yield from self._acquire_subtree_flag(root_path, span)
        try:
            collected = yield from self._quiesce(root_path, span)
            deployments = sorted({
                self.fs.partitioner.deployment_for(path) for path, _ in collected
            } | {self.fs.partitioner.deployment_for(parent_of(root_path))})
            # λFS: one prefix INV per deployment, not one per INode.
            yield from leader.run_subtree_coherence(root_path, deployments, span)
            descendants = [(p, i) for p, i in collected if p != root_path]
            if request.op is OpType.DELETE:
                actions = [
                    ("delete_inode", inode.id, inode.parent_id, split(path)[1])
                    for path, inode in descendants
                ]
            else:
                actions = [("touch_inode", inode.id) for path, inode in descendants]
            yield from self._run_batches(leader, actions, span)
            tracer = self.fs.env.tracer
            if tracer is not None:
                tracer.point(
                    "nn.commit", leader.member_id, parent=span,
                    paths=(root_path, parent_of(root_path)),
                    op=request.op.value, subtree=True,
                )
            value = yield from self._apply_root(request, root_path, root, span)
            return value
        finally:
            yield from self._release_subtree_flag(root, span)

    # -- phases ------------------------------------------------------------
    def _acquire_subtree_flag(self, root_path: str, span=None) -> Generator:
        """Phase 1: resolve the root and set its subtree-lock flag."""

        def body(txn):
            resolved = yield from self.fs.ops.resolve(txn, root_path)
            root = resolved[root_path]
            if not root.is_dir:
                raise FsError(f"{root_path!r} is not a directory")
            flag = yield from txn.read(("st_lock", root.id))
            if flag:
                raise TransactionAborted(f"subtree op already active on {root_path!r}")
            yield from txn.write(("st_lock", root.id), True)
            return root

        return (
            yield from self.fs.store.run_transaction(
                body, label="subtree flag", trace_parent=span
            )
        )

    def _quiesce(self, root_path: str, span=None) -> Generator:
        """Phase 2: lock-walk the whole subtree, then release."""

        def body(txn):
            return self.fs.ops.collect_subtree(txn, root_path)

        return (
            yield from self.fs.store.run_transaction(
                body, label="subtree quiesce", trace_parent=span
            )
        )

    def _run_batches(
        self, leader: "LambdaNameNode", actions: List[Tuple], span=None
    ) -> Generator:
        """Phase 3: execute sub-operations in parallel batches.

        The leader handles the first batch locally; the rest are
        offloaded round-robin to helper NameNodes in other
        deployments via HTTP invocations.
        """
        if not actions:
            return
        size = self.config.batch_size
        batches = [actions[i : i + size] for i in range(0, len(actions), size)]
        env = self.fs.env
        # Offloaded invocations carry the leader's span id so helper-
        # side spans (faas.queue, nn.handle, ...) attach to the client
        # op's tree instead of becoming orphan roots.
        trace_parent = span.span_id if span is not None else None

        local_request = MetadataRequest(
            op=OpType.EXEC_BATCH, path="/", payload=batches[0],
            trace_parent=trace_parent,
        )
        jobs = [env.process(leader._exec_batch(local_request, span))]

        if self.config.offload_enabled and len(batches) > 1:
            helpers = [
                name
                for name in self.fs.partitioner.deployment_names()
                if name != leader.deployment_name
            ][: self.config.max_helpers]
            if not helpers:
                helpers = [leader.deployment_name]
            for index, batch in enumerate(batches[1:]):
                helper = helpers[index % len(helpers)]
                batch_request = MetadataRequest(
                    op=OpType.EXEC_BATCH, path="/", payload=batch,
                    trace_parent=trace_parent,
                )
                jobs.append(env.process(self._offload(helper, batch_request)))
        else:
            for batch in batches[1:]:
                batch_request = MetadataRequest(
                    op=OpType.EXEC_BATCH, path="/", payload=batch,
                    trace_parent=trace_parent,
                )
                jobs.append(env.process(leader._exec_batch(batch_request, span)))
        yield AllOf(env, jobs)

    def _offload(self, deployment: str, request: MetadataRequest) -> Generator:
        """Invoke a helper NameNode; a helper crash fails the whole op
        (clients resubmit, per §3.6)."""
        response, _instance = yield from self.fs.platform.invoke(deployment, request)
        if not response.ok:
            raise FsError(f"offloaded batch failed: {response.error}")
        return response.value

    def _apply_root(
        self, request: MetadataRequest, root_path: str, root: INode, span=None
    ) -> Generator:
        """Final phase: apply the root-level change."""

        def body(txn):
            if request.op is OpType.DELETE:
                parent_path, name = split(root_path)
                resolved = yield from self.fs.ops.resolve(txn, parent_path)
                parent = resolved[parent_path]
                yield from txn.delete(dirent_key(parent.id, name))
                yield from txn.delete(inode_key(root.id))
                return True
            moved, _resolved = yield from self.fs.ops.mv_single(
                txn, root_path, normalize(request.dst_path)
            )
            return moved

        return (
            yield from self.fs.store.run_transaction(
                body, label="subtree apply", trace_parent=span
            )
        )

    def _release_subtree_flag(self, root: INode, span=None) -> Generator:
        def body(txn):
            yield from txn.delete(("st_lock", root.id))

        yield from self.fs.store.run_transaction(
            body, label="subtree unflag", trace_parent=span
        )
