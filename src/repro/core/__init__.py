"""λFS: the serverless metadata service (the paper's contribution).

Public surface:

* :class:`LambdaFS` — wires the FaaS platform, persistent store,
  Coordinator and deployments into a running metadata service.
* :class:`LambdaFSClient` — the client library: namespace
  partitioning, hybrid TCP/HTTP RPC with randomized replacement,
  straggler mitigation, anti-thrashing, and transparent retry.
* :class:`LambdaNameNode` — the serverless NameNode application that
  executes inside FaaS function instances.
"""

from repro.core.autoscaling import AutoScalingModel, concurrency_bound, desired_scale
from repro.core.client import ClientConfig, LambdaFSClient
from repro.core.errors import (
    AlreadyExistsError,
    FsError,
    NotADirectoryError,
    NotDirEmptyError,
    NotFoundError,
)
from repro.core.fs import LambdaFS, LambdaFSConfig
from repro.core.messages import MetadataRequest, MetadataResponse, OpType
from repro.core.namenode import LambdaNameNode, NameNodeConfig

__all__ = [
    "AlreadyExistsError",
    "AutoScalingModel",
    "ClientConfig",
    "FsError",
    "LambdaFS",
    "LambdaFSClient",
    "LambdaFSConfig",
    "LambdaNameNode",
    "MetadataRequest",
    "MetadataResponse",
    "NameNodeConfig",
    "NotADirectoryError",
    "NotDirEmptyError",
    "NotFoundError",
    "OpType",
    "concurrency_bound",
    "desired_scale",
]
