"""Serverless-compatible DFS maintenance (§1, §3).

Serverful NameNodes hold open heartbeat connections to DataNodes;
serverless NameNodes cannot (they come and go).  λFS re-implements
block reports and DataNode discovery by having DataNodes publish
their reports to the persistent metadata store on a regular
interval; NameNodes read the published rows when they need a fresh
view of the data layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.metastore.errors import TransactionAborted
from repro.metastore.ndb import NdbStore
from repro.sim import Environment


@dataclass(frozen=True)
class DataNodeConfig:
    count: int = 4
    report_interval_ms: float = 3_000.0
    blocks_per_report: int = 64


@dataclass
class BlockReport:
    """One published DataNode report row."""

    datanode_id: str
    published_at_ms: float
    block_count: int
    healthy: bool = True


class DataNodeService:
    """Simulated DataNodes publishing reports into the store."""

    def __init__(
        self,
        env: Environment,
        store: NdbStore,
        config: DataNodeConfig | None = None,
    ) -> None:
        self.env = env
        self.store = store
        self.config = config or DataNodeConfig()
        self.datanode_ids: List[str] = [
            f"dn{index}" for index in range(self.config.count)
        ]
        self._started = False
        self.reports_published = 0
        self.reports_dropped = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for datanode_id in self.datanode_ids:
            self.env.process(self._report_loop(datanode_id))

    def _report_loop(self, datanode_id: str) -> Generator:
        while True:
            report = BlockReport(
                datanode_id=datanode_id,
                published_at_ms=self.env.now,
                block_count=self.config.blocks_per_report,
            )

            def body(txn, row=report):
                yield from txn.write(("datanode", row.datanode_id), row)

            try:
                yield from self.store.run_transaction(body)
            except TransactionAborted:
                # The store can stay unreachable past the txn retry
                # budget (shard outage, open circuit breaker).  A block
                # report is periodic soft state — drop this edition and
                # publish a fresh one next interval instead of letting
                # the reporter process die with the exception.
                self.reports_dropped += 1
            else:
                self.reports_published += 1
            yield self.env.timeout(self.config.report_interval_ms)
