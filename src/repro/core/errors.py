"""File-system errors surfaced to clients."""


class FsError(Exception):
    """Base class for namespace operation failures."""


class NotFoundError(FsError):
    """A path component does not exist."""


class AlreadyExistsError(FsError):
    """The target path already exists."""


class NotADirectoryError(FsError):
    """A non-directory appears where a directory is required."""


class NotDirEmptyError(FsError):
    """A non-recursive delete hit a non-empty directory."""


class AccessDeniedError(FsError):
    """Permission bits forbid the requested access."""
