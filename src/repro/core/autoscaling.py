"""The agile auto-scaling model of Figure 6 (§3.4).

Two knobs control the degree of scale-out:

* **fine-grained** — the HTTP-TCP replacement probability: each TCP
  RPC is replaced by an HTTP RPC with probability *p* (empirically
  p ≤ 1 % performs best), so the FaaS platform keeps seeing a load
  signal proportional to traffic;
* **coarse-grained** — the per-instance ``ConcurrencyLevel``: how
  many concurrent HTTP RPCs one instance absorbs before the platform
  provisions another.

The expected number of NameNodes and the platform's resource
upper-bound follow the equations in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass


def desired_scale(num_deployments: int, replace_probability: float, alpha: float) -> float:
    """Expected scale-out: ``NumDeployments + TcpHttpReplace% × α``.

    ``alpha`` encodes the load level (requests/sec and concurrency).
    Must be ≥ the deployment count, which also determines how the
    namespace is partitioned.
    """
    if num_deployments < 1:
        raise ValueError("NumDeployments must be >= 1")
    if not 0.0 <= replace_probability <= 1.0:
        raise ValueError("replacement probability must be in [0, 1]")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    return num_deployments + replace_probability * alpha


def concurrency_bound(
    cluster_cpu: float,
    per_namenode_cpu: float,
    cluster_ram_gb: float,
    per_namenode_ram_gb: float,
) -> float:
    """Upper bound on NameNode count from platform resources:
    ``MIN(ClusterCPU / PerNameNodeCPU, ClusterRAM / PerNameNodeRAM)``."""
    if min(per_namenode_cpu, per_namenode_ram_gb) <= 0:
        raise ValueError("per-NameNode resources must be positive")
    return min(
        cluster_cpu / per_namenode_cpu,
        cluster_ram_gb / per_namenode_ram_gb,
    )


@dataclass(frozen=True)
class AutoScalingModel:
    """Bundled Figure 6 model, for planning experiments."""

    num_deployments: int
    replace_probability: float
    cluster_cpu: float
    per_namenode_cpu: float
    cluster_ram_gb: float
    per_namenode_ram_gb: float

    def expected_namenodes(self, alpha: float) -> float:
        """Expected scale, clipped at the resource upper bound."""
        expected = desired_scale(self.num_deployments, self.replace_probability, alpha)
        bound = concurrency_bound(
            self.cluster_cpu,
            self.per_namenode_cpu,
            self.cluster_ram_gb,
            self.per_namenode_ram_gb,
        )
        return min(expected, bound)
