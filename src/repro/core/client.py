"""The λFS client library (§3.2, §3.4, Appendices B & C).

Clients route each metadata RPC to the deployment owning the target
path, preferring direct TCP connections and falling back to HTTP
invocations through the FaaS gateway.  Three client-side mechanisms
from the paper live here:

* **randomized HTTP-TCP replacement** — each TCP-eligible RPC is
  issued over HTTP instead with probability *p* (default ≤ 1 %), the
  fine-grained auto-scaling signal of §3.4;
* **straggler mitigation** (Appendix B) — requests taking longer than
  ``threshold ×`` a moving-window average latency are cancelled and
  resubmitted to another NameNode;
* **anti-thrashing mode** (Appendix C) — when latency spikes past a
  multiple of the moving average, the client stops issuing HTTP
  invocations (suppressing further scale-out) until things recover.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Deque, Generator, Optional

from repro.core.messages import MetadataRequest, OpType
from repro.faas.platform import InstanceTerminated
from repro.resilience.primitives import attempt_timeout_ms
from repro.rpc.connections import ConnectionDropped
from repro.rpc.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fs import LambdaFS
    from repro.rpc.connections import ClientVM, TcpServer


class RequestTimeout(Exception):
    """An RPC did not complete within its budget."""


@dataclass(frozen=True)
class ClientConfig:
    replacement_probability: float = 0.01
    """HTTP-TCP replacement probability (§3.4; best ≤ 1 %)."""
    http_timeout_ms: float = 30_000.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    straggler_enabled: bool = True
    straggler_threshold: float = 10.0
    """Resubmit when latency ≥ threshold × moving average (App. B)."""
    straggler_floor_ms: float = 50.0
    """Never flag requests faster than this as stragglers."""
    straggler_reserve: int = 2
    """Final attempts that run without the straggler watchdog: when
    the whole system is saturated, resubmitting forever never
    finishes, so the tail of the attempt budget waits requests out."""
    latency_window: int = 64
    antithrash_enabled: bool = True
    antithrash_threshold: float = 2.5
    """Enter anti-thrashing mode past this multiple of the moving
    average (App. C: T between 2–3 performs best)."""
    antithrash_cooldown_ms: float = 5_000.0

    @property
    def max_attempts(self) -> int:
        """Attempt limit, derived from :class:`RetryPolicy` — the
        single source of truth (there used to be a second, conflicting
        constant here)."""
        return self.retry.max_attempts

    @property
    def straggler_attempt_cutoff(self) -> int:
        """Attempts below this run with the straggler watchdog."""
        return self.retry.max_attempts - self.straggler_reserve


class LambdaFSClient:
    """One DFS client process endpoint."""

    _ids = count(1)

    def __init__(self, fs: "LambdaFS", vm: "ClientVM") -> None:
        self.fs = fs
        self.vm = vm
        self.server: "TcpServer" = vm.assign_server()
        self.config = fs.config.client
        self.id = f"client{next(self._ids)}"
        #: Tenant this client issues ops for (multi-tenant mode).
        #: None (the default) leaves spans and metrics exactly as in
        #: single-tenant runs — no extra attrs, no extra series.
        self.tenant: Optional[str] = None
        self._rng = fs.rngs.stream(f"client:{self.id}")
        #: Resilience control plane, or None (byte-identical hot path).
        self._res = fs.resilience
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)
        self._antithrash_until = -float("inf")
        self.stats_stragglers = 0
        self.stats_http_rpcs = 0
        self.stats_tcp_rpcs = 0
        self.stats_retries = 0
        self.stats_antithrash_entries = 0

    # -- public API ------------------------------------------------------
    def create_file(self, path: str) -> Generator:
        return (yield from self.execute(OpType.CREATE_FILE, path))

    def mkdirs(self, path: str) -> Generator:
        return (yield from self.execute(OpType.MKDIRS, path))

    def read_file(self, path: str) -> Generator:
        return (yield from self.execute(OpType.READ_FILE, path))

    def stat(self, path: str) -> Generator:
        return (yield from self.execute(OpType.STAT, path))

    def ls(self, path: str) -> Generator:
        return (yield from self.execute(OpType.LS, path))

    def delete(self, path: str, recursive: bool = False) -> Generator:
        return (yield from self.execute(OpType.DELETE, path, recursive=recursive))

    def mv(self, src: str, dst: str) -> Generator:
        return (yield from self.execute(OpType.MV, src, dst_path=dst))

    def set_permission(self, path: str, mode: int) -> Generator:
        return (yield from self.execute(OpType.SET_PERMISSION, path, payload=mode))

    def write_block(self, path: str) -> Generator:
        """HDFS-style data write: resolve metadata, then pipeline chunks.

        The metadata op (a READ_FILE resolving the inode and block
        ids) goes through the normal RPC path; the data then streams
        through the attached DataNode fleet's replica pipelines, one
        per block.  With no fleet attached this degrades to the plain
        metadata read — byte-identical to the pre-data-plane path.
        """
        response = yield from self.read_file(path)
        fleet = self.fs.datanode_fleet
        if fleet is None or not response.ok:
            return response
        view = response.value or {}
        inode = view.get("inode") if isinstance(view, dict) else None
        for block_id in getattr(inode, "block_ids", ()) or ():
            yield from fleet.client_write(block_id, actor=self.id)
        return response

    def execute(
        self,
        op: OpType,
        path: str,
        dst_path: Optional[str] = None,
        recursive: bool = False,
        payload=None,
    ) -> Generator:
        """Issue one metadata operation; returns the response."""
        env = self.fs.env
        start = env.now
        request = MetadataRequest(
            op=op,
            path=path,
            dst_path=dst_path,
            recursive=recursive,
            client_id=self.id,
            tcp_servers=tuple(self.vm.servers),
            payload=payload,
        )
        res = self._res
        if res is not None:
            # Stamping is observational (a float riding the request) and
            # stays on even when the ``disable_shedding`` latch stands
            # the *enforcement* down — that is how the noshed twin's
            # deadline violations remain detectable.
            res.stamp(request)
        deployment = self.fs.partitioner.deployment_for(path)
        tracer = env.tracer
        op_span = None
        if tracer is not None:
            if self.tenant is None:
                op_span = tracer.begin(
                    "client.op", self.id, op=op.value, path=path,
                    request_id=request.request_id,
                )
            else:
                op_span = tracer.begin(
                    "client.op", self.id, op=op.value, path=path,
                    request_id=request.request_id, tenant=self.tenant,
                )
        try:
            response, via, cache_hit = yield from self._submit(
                request, deployment, op_span
            )
        except BaseException:
            if tracer is not None:
                tracer.end(op_span, ok=False)
            raise
        if tracer is not None:
            tracer.end(op_span, ok=response.ok, via=via, cache_hit=cache_hit)
        latency = env.now - start
        self._observe(latency)
        metrics = env.metrics
        if metrics is not None:
            metrics.inc("ops_total", op=op.value)
            if not response.ok:
                metrics.inc("ops_failed_total", op=op.value)
            metrics.observe("op_latency_ms", latency, op=op.value)
            tenant = self.tenant
            if tenant is not None:
                # Separate tenant_* families (not tenant labels on the
                # fleet-global ones): the chaos verifier sums every
                # series in a family, so labelled duplicates would
                # double-count each op in the recovery-SLO gate.
                metrics.inc("tenant_ops_total", op=op.value, tenant=tenant)
                if not response.ok:
                    metrics.inc("tenant_ops_failed_total", tenant=tenant)
                metrics.observe("tenant_op_latency_ms", latency, tenant=tenant)
                if cache_hit:
                    metrics.inc("tenant_cache_hits_total", tenant=tenant)
                else:
                    metrics.inc("tenant_cache_misses_total", tenant=tenant)
        self.fs.metrics.record(
            op=op.value, start_ms=start, end_ms=env.now,
            ok=response.ok, via=via, cache_hit=cache_hit,
        )
        return response

    # -- submission ------------------------------------------------------
    def _submit(
        self, request: MetadataRequest, deployment: str, op_span=None
    ) -> Generator:
        env = self.fs.env
        tracer = env.tracer
        metrics = env.metrics
        attempt = 0
        resubmit_of = None
        while True:
            attempt += 1
            request.attempt = attempt
            res = self._res
            res_on = res is not None and res.active
            breaker = None
            if res_on:
                if res.expired(request):
                    # The op's end-to-end budget is gone: give up at
                    # the source rather than feeding dead work in.
                    res.note_deadline_expired(request, "client", self.id)
                    raise RequestTimeout(
                        f"deadline exceeded after {attempt - 1} attempts"
                    )
                breaker = res.breaker("client", deployment)
                if not breaker.allow(env.now):
                    res.breaker_rejected("client")
                    if attempt >= self.config.max_attempts:
                        raise RequestTimeout(
                            f"breaker open for {deployment}"
                        )
                    wait = breaker.retry_after_ms(env.now)
                    if wait <= 0.0:
                        wait = self.config.retry.full_jitter_delay(
                            attempt, self._rng
                        )
                    deadline = request.deadline_ms
                    if deadline is not None:
                        wait = min(wait, max(0.0, deadline - env.now))
                    yield env.timeout(wait)
                    continue
            connection = yield from self.vm.find_shared(
                deployment, self.server, trace_parent=op_span
            )
            use_tcp = connection is not None and (
                self._antithrash_active()
                or self._rng.random() >= self.config.replacement_probability
            )
            rpc_span = None
            if tracer is not None:
                link = {} if resubmit_of is None else {"resubmit_of": resubmit_of}
                rpc_span = tracer.begin(
                    "rpc.tcp" if use_tcp else "rpc.http", self.id,
                    parent=op_span, attempt=attempt, deployment=deployment,
                    **link,
                )
                request.trace_parent = rpc_span.span_id
            try:
                if metrics is not None:
                    metrics.inc(
                        "rpc_requests_total",
                        transport="tcp" if use_tcp else "http",
                    )
                if use_tcp:
                    self.stats_tcp_rpcs += 1
                    response = yield from self._tcp_call(connection, request)
                else:
                    self.stats_http_rpcs += 1
                    response = yield from self._http_call(request, deployment)
                if res_on and response.shed:
                    # Explicit pushback from a downstream hop: a
                    # breaker failure signal, and a budgeted retry if
                    # the op is still alive.
                    breaker.record_failure(env.now)
                    if tracer is not None:
                        tracer.end(rpc_span, ok=False, error="Shed")
                        resubmit_of = rpc_span.span_id
                    retry = (
                        attempt < self.config.max_attempts
                        and not res.expired(request)
                    )
                    if retry and not res.budget(self.id).try_spend():
                        res.budget_exhausted()
                        retry = False
                    if retry:
                        self.stats_retries += 1
                        if metrics is not None:
                            metrics.inc("rpc_retries_total", error="Shed")
                        yield from self._backoff(request, attempt, op_span)
                        continue
                    return response, "tcp" if use_tcp else "http", False
                if res_on:
                    breaker.record_success(env.now)
                    res.budget(self.id).refill()
                if tracer is not None:
                    tracer.end(rpc_span, ok=response.ok)
                return response, "tcp" if use_tcp else "http", response.cache_hit
            except (ConnectionDropped, InstanceTerminated, RequestTimeout) as exc:
                self.stats_retries += 1
                if res_on:
                    breaker.record_failure(env.now)
                if metrics is not None:
                    metrics.inc("rpc_retries_total", error=type(exc).__name__)
                if tracer is not None:
                    tracer.end(rpc_span, ok=False, error=type(exc).__name__)
                    # Resubmission linkage: the next attempt's span
                    # carries this failed span's id as resubmit_of.
                    resubmit_of = rpc_span.span_id
                    tracer.point(
                        "rpc.retry", self.id, parent=op_span,
                        attempt=attempt, error=type(exc).__name__,
                        resubmit_of=resubmit_of,
                    )
                if attempt >= self.config.max_attempts:
                    raise
                if res_on:
                    if res.expired(request):
                        # No budget left for another attempt — let the
                        # deadline check at the loop top account it.
                        continue
                    if not res.budget(self.id).try_spend():
                        res.budget_exhausted()
                        raise
                if not use_tcp:
                    # HTTP resubmission storms are dangerous (§3.2):
                    # back off exponentially with jitter.
                    yield from self._backoff(request, attempt, op_span)
                # A dropped TCP connection retries immediately: the
                # next find_shared scans sibling servers, and the HTTP
                # fallback kicks in if nothing is connected.

    def _backoff(self, request: MetadataRequest, attempt: int, op_span) -> Generator:
        """Full-jitter backoff before retry ``attempt + 1``.

        Full jitter (uniform over [0, capped exponential]) rather than
        the legacy centred jitter: decorrelating a fleet of retriers
        is exactly what §3.2's backoff exists for.  With a deadline,
        the sleep never extends past the op's remaining budget.
        """
        env = self.fs.env
        backoff = self.config.retry.full_jitter_delay(attempt, self._rng)
        res = self._res
        if res is not None and res.active and request.deadline_ms is not None:
            backoff = min(backoff, max(0.0, request.deadline_ms - env.now))
        if env.metrics is not None:
            env.metrics.inc("rpc_backoff_ms_total", backoff)
        backoff_span = None
        tracer = env.tracer
        if tracer is not None:
            backoff_span = tracer.begin(
                "client.backoff", self.id, parent=op_span,
                attempt=attempt, backoff_ms=backoff,
                **self.config.retry.as_attrs(),
            )
        yield env.timeout(backoff)
        if tracer is not None:
            tracer.end(backoff_span)

    def _tcp_call(self, connection, request: MetadataRequest) -> Generator:
        """Direct TCP RPC with straggler mitigation (Appendix B).

        The watchdog is dropped for the last retry attempts: when the
        whole system is saturated (not just one NameNode), resubmitting
        forever would never finish, so the client eventually waits the
        request out.
        """
        env = self.fs.env
        call = env.process(connection.call(request))
        watchdog = (
            self.config.straggler_enabled
            and request.attempt < self.config.straggler_attempt_cutoff
        )
        if not watchdog:
            response = yield call
            return response
        threshold = max(
            self.config.straggler_floor_ms,
            self.config.straggler_threshold * self._moving_average(),
        )
        timer = env.timeout(threshold)
        outcome = yield call | timer
        if call in outcome:
            return outcome[call]
        # Straggler: abandon this request and resubmit elsewhere.
        self.stats_stragglers += 1
        if env.metrics is not None:
            env.metrics.inc("client_stragglers_total")
        call.defused()
        raise RequestTimeout(f"straggler after {threshold:.1f} ms")

    def _http_call(self, request: MetadataRequest, deployment: str) -> Generator:
        """HTTP invocation through the FaaS API gateway."""
        env = self.fs.env
        latency = self.fs.latency
        yield env.timeout(latency.http_oneway() + latency.gateway())
        chaos = env.chaos
        if chaos is not None:
            extra, shed = chaos.gateway_effects()
            if extra > 0.0:
                yield env.timeout(extra)
            if shed:
                # Gateway brownout: the request never reaches the
                # invoker; the caller's backoff-retry loop handles it.
                if env.tracer is not None:
                    env.tracer.point(
                        "chaos.gateway_shed", self.id,
                        parent=request.trace_parent, deployment=deployment,
                    )
                raise RequestTimeout(f"gateway shed invoke of {deployment}")
        timeout_ms = self.config.http_timeout_ms
        res = self._res
        if res is not None and res.active and request.deadline_ms is not None:
            # Budget-sized attempt timeout instead of the fixed 30 s:
            # a dying op stops waiting long before its transport does.
            timeout_ms = attempt_timeout_ms(
                res.config, request.deadline_ms, env.now, timeout_ms
            )
            if timeout_ms <= 0.0:
                raise RequestTimeout("deadline exhausted before invoke")
        invoke = env.process(self.fs.platform.invoke(deployment, request))
        timer = env.timeout(timeout_ms)
        outcome = yield invoke | timer
        if invoke not in outcome:
            invoke.defused()
            raise RequestTimeout(f"HTTP invoke of {deployment} timed out")
        response, _instance = outcome[invoke]
        yield env.timeout(latency.http_oneway())
        return response

    # -- adaptive state -------------------------------------------------------
    def _moving_average(self) -> float:
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def _observe(self, latency_ms: float) -> None:
        average = self._moving_average()
        self._latencies.append(latency_ms)
        if (
            self.config.antithrash_enabled
            and average > 0
            and latency_ms >= self.config.antithrash_threshold * average
        ):
            if not self._antithrash_active():
                # Count entries (not extensions): a spike during an
                # active cooldown merely prolongs it.
                self.stats_antithrash_entries += 1
                if self.fs.env.metrics is not None:
                    self.fs.env.metrics.inc("client_antithrash_entries_total")
            self._antithrash_until = (
                self.fs.env.now + self.config.antithrash_cooldown_ms
            )

    def _antithrash_active(self) -> bool:
        return self.config.antithrash_enabled and (
            self.fs.env.now < self._antithrash_until
        )
