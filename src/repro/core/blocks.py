"""Block management: allocation, placement, and report reconciliation.

HDFS files are sequences of replicated blocks; the NameNode maps
block ids to the DataNodes holding replicas.  In λFS this state is
derived from the persistent store instead of in-NameNode soft state:
placement is a deterministic rendezvous over the DataNodes that are
currently publishing reports (§3.6, Fig. 2 "Block Operations"), so
any NameNode instance — fresh or warm — computes the same locations
without holding DataNode connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Sequence, Tuple

from repro._util import stable_hash


@dataclass(frozen=True)
class BlockPlacementConfig:
    replication: int = 3
    blocks_per_file: int = 1
    """New files get this many initial blocks (HDFS allocates on
    write; metadata benchmarks create empty-ish files)."""


class BlockManager:
    """Allocates block ids and computes replica placement."""

    def __init__(self, config: BlockPlacementConfig | None = None) -> None:
        self.config = config or BlockPlacementConfig()
        self._ids = count(1)

    def allocate(self) -> Tuple[int, ...]:
        """Block ids for one new file."""
        return tuple(
            next(self._ids) for _ in range(self.config.blocks_per_file)
        )

    def place(self, block_id: int, datanodes: Sequence[str]) -> List[str]:
        """Replica DataNodes for ``block_id`` (rendezvous hashing).

        Deterministic in (block id, live DataNode set): every
        NameNode instance computes identical placements from the
        published reports, with no coordination.
        """
        if not datanodes:
            return []
        ranked = sorted(
            datanodes,
            key=lambda dn: stable_hash((block_id, dn)),
        )
        return ranked[: min(self.config.replication, len(ranked))]

    def locations(
        self, block_ids: Sequence[int], datanodes: Sequence[str]
    ) -> Dict[int, List[str]]:
        """Placement map for a whole file."""
        return {
            block_id: self.place(block_id, datanodes)
            for block_id in block_ids
        }

    def reconcile(
        self,
        block_ids: Sequence[int],
        reported: Dict[str, int],
        datanodes: Sequence[str],
    ) -> Dict[int, List[str]]:
        """Filter placements to DataNodes whose reports are live.

        ``reported`` maps DataNode id to its latest report count; a
        DataNode missing from it is treated as dead and dropped from
        placements (the block-map consistency role of block reports).
        """
        live = [dn for dn in datanodes if dn in reported]
        return self.locations(block_ids, live)
