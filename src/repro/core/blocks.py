"""Block management: allocation, placement, and report reconciliation.

HDFS files are sequences of replicated blocks; the NameNode maps
block ids to the DataNodes holding replicas.  In λFS this state is
derived from the persistent store instead of in-NameNode soft state:
placement is a deterministic rendezvous over the DataNodes that are
currently publishing reports (§3.6, Fig. 2 "Block Operations"), so
any NameNode instance — fresh or warm — computes the same locations
without holding DataNode connections.

Rack awareness: when the caller knows each DataNode's rack,
:func:`rack_aware_place` spreads replicas across racks (HDFS's
write-one-rack-survives-a-rack-loss policy) while staying layered on
the same rendezvous ranking, so placements remain deterministic in
(block id, live DataNode set) and minimally disturbed by membership
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._util import stable_hash


@dataclass(frozen=True)
class BlockPlacementConfig:
    replication: int = 3
    blocks_per_file: int = 1
    """New files get this many initial blocks (HDFS allocates on
    write; metadata benchmarks create empty-ish files)."""


def rendezvous_rank(block_id: int, datanodes: Sequence[str]) -> List[str]:
    """DataNodes ordered by rendezvous hash for ``block_id``."""
    return sorted(datanodes, key=lambda dn: stable_hash((block_id, dn)))


def rack_aware_place(
    block_id: int,
    racks: Mapping[str, str],
    replication: int,
) -> List[str]:
    """Replica targets for ``block_id`` over rack-labelled DataNodes.

    Two passes over the rendezvous ranking: first take at most one
    DataNode per rack (rack spread), then fill any remaining slots in
    rank order.  With ≥2 live racks and ``replication`` ≥ 2 the result
    always spans min(replication, live racks) distinct racks, and a
    single membership change moves at most one replica (the rendezvous
    minimal-disruption property survives the rack constraint).
    """
    ranked = rendezvous_rank(block_id, list(racks))
    want = min(replication, len(ranked))
    chosen: List[str] = []
    used_racks = set()
    for dn in ranked:
        if racks[dn] not in used_racks:
            chosen.append(dn)
            used_racks.add(racks[dn])
            if len(chosen) == want:
                return chosen
    for dn in ranked:
        if dn not in chosen:
            chosen.append(dn)
            if len(chosen) == want:
                break
    return chosen


class BlockManager:
    """Allocates block ids and computes replica placement.

    The id counter is explicit, per-manager state: it starts at
    ``first_id`` and is exposed via :meth:`snapshot`/:meth:`restore`
    so replayed runs resume exactly where they left off, and two
    managers coexisting in one simulation can be given disjoint id
    spaces instead of silently colliding.
    """

    def __init__(
        self,
        config: BlockPlacementConfig | None = None,
        first_id: int = 1,
    ) -> None:
        if first_id < 1:
            raise ValueError("first_id must be >= 1")
        self.config = config or BlockPlacementConfig()
        self._next_id = int(first_id)

    def allocate(self) -> Tuple[int, ...]:
        """Block ids for one new file."""
        start = self._next_id
        self._next_id = start + self.config.blocks_per_file
        return tuple(range(start, self._next_id))

    # -- counter state (seeded/replayable) ----------------------------
    def snapshot(self) -> int:
        """The next id this manager would allocate (replay state)."""
        return self._next_id

    def restore(self, state: int) -> None:
        """Rewind/advance the counter to a :meth:`snapshot` value."""
        if int(state) < 1:
            raise ValueError("snapshot state must be >= 1")
        self._next_id = int(state)

    def place(
        self,
        block_id: int,
        datanodes: Sequence[str],
        racks: Optional[Mapping[str, str]] = None,
    ) -> List[str]:
        """Replica DataNodes for ``block_id`` (rendezvous hashing).

        Deterministic in (block id, live DataNode set): every
        NameNode instance computes identical placements from the
        published reports, with no coordination.  With ``racks``
        (DataNode id → rack label) the placement is additionally
        rack-spread via :func:`rack_aware_place`.
        """
        if racks is not None:
            live = {dn: racks[dn] for dn in datanodes if dn in racks}
            return rack_aware_place(block_id, live, self.config.replication)
        if not datanodes:
            return []
        ranked = rendezvous_rank(block_id, datanodes)
        return ranked[: min(self.config.replication, len(ranked))]

    def locations(
        self, block_ids: Sequence[int], datanodes: Sequence[str]
    ) -> Dict[int, List[str]]:
        """Placement map for a whole file."""
        return {
            block_id: self.place(block_id, datanodes)
            for block_id in block_ids
        }

    def reconcile(
        self,
        block_ids: Sequence[int],
        reported: Dict[str, int],
        datanodes: Sequence[str],
    ) -> Dict[int, List[str]]:
        """Filter placements to DataNodes whose reports are live.

        ``reported`` maps DataNode id to its latest report count; a
        DataNode missing from it is treated as dead and dropped from
        placements (the block-map consistency role of block reports).
        """
        live = [dn for dn in datanodes if dn in reported]
        return self.locations(block_ids, live)
