"""Namespace operations executed as transactions against the store.

This layer is shared by every MDS in the repository: λFS NameNodes,
HopsFS NameNodes (stateless and cached), and — through an adapter —
the IndexFS port.  All methods are generators executed inside a
simulation process; they charge the store for row accesses and take
row locks, so contention effects (hot directories, writer
serialization) are emergent rather than scripted.

Path resolution mirrors HopsFS: the INode hint cache makes the
primary keys along a path known in advance, so resolution costs one
*batched* primary-key read instead of one round trip per component
(§2, "INode Hint Cache").  Stale hints are detected against the
locked authoritative rows and retried.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.core.errors import (
    AccessDeniedError,
    AlreadyExistsError,
    NotADirectoryError,
    NotDirEmptyError,
    NotFoundError,
)
from repro.metastore.ndb import NdbStore, Transaction
from repro.namespace.inode import (
    INode,
    ROOT_INODE_ID,
    dirent_key,
    dirent_prefix,
    inode_key,
)
from repro.namespace.paths import (
    components,
    is_descendant,
    join,
    normalize,
    parent_of,
    split,
)


class IdAllocator:
    """Monotonic INode id allocation.

    HopsFS pre-allocates id ranges per NameNode from NDB so that id
    assignment is never a bottleneck; we model that by making
    allocation free of simulated time.
    """

    def __init__(self, start: int = ROOT_INODE_ID + 1) -> None:
        self._ids = count(start)

    def next_id(self) -> int:
        return next(self._ids)


class NamespaceOps:
    """Namespace operation implementations over an :class:`NdbStore`."""

    def __init__(
        self,
        store: NdbStore,
        allocator: Optional[IdAllocator] = None,
        blocks: Optional["BlockManager"] = None,
    ) -> None:
        from repro.core.blocks import BlockManager

        self.store = store
        self.allocator = allocator or IdAllocator()
        self.blocks = blocks or BlockManager()

    # -- bootstrap ----------------------------------------------------
    def format(self) -> None:
        """Install the root directory (instantaneous, setup only)."""
        self.store.load_bulk({inode_key(ROOT_INODE_ID): INode.root()})

    def install_paths(self, directories: List[str], files: List[str]) -> None:
        """Bulk-create a namespace off the simulated clock (setup).

        Experiments pre-create their directory trees; doing this
        through timed transactions would only burn wall-clock time.
        """
        rows: Dict[tuple, object] = {}
        ids: Dict[str, int] = {"/": ROOT_INODE_ID}

        def ensure_dir(path: str) -> int:
            path = normalize(path)
            if path in ids:
                return ids[path]
            parent, name = split(path)
            parent_id = ensure_dir(parent)
            new_id = self.allocator.next_id()
            ids[path] = new_id
            rows[inode_key(new_id)] = INode(
                id=new_id, parent_id=parent_id, name=name, is_dir=True
            )
            rows[dirent_key(parent_id, name)] = new_id
            return new_id

        for directory in directories:
            ensure_dir(directory)
        for file_path in files:
            parent, name = split(file_path)
            parent_id = ensure_dir(parent)
            new_id = self.allocator.next_id()
            rows[inode_key(new_id)] = INode(
                id=new_id, parent_id=parent_id, name=name, is_dir=False,
                block_ids=self.blocks.allocate(),
            )
            rows[dirent_key(parent_id, name)] = new_id
        self.store.load_bulk(rows)

    # -- resolution ----------------------------------------------------
    def resolve(
        self,
        txn: Transaction,
        path: str,
        known: Optional[Dict[str, INode]] = None,
        exclusive_paths: Iterable[str] = (),
    ) -> Generator:
        """Resolve every INode along ``path``.

        ``known`` supplies already-trusted INodes (from a NameNode's
        local cache); only the missing suffix is fetched, in one
        batched read.  ``exclusive_paths`` names components this
        transaction intends to modify: their rows are locked in write
        mode *up front* (HopsFS-style lock strength planning — taking
        shared locks and upgrading later deadlocks under concurrent
        writers).  Returns ``{path: INode}`` for every component
        including the root.  Raises :class:`NotFoundError` if any
        component is missing and :class:`NotADirectoryError` if a file
        shows up mid-path.
        """
        path = normalize(path)
        known = dict(known or {})
        strong_paths = {normalize(p) for p in exclusive_paths}
        for attempt in range(3):
            resolved, keys_needed, strong_keys = self._plan_resolution(
                txn, path, known, strong_paths
            )
            if not keys_needed:
                self._validate_chain(path, resolved)
                return resolved
            rows = yield from txn.read_many(keys_needed, exclusive_keys=strong_keys)
            fresh, stale = self._merge_rows(txn, path, resolved, rows)
            if not stale:
                self._validate_chain(path, fresh)
                return fresh
            known = {}  # hints were stale: re-walk from the store
        raise NotFoundError(f"resolution of {path!r} kept racing")

    def _plan_resolution(
        self,
        txn: Transaction,
        path: str,
        known: Dict[str, INode],
        strong_paths: Optional[set] = None,
    ) -> Tuple[Dict[str, INode], List[tuple], List[tuple]]:
        """Walk hints to find which primary keys must be fetched."""
        strong_paths = strong_paths or set()
        resolved: Dict[str, INode] = {}
        keys: List[tuple] = []
        strong_keys: List[tuple] = []
        current = "/"
        root = known.get("/")
        if root is not None:
            resolved["/"] = root
            parent_id: Optional[int] = root.id
        else:
            keys.append(inode_key(ROOT_INODE_ID))
            if "/" in strong_paths:
                strong_keys.append(inode_key(ROOT_INODE_ID))
            parent_id = ROOT_INODE_ID
        for part in components(path):
            current = join(current, part)
            cached = known.get(current)
            if cached is not None and cached.parent_id == parent_id:
                resolved[current] = cached
                parent_id = cached.id
                continue
            # Hint-cache walk: peek the dirent to learn the child id.
            child_id = txn._visible(dirent_key(parent_id, part)) if parent_id is not None else None
            keys.append(dirent_key(parent_id, part))
            if current in strong_paths:
                strong_keys.append(dirent_key(parent_id, part))
            if child_id is None:
                # Unknown beyond here; fetch what we listed and let the
                # merge step report NotFound if the row truly misses.
                break
            keys.append(inode_key(child_id))
            if current in strong_paths:
                strong_keys.append(inode_key(child_id))
            parent_id = child_id
        return resolved, keys, strong_keys

    def _merge_rows(
        self,
        txn: Transaction,
        path: str,
        resolved: Dict[str, INode],
        rows: Dict[tuple, object],
    ) -> Tuple[Dict[str, INode], bool]:
        """Re-walk the path against locked rows; detect stale hints."""
        merged = dict(resolved)
        parent_id = ROOT_INODE_ID
        current = "/"
        if "/" not in merged:
            root = rows.get(inode_key(ROOT_INODE_ID)) or txn._visible(
                inode_key(ROOT_INODE_ID)
            )
            if root is None:
                raise NotFoundError("namespace is not formatted (no root)")
            merged["/"] = root
        for part in components(path):
            current = join(current, part)
            if current in merged:
                parent_id = merged[current].id
                continue
            dkey = dirent_key(parent_id, part)
            if dkey in rows:
                child_id = rows[dkey]
            else:
                return merged, True  # hint walk missed this key: stale
            if child_id is None:
                raise NotFoundError(f"{current!r} does not exist")
            ikey = inode_key(child_id)
            inode = rows.get(ikey)
            if inode is None:
                inode = txn._visible(ikey)
                if inode is None or inode.parent_id != parent_id:
                    return merged, True
            merged[current] = inode
            parent_id = child_id
        return merged, False

    def resolve_prefix(
        self,
        txn: Transaction,
        path: str,
        known: Optional[Dict[str, INode]] = None,
    ) -> Generator:
        """Resolve the longest *existing* prefix of ``path``.

        Like :meth:`resolve` but never raises on missing components:
        returns ``{path: INode}`` for root plus every component that
        exists, in a single batched read.  Used by ``mkdirs`` to find
        the deepest existing ancestor in one store round trip.
        """
        path = normalize(path)
        known = dict(known or {})
        resolved, keys, _strong = self._plan_resolution(txn, path, known, set())
        if keys:
            rows = yield from txn.read_many(keys)
        else:
            rows = {}
        merged = dict(resolved)
        if "/" not in merged:
            root = rows.get(inode_key(ROOT_INODE_ID)) or txn._visible(
                inode_key(ROOT_INODE_ID)
            )
            if root is None:
                raise NotFoundError("namespace is not formatted (no root)")
            merged["/"] = root
        parent_id = merged["/"].id
        current = "/"
        for part in components(path):
            current = join(current, part)
            if current in merged:
                parent_id = merged[current].id
                continue
            dkey = dirent_key(parent_id, part)
            child_id = rows[dkey] if dkey in rows else txn._visible(dkey)
            if child_id is None:
                break
            ikey = inode_key(child_id)
            inode = rows.get(ikey) or txn._visible(ikey)
            if inode is None:
                break
            merged[current] = inode
            parent_id = child_id
        return merged

    # -- permissions -----------------------------------------------------
    @staticmethod
    def check_traversal(path: str, resolved: Dict[str, INode]) -> None:
        """Every ancestor directory must carry an execute bit.

        HDFS-style permission enforcement on the resolution path
        (§1: clients "acquire a file's permission ... from the MDS").
        """
        normalized = normalize(path)
        for ancestor, inode in resolved.items():
            if ancestor == normalized or not is_descendant(normalized, ancestor):
                continue
            if inode.is_dir and not inode.permission & 0o111:
                raise AccessDeniedError(
                    f"{ancestor!r} is not traversable (mode {inode.permission:o})"
                )

    @staticmethod
    def check_readable(path: str, inode: INode) -> None:
        if not inode.permission & 0o444:
            raise AccessDeniedError(
                f"{path!r} is not readable (mode {inode.permission:o})"
            )

    @staticmethod
    def check_writable(path: str, inode: INode) -> None:
        if not inode.permission & 0o222:
            raise AccessDeniedError(
                f"{path!r} is not writable (mode {inode.permission:o})"
            )

    def set_permission(
        self, txn: Transaction, path: str, permission: int, known=None
    ) -> Generator:
        """Change an INode's permission bits (like HDFS setPermission)."""
        if not 0 <= permission <= 0o777:
            raise AccessDeniedError(f"invalid mode {permission:o}")
        path = normalize(path)
        resolved = yield from self.resolve(
            txn, path, known, exclusive_paths=[path]
        )
        self.check_traversal(path, resolved)
        updated = resolved[path].with_updates(permission=permission)
        yield from txn.write(inode_key(updated.id), updated)
        resolved[path] = updated
        return updated, resolved

    @staticmethod
    def _validate_chain(path: str, resolved: Dict[str, INode]) -> None:
        current = "/"
        chain = [current]
        for part in components(path):
            current = join(current, part)
            chain.append(current)
        for ancestor in chain[:-1]:
            inode = resolved.get(ancestor)
            if inode is None:
                raise NotFoundError(f"{ancestor!r} does not exist")
            if not inode.is_dir:
                raise NotADirectoryError(f"{ancestor!r} is not a directory")
        if resolved.get(chain[-1]) is None:
            raise NotFoundError(f"{path!r} does not exist")

    # -- reads --------------------------------------------------------
    def stat(self, txn: Transaction, path: str, known=None) -> Generator:
        resolved = yield from self.resolve(txn, path, known)
        return resolved

    def ls(self, txn: Transaction, path: str, known=None) -> Generator:
        """Directory listing (or the single entry for a file)."""
        resolved = yield from self.resolve(txn, path, known)
        target = resolved[normalize(path)]
        if not target.is_dir:
            return resolved, [target.name]
        rows = yield from txn.scan_prefix(dirent_prefix(target.id))
        names = sorted(key[-1] for key in rows)
        return resolved, names

    # -- writes --------------------------------------------------------
    def create_file(self, txn: Transaction, path: str, known=None) -> Generator:
        """Create an empty file; returns (new INode, resolved parents)."""
        path = normalize(path)
        parent_path, name = split(path)
        # The parent chain is read under shared locks only: like
        # HopsFS, creates do not write-lock the parent row, so
        # same-directory creates proceed concurrently (parent mtime /
        # quota bookkeeping is asynchronous in HopsFS).
        resolved = yield from self.resolve(txn, parent_path, known)
        parent = resolved[parent_path]
        if not parent.is_dir:
            raise NotADirectoryError(f"{parent_path!r} is not a directory")
        self.check_traversal(parent_path, resolved)
        self.check_writable(parent_path, parent)
        yield from txn.lock(dirent_key(parent.id, name), exclusive=True)
        existing = txn._visible(dirent_key(parent.id, name))
        if existing is not None:
            raise AlreadyExistsError(f"{path!r} already exists")
        inode = INode(
            id=self.allocator.next_id(),
            parent_id=parent.id,
            name=name,
            is_dir=False,
            mtime=0.0,
            block_ids=self.blocks.allocate(),
        )
        yield from txn.write(inode_key(inode.id), inode)
        yield from txn.write(dirent_key(parent.id, name), inode.id)
        return inode, resolved

    def mkdirs(self, txn: Transaction, path: str, known=None) -> Generator:
        """Create a directory chain (like ``mkdir -p``)."""
        path = normalize(path)
        created: List[INode] = []
        resolved: Dict[str, INode] = dict(known or {})
        # One batched read finds the deepest existing ancestor.
        existing = yield from self.resolve_prefix(txn, path, known)
        target = existing.get(path)
        if target is not None:
            if not target.is_dir:
                raise NotADirectoryError(f"{path!r} exists and is a file")
            resolved.update(existing)
            return target, resolved, created
        deepest = max(
            (p for p in existing if is_descendant(path, p)),
            key=len,
            default="/",
        )
        parent = existing[deepest]
        if not parent.is_dir:
            raise NotADirectoryError(f"{deepest!r} is not a directory")
        resolved.update(existing)
        current = deepest
        for part in components(path)[len(components(deepest)):]:
            yield from txn.lock(dirent_key(parent.id, part), exclusive=True)
            race = txn._visible(dirent_key(parent.id, part))
            if race is not None:
                raced_inode = txn._visible(inode_key(race))
                if raced_inode is None or not raced_inode.is_dir:
                    raise NotADirectoryError(f"{join(current, part)!r} raced")
                parent = raced_inode
                current = join(current, part)
                resolved[current] = parent
                continue
            inode = INode(
                id=self.allocator.next_id(),
                parent_id=parent.id,
                name=part,
                is_dir=True,
            )
            yield from txn.write(inode_key(inode.id), inode)
            yield from txn.write(dirent_key(parent.id, part), inode.id)
            current = join(current, part)
            resolved[current] = inode
            created.append(inode)
            parent = inode
        return parent, resolved, created

    def delete_single(self, txn: Transaction, path: str, known=None) -> Generator:
        """Delete one file or *empty* directory."""
        path = normalize(path)
        resolved = yield from self.resolve(
            txn, path, known, exclusive_paths=[path]
        )
        target = resolved[path]
        if target.is_dir:
            children = yield from txn.scan_prefix(dirent_prefix(target.id))
            if children:
                raise NotDirEmptyError(f"{path!r} is not empty")
        parent_path, name = split(path)
        parent = resolved[parent_path]
        self.check_traversal(path, resolved)
        self.check_writable(parent_path, parent)
        yield from txn.delete(dirent_key(parent.id, name))
        yield from txn.delete(inode_key(target.id))
        return target, resolved

    def mv_single(
        self, txn: Transaction, src: str, dst: str, known=None
    ) -> Generator:
        """Rename one file or directory (the subtree moves with it,
        since descendants key off the directory's id)."""
        src = normalize(src)
        dst = normalize(dst)
        resolved = yield from self.resolve(
            txn, src, known, exclusive_paths=[src]
        )
        target = resolved[src]
        dst_parent_path, dst_name = split(dst)
        dst_resolved = yield from self.resolve(txn, dst_parent_path, known)
        dst_parent = dst_resolved[dst_parent_path]
        if not dst_parent.is_dir:
            raise NotADirectoryError(f"{dst_parent_path!r} is not a directory")
        yield from txn.lock(dirent_key(dst_parent.id, dst_name), exclusive=True)
        if txn._visible(dirent_key(dst_parent.id, dst_name)) is not None:
            raise AlreadyExistsError(f"{dst!r} already exists")
        src_parent_path, src_name = split(src)
        src_parent = resolved[src_parent_path]
        self.check_traversal(src, resolved)
        self.check_writable(src_parent_path, src_parent)
        self.check_writable(dst_parent_path, dst_parent)
        moved = target.with_updates(parent_id=dst_parent.id, name=dst_name)
        yield from txn.delete(dirent_key(src_parent.id, src_name))
        yield from txn.write(dirent_key(dst_parent.id, dst_name), moved.id)
        yield from txn.write(inode_key(moved.id), moved)
        resolved.update(dst_resolved)
        return moved, resolved

    # -- subtree support -------------------------------------------------
    def collect_subtree(self, txn: Transaction, root_path: str, known=None) -> Generator:
        """Quiesce and enumerate a subtree (Appendix D, phases 1–2).

        Takes write locks level by level in a predefined total order
        and returns ``[(path, INode)]`` for the whole subtree, root
        first.
        """
        root_path = normalize(root_path)
        resolved = yield from self.resolve(txn, root_path, known)
        root = resolved[root_path]
        yield from txn.lock(inode_key(root.id), exclusive=True)
        collected: List[Tuple[str, INode]] = [(root_path, root)]
        if not root.is_dir:
            return collected
        frontier: List[Tuple[str, INode]] = [(root_path, root)]
        while frontier:
            next_frontier: List[Tuple[str, INode]] = []
            for dir_path, directory in frontier:
                rows = yield from txn.scan_prefix(dirent_prefix(directory.id))
                child_ids = sorted(rows.values())
                inode_rows = yield from txn.read_many(
                    [inode_key(child_id) for child_id in child_ids]
                )
                by_id = {
                    inode.id: inode
                    for inode in inode_rows.values()
                    if inode is not None
                }
                for key, child_id in sorted(rows.items()):
                    child = by_id.get(child_id)
                    if child is None:
                        continue
                    child_path = join(dir_path, key[-1])
                    collected.append((child_path, child))
                    if child.is_dir:
                        next_frontier.append((child_path, child))
            frontier = next_frontier
        return collected
