"""λFS system assembly: platform + store + coordinator + deployments.

:class:`LambdaFS` is the top-level object experiments interact with::

    env = Environment()
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    vm = fs.new_vm()
    client = fs.new_client(vm)

    def workload(env):
        yield from client.mkdirs("/data")
        yield from client.create_file("/data/a")
        response = yield from client.stat("/data/a")

    env.process(workload(env))
    env.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.coordination import make_coordinator
from repro.core.autoscaling import desired_scale
from repro.core.client import ClientConfig, LambdaFSClient
from repro.core.maintenance import DataNodeConfig, DataNodeService
from repro.core.namenode import LambdaNameNode, NameNodeConfig
from repro.core.operations import NamespaceOps
from repro.core.partitioning import NamespacePartitioner
from repro.core.subtree import SubtreeConfig, SubtreeProtocol
from repro.faas import FaaSConfig, FaaSPlatform
from repro.metastore import NdbConfig, NdbStore
from repro.metrics import MetricsRecorder, lambda_cost, simplified_cost
from repro.namespace.cache import CacheStats
from repro.resilience import ResilienceConfig, ResilienceManager
from repro.rpc import ClientVM, LatencyConfig, LatencyModel
from repro.sim import AllOf, Environment, RngStreams


@dataclass(frozen=True)
class LambdaFSConfig:
    """Everything configurable about a λFS deployment."""

    num_deployments: int = 16
    coordinator_kind: str = "zookeeper"
    clients_per_tcp_server: int = 128
    seed: int = 0
    faas: FaaSConfig = field(default_factory=FaaSConfig)
    ndb: NdbConfig = field(default_factory=NdbConfig)
    namenode: NameNodeConfig = field(default_factory=NameNodeConfig)
    client: ClientConfig = field(default_factory=ClientConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    subtree: SubtreeConfig = field(default_factory=SubtreeConfig)
    datanodes: DataNodeConfig = field(default_factory=DataNodeConfig)
    resilience: Optional[ResilienceConfig] = None
    """Opt-in resilience layer (deadlines, breakers, load shedding);
    None keeps every mechanism detached and runs byte-identical."""


class LambdaFS:
    """A running λFS metadata service."""

    def __init__(self, env: Environment, config: Optional[LambdaFSConfig] = None) -> None:
        self.env = env
        self.config = config or LambdaFSConfig()
        self.rngs = RngStreams(self.config.seed)
        self.latency = LatencyModel(self.rngs.stream("latency"), self.config.latency)
        #: Optional resilience control plane; created before the store
        #: and platform so both can hold a reference at construction.
        self.resilience = (
            ResilienceManager(
                env, self.config.resilience, self.rngs.stream("resilience")
            )
            if self.config.resilience is not None
            else None
        )
        self.store = NdbStore(
            env, self.config.ndb, rng=self.rngs.stream("ndb-retry")
        )
        self.store.resilience = self.resilience
        self.ops = NamespaceOps(self.store)
        self.coordinator = make_coordinator(env, self.config.coordinator_kind)
        self.platform = FaaSPlatform(
            env, self.config.faas, rng=self.rngs.stream("faas")
        )
        self.platform.resilience = self.resilience
        self.partitioner = NamespacePartitioner(self.config.num_deployments)
        self.subtree = SubtreeProtocol(self, self.config.subtree)
        self.datanodes = DataNodeService(env, self.store, self.config.datanodes)
        #: Optional live data plane (a :class:`repro.datanode.DataNodeFleet`);
        #: attached by the harness/runner, None in pure metadata runs.
        self.datanode_fleet = None
        self.metrics = MetricsRecorder()
        self.metrics.attach_cache_stats(self.aggregate_cache_stats)
        for name in self.partitioner.deployment_names():
            self.platform.register_deployment(
                name, lambda instance: LambdaNameNode(instance, self)
            )
        if env.metrics is not None:
            self._register_telemetry_gauges(env.metrics)

    def _register_telemetry_gauges(self, metrics) -> None:
        """Cache and fleet-scale gauges, evaluated at sample time."""
        for name in self.partitioner.deployment_names():
            deployment = self.platform.deployments[name]

            def caches(d=deployment):
                return [
                    instance.app.cache
                    for instance in d.all_instances
                    if instance.app is not None
                ]

            metrics.register_gauge(
                "cache_hit_ratio",
                lambda c=caches: CacheStats.aggregate(
                    cache.stats for cache in c()
                ).hit_ratio,
                help="Request-level cache hit ratio (CacheStats rollup)",
                deployment=name,
            )
            metrics.register_gauge(
                "cache_trie_size",
                lambda c=caches: float(sum(len(cache) for cache in c())),
                help="Cached INodes across live + dead instances",
                deployment=name,
            )
            for field_name in ("hits", "misses", "invalidations", "evictions"):
                metrics.register_gauge(
                    f"cache_{field_name}_total",
                    lambda f=field_name, c=caches: float(sum(
                        getattr(cache.stats, f) for cache in c()
                    )),
                    help="CacheStats field summed over the deployment",
                    deployment=name,
                )
        metrics.register_gauge(
            "fleet_actual_namenodes", lambda: float(self.active_namenodes()),
            help="Live NameNode instances across every deployment",
        )
        metrics.register_gauge(
            "fleet_desired_namenodes", self._desired_namenodes,
            help="Figure 6 expected scale for the instantaneous load",
        )

    def _desired_namenodes(self) -> float:
        """Figure 6's expected scale, with in-flight requests as α."""
        alpha = float(sum(
            instance.active_requests
            for deployment in self.platform.deployments.values()
            for instance in deployment.instances
        ))
        expected = desired_scale(
            self.config.num_deployments,
            self.config.client.replacement_probability,
            alpha,
        )
        bound = (
            self.config.faas.cluster_vcpus
            / self.config.faas.vcpus_per_instance
        )
        return min(expected, bound)

    def aggregate_cache_stats(self) -> CacheStats:
        """Fleet-wide CacheStats rollup (every instance, dead or alive)."""
        return CacheStats.aggregate(
            instance.app.cache.stats
            for instance in self.all_instances()
            if instance.app is not None
        )

    # -- lifecycle ---------------------------------------------------------
    def format(self) -> None:
        """Install the root directory in the persistent store."""
        self.ops.format()

    def start(self) -> None:
        """Start platform maintenance and DataNode reporting."""
        self.platform.start()
        self.datanodes.start()

    def install_namespace(self, directories: List[str], files: List[str]) -> None:
        """Pre-create a namespace off the clock (experiment setup)."""
        self.ops.install_paths(directories, files)

    def prewarm(self, instances_per_deployment: int = 1) -> Generator:
        """Provision and await warm instances (the paper's workloads
        begin with a populated NameNode fleet, e.g. 36 NNs in §5.6)."""
        started = []
        for name in self.partitioner.deployment_names():
            deployment = self.platform.deployments[name]
            for _ in range(instances_per_deployment):
                if self.platform.can_provision(deployment):
                    instance = self.platform.provision(deployment)
                    started.append(instance.started)
        if started:
            yield AllOf(self.env, started)

    # -- clients -----------------------------------------------------------
    def new_vm(self) -> ClientVM:
        return ClientVM(
            self.env, self.latency, self.config.clients_per_tcp_server
        )

    def new_client(self, vm: Optional[ClientVM] = None) -> LambdaFSClient:
        return LambdaFSClient(self, vm if vm is not None else self.new_vm())

    # -- observability -------------------------------------------------------
    def active_namenodes(self) -> int:
        return self.platform.total_live_instances()

    def all_instances(self):
        return [
            instance
            for deployment in self.platform.deployments.values()
            for instance in deployment.all_instances
        ]

    def total_requests_served(self) -> int:
        return sum(instance.requests_served for instance in self.all_instances())

    def total_http_requests(self) -> int:
        """Billable FaaS invocations (TCP RPCs carry no request fee)."""
        return sum(
            instance.http_requests_served for instance in self.all_instances()
        )

    def cost_usd(self) -> float:
        """Pay-per-use cost of the run so far (Figure 9 main model)."""
        return lambda_cost(
            (instance.busy_ms_snapshot() for instance in self.all_instances()),
            self.total_http_requests(),
            self.config.faas.ram_gb_per_instance,
        )

    def simplified_cost_usd(self) -> float:
        """Provisioned-lifetime cost ("λFS (Simplified)")."""
        return simplified_cost(
            (instance.provisioned_ms() for instance in self.all_instances()),
            self.total_http_requests(),
            self.config.faas.ram_gb_per_instance,
        )
