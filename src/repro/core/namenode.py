"""The λFS serverless NameNode application (§3.3, §3.5).

One :class:`LambdaNameNode` runs inside each FaaS function instance.
It keeps a trie metadata cache that survives invocations while the
instance stays warm, serves reads from the cache when possible, and
runs the ACK-INV coherence protocol before persisting writes.

It also re-implements the serverful DFS maintenance features in a
serverless-compatible way: rather than holding DataNode heartbeat
connections, it reads the DataNode reports that are published to the
persistent metadata store on a regular interval (§1, Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.coordination.coordinator import Invalidation
from repro.core.errors import FsError
from repro.core.messages import MetadataRequest, MetadataResponse, OpType
from repro.metastore.errors import TransactionAborted
from repro.namespace.cache import MetadataCache
from repro.namespace.inode import INode, dirent_key, inode_key
from repro.namespace.paths import components, is_descendant, normalize, parent_of
from repro.rpc.retry import RetryPolicy
from repro.sim import AllOf, Event

#: Backoff curve for aborted write transactions: full jitter over the
#: same capped exponential the legacy fixed backoff followed
#: (4 → 128 ms).
_WRITE_BACKOFF = RetryPolicy(base_ms=4.0, factor=2.0, max_ms=128.0)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fs import LambdaFS


@dataclass(frozen=True)
class NameNodeConfig:
    """Per-NameNode behaviour knobs."""

    cache_capacity: int = 1_000_000
    cpu_ms_per_op: float = 0.30
    """CPU to deserialize, dispatch, and serialize one RPC."""
    cpu_ms_store_fetch: float = 0.12
    """Extra CPU on the cache-miss path (building queries, caching)."""
    cpu_ms_write: float = 0.45
    """Extra CPU for write orchestration (locking, coherence)."""
    result_cache_ttl_ms: float = 30_000.0
    datanode_refresh_ms: float = 5_000.0
    datanode_stale_after_ms: float | None = None
    """Drop DataNodes whose last published report is older than this
    from the placement view (a dead node stops publishing, so its row
    goes stale).  None keeps every published row, the legacy
    behaviour."""
    txn_retries: int = 8


class LambdaNameNode:
    """The Java-function NameNode, as a simulation application."""

    def __init__(self, instance, fs: "LambdaFS") -> None:
        self.instance = instance
        self.fs = fs
        self.config = fs.config.namenode
        self.cache = MetadataCache(capacity=self.config.cache_capacity)
        self.cache.put("/", INode.root())
        self._listing_cache: Dict[str, List[str]] = {}
        # Results are retained briefly so resubmitted requests (after
        # timeouts or dropped connections) get the original answer
        # instead of re-running the operation (§3.2).
        self._result_cache: Dict[int, Tuple[float, MetadataResponse]] = {}
        # A resubmitted duplicate can arrive while its original is
        # still executing (straggler watchdog + slow instance); the
        # duplicate waits here for the original's answer instead of
        # re-running the operation.
        self._inflight: Dict[int, Event] = {}
        self._datanode_view: List[str] = []
        self._datanode_view_at = -float("inf")
        self._last_result_purge = 0.0
        self._backoff_rng = fs.rngs.stream("nn-retry")
        # Resilience control plane (None keeps every path identical).
        res = fs.resilience
        self._res = res
        self._shedder = res.shedder(instance.id) if res is not None else None
        # path -> (invalidated_at_ms, inode): snapshots of entries the
        # coherence protocol invalidated, retained briefly so reads
        # under shed pressure can degrade to bounded-staleness serving
        # instead of being dropped or hitting a browning-out store.
        self._stale_inodes: Dict[str, Tuple[float, INode]] = {}
        self._stale_ms: float | None = None

    # -- lifecycle hooks called by the FaaS instance ---------------------
    @property
    def member_id(self) -> str:
        return self.instance.id

    @property
    def deployment_name(self) -> str:
        return self.instance.deployment_name

    def on_start(self) -> None:
        self.fs.coordinator.register(
            self.deployment_name, self.member_id, self._on_invalidation
        )
        return None

    def on_terminate(self) -> None:
        self.fs.coordinator.deregister(self.deployment_name, self.member_id)

    # -- request handling ---------------------------------------------------
    def handle(self, request: MetadataRequest, via: str) -> Generator:
        """Serve one metadata RPC; returns a :class:`MetadataResponse`."""
        env = self.fs.env
        tracer = env.tracer
        self._purge_result_cache()
        cached = self._result_cache.get(request.request_id)
        if cached is not None:
            if tracer is not None:
                tracer.point(
                    "nn.result_cache", self.member_id,
                    parent=request.trace_parent,
                    request_id=request.request_id,
                )
            yield from self.instance.compute(self.config.cpu_ms_per_op / 2)
            return cached[1]

        inflight = self._inflight.get(request.request_id)
        if inflight is not None:
            # A duplicate racing its own original (straggler resubmit
            # or duplicated TCP delivery): wait for the first serve
            # and return its answer.
            if tracer is not None:
                tracer.point(
                    "nn.inflight", self.member_id,
                    parent=request.trace_parent,
                    request_id=request.request_id,
                )
            response = yield inflight
            yield from self.instance.compute(self.config.cpu_ms_per_op / 2)
            if response is not None:
                return response
            # The original serve died without an answer; fall through
            # and execute the request ourselves.

        res = self._res
        res_on = res is not None and res.active
        if res_on:
            shed = self._admission(request)
            if shed is not None:
                return shed

        marker = Event(env)
        self._inflight[request.request_id] = marker
        response = None
        try:
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "nn.handle", self.member_id, parent=request.trace_parent,
                    op=request.op.value, path=request.path, via=via,
                )
            if res_on:
                # Measure this request's CPU-queue delay (compute time
                # beyond the service demand is time spent waiting for
                # a slot) and feed the CoDel shedder.
                self._stale_ms = None
                admitted_at = env.now
            yield from self.instance.compute(self.config.cpu_ms_per_op)
            if res_on:
                self._shedder.observe(
                    env.now,
                    env.now - admitted_at - self.config.cpu_ms_per_op,
                )
            try:
                if request.op is OpType.EXEC_BATCH:
                    value, hit = (yield from self._exec_batch(request, span)), False
                elif request.op.is_write:
                    value, hit = yield from self._handle_write(request, span)
                else:
                    value, hit = yield from self._handle_read(request, span)
                response = MetadataResponse(
                    request_id=request.request_id, ok=True, value=value,
                    served_by=self.member_id, cache_hit=hit,
                )
                if res_on and self._stale_ms is not None:
                    response.stale = True
                    response.staleness_ms = self._stale_ms
            except (FsError, TransactionAborted) as exc:
                # TransactionAborted surfaces when every retry of a
                # store transaction timed out (sustained lock convoys
                # under overload); the client sees a failed response and
                # decides whether to resubmit.
                response = MetadataResponse(
                    request_id=request.request_id, ok=False,
                    error=f"{type(exc).__name__}: {exc}", served_by=self.member_id,
                )
            if tracer is not None:
                tracer.end(span, ok=response.ok, cache_hit=response.cache_hit)
            self._result_cache[request.request_id] = (env.now, response)
        finally:
            if self._inflight.get(request.request_id) is marker:
                del self._inflight[request.request_id]
            if not marker.triggered:
                marker.succeed(response)
        if via == "http":
            self._connect_back(request)
        return response

    # -- resilience admission -------------------------------------------------
    def _admission(self, request: MetadataRequest):
        """Refuse work this NameNode should not execute.

        Two triggers: the op's end-to-end deadline already expired
        (executing it would be pure waste — the client gave up), or
        the CoDel shedder's drop schedule fired under sustained
        CPU-queue delay.  Degradable reads (a bounded-staleness
        snapshot exists) are admitted through pressure so they can be
        served stale rather than dropped.  Returns the shed response,
        or None to admit.
        """
        res = self._res
        env = self.fs.env
        deadline = request.deadline_ms
        if deadline is not None and env.now >= deadline:
            return res.shed_response(
                request, "namenode", "deadline", actor=self.member_id
            )
        if request.op is OpType.EXEC_BATCH:
            # Subtree helper batches ride their parent op's budget;
            # the parent was already admitted.
            return None
        shedder = self._shedder
        if (
            shedder.under_pressure
            and not request.op.is_write
            and self._stale_candidate(request) is not None
        ):
            return None
        if shedder.should_shed(env.now):
            return res.shed_response(
                request, "namenode", "overload", actor=self.member_id
            )
        return None

    def _stale_candidate(self, request: MetadataRequest):
        """A within-bound invalidated snapshot for this read, if any."""
        if request.op not in (OpType.STAT, OpType.READ_FILE):
            return None
        path = normalize(request.path)
        entry = self._stale_inodes.get(path)
        if entry is None:
            return None
        if self.fs.env.now - entry[0] > self._res.config.stale_read_bound_ms:
            del self._stale_inodes[path]
            return None
        return entry

    def _serve_stale(self, request: MetadataRequest, path: str, span=None):
        """Bounded-staleness degraded read (graceful degradation).

        Serves the snapshot taken when the entry was invalidated,
        flags the response (``stale`` + ``staleness_ms``), and emits a
        ``nn.cache_hit`` point carrying ``bounded_stale`` attrs so the
        coherence checker can *verify* the staleness bound instead of
        being disabled for this mode.
        """
        entry = self._stale_candidate(request)
        if entry is None:
            return None
        invalidated_at, inode = entry
        env = self.fs.env
        res = self._res
        staleness = env.now - invalidated_at
        self.cache.stats.record_lookup(hit=True)
        if env.tracer is not None:
            env.tracer.point(
                "nn.cache_hit", self.member_id, parent=span, path=path,
                bounded_stale=True, staleness_ms=staleness,
                stale_bound_ms=res.config.stale_read_bound_ms,
            )
        res.note_stale_read(staleness)
        self._stale_ms = staleness
        if request.op is OpType.READ_FILE:
            return self._file_view(inode), True
        return inode, True

    def _remember_stale(self, path: str) -> None:
        """Snapshot an entry the coherence protocol is invalidating."""
        res = self._res
        if res is None or not res.active:
            return
        inode = self.cache.peek(path)
        if inode is None:
            return
        stale = self._stale_inodes
        stale[path] = (self.fs.env.now, inode)
        while len(stale) > res.config.stale_keep:
            del stale[next(iter(stale))]

    # -- reads ---------------------------------------------------------------
    @staticmethod
    def _full_chain(path: str, known) -> bool:
        """True when every component of ``path`` (and the root) is
        cached — required for a safe cache hit, since permission
        enforcement must see every ancestor."""
        if "/" not in known or path not in known:
            return False
        current = ""
        for part in components(path):
            current = f"{current}/{part}"
            if current not in known:
                return False
        return True

    def _handle_read(self, request: MetadataRequest, span=None) -> Generator:
        tracer = self.fs.env.tracer
        path = normalize(request.path)
        known = self.cache.get_path_prefix(path)
        if request.op is OpType.LS:
            return (yield from self._handle_ls(path, known, span))
        if self._full_chain(path, known):
            self.cache.stats.record_lookup(hit=True)
            if tracer is not None:
                tracer.point("nn.cache_hit", self.member_id, parent=span,
                             path=path)
            inode = known[path]
            self.fs.ops.check_traversal(path, known)
            self.fs.ops.check_readable(path, inode)
            if request.op is OpType.READ_FILE:
                yield from self._maybe_refresh_datanodes()
                return self._file_view(inode), True
            return inode, True
        res = self._res
        res_on = res is not None and res.active
        if res_on and self._shedder.under_pressure:
            served = self._serve_stale(request, path, span)
            if served is not None:
                return served
        self.cache.stats.record_lookup(hit=False)
        if tracer is not None:
            tracer.point("nn.cache_miss", self.member_id, parent=span,
                         path=path)
        yield from self.instance.compute(self.config.cpu_ms_store_fetch)
        resolved = yield from self.fs.store.run_transaction(
            lambda txn: self.fs.ops.resolve(txn, path, known),
            retries=self.config.txn_retries,
            label="resolve", trace_parent=span,
            deadline_ms=request.deadline_ms if res_on else None,
        )
        self._cache_resolved(resolved, span)
        inode = resolved[path]
        self.fs.ops.check_traversal(path, resolved)
        self.fs.ops.check_readable(path, inode)
        if request.op is OpType.READ_FILE:
            yield from self._maybe_refresh_datanodes()
            return self._file_view(inode), False
        return inode, False

    def _handle_ls(self, path: str, known: Dict[str, INode], span=None) -> Generator:
        tracer = self.fs.env.tracer
        listing = self._listing_cache.get(path)
        if listing is not None and self._full_chain(path, known):
            self.cache.stats.record_lookup(hit=True)
            if tracer is not None:
                tracer.point("nn.cache_hit", self.member_id, parent=span,
                             path=path, listing=True)
            self.fs.ops.check_traversal(path, known)
            self.fs.ops.check_readable(path, known[path])
            return list(listing), True
        self.cache.stats.record_lookup(hit=False)
        if tracer is not None:
            tracer.point("nn.cache_miss", self.member_id, parent=span,
                         path=path, listing=True)
        yield from self.instance.compute(self.config.cpu_ms_store_fetch)

        def body(txn):
            return self.fs.ops.ls(txn, path, known)

        resolved, names = yield from self.fs.store.run_transaction(
            body, retries=self.config.txn_retries,
            label="ls", trace_parent=span,
        )
        self._cache_resolved(resolved, span)
        if resolved[path].is_dir:
            self._listing_cache[path] = list(names)
        return names, False

    def _file_view(self, inode: INode) -> dict:
        """What a READ_FILE returns: metadata plus block locations.

        Placement is computed from the published DataNode reports via
        rendezvous hashing, so every instance agrees without holding
        DataNode state (see :mod:`repro.core.blocks`)."""
        return {
            "inode": inode,
            "locations": list(self._datanode_view),
            "blocks": self.fs.ops.blocks.locations(
                inode.block_ids, self._datanode_view
            ),
        }

    def _maybe_refresh_datanodes(self) -> Generator:
        """Lazy DataNode discovery from the persistent store."""
        env = self.fs.env
        if env.now - self._datanode_view_at < self.config.datanode_refresh_ms:
            return
        self._datanode_view_at = env.now

        def body(txn):
            rows = yield from txn.scan_prefix(("datanode",))
            return rows

        rows = yield from self.fs.store.run_transaction(body)
        stale_after = self.config.datanode_stale_after_ms
        view = []
        for key, report in rows.items():
            if not getattr(report, "healthy", True):
                continue
            if stale_after is not None and (
                env.now - getattr(report, "published_at_ms", env.now)
                > stale_after
            ):
                continue
            view.append(key[-1])
        self._datanode_view = sorted(view)

    # -- writes ---------------------------------------------------------------
    def _handle_write(self, request: MetadataRequest, span=None) -> Generator:
        yield from self.instance.compute(self.config.cpu_ms_write)
        if request.op.is_subtree_capable and (
            yield from self._needs_subtree(request, span)
        ):
            value = yield from self.fs.subtree.execute(self, request, span)
            return value, False

        env = self.fs.env
        ops = self.fs.ops
        res = self._res
        res_on = res is not None and res.active
        attempt = 0
        while True:
            if res_on and res.expired(request):
                # The budget ran out between retries: refuse to start
                # another txn attempt for a client that already quit.
                res.note_deadline_expired(request, "namenode-txn",
                                          self.member_id)
                raise FsError(
                    f"{request.op.value} on {request.path!r} deadline "
                    f"expired during txn retries"
                )
            txn = self.fs.store.begin(
                label=request.op.value, trace_parent=span,
                deadline_ms=request.deadline_ms if res_on else None,
            )
            try:
                path = normalize(request.path)
                known = self.cache.get_path_prefix(path)
                if request.op is OpType.CREATE_FILE:
                    inode, resolved = yield from ops.create_file(txn, path, known)
                    affected = [path, parent_of(path)]
                    new_entries = {path: inode}
                    removed: List[str] = []
                    value: object = inode
                elif request.op is OpType.MKDIRS:
                    target, resolved, created = yield from ops.mkdirs(txn, path, known)
                    affected = [path]
                    if created:
                        top = min(
                            (p for p, i in resolved.items() if i in created),
                            key=len, default=path,
                        )
                        affected.append(parent_of(top))
                    new_entries = {
                        p: i for p, i in resolved.items() if i in created
                    }
                    removed = []
                    value = target
                elif request.op is OpType.DELETE:
                    target, resolved = yield from ops.delete_single(txn, path, known)
                    affected = [path, parent_of(path)]
                    new_entries = {}
                    removed = [path]
                    value = True
                elif request.op is OpType.MV:
                    dst = normalize(request.dst_path)
                    moved, resolved = yield from ops.mv_single(txn, path, dst, known)
                    affected = [path, dst, parent_of(path), parent_of(dst)]
                    new_entries = {dst: moved}
                    removed = [path]
                    value = moved
                elif request.op is OpType.SET_PERMISSION:
                    updated, resolved = yield from ops.set_permission(
                        txn, path, request.payload, known
                    )
                    affected = [path]
                    # Directory INodes are cached as *ancestors* by
                    # every deployment resolving paths beneath them,
                    # so a directory-metadata change must reach all
                    # deployments, not just the path's owner.
                    broadcast = updated.is_dir
                    new_entries = {path: updated}
                    removed = []
                    value = updated
                else:  # pragma: no cover - dispatch guard
                    raise FsError(f"unhandled write op {request.op}")

                # Algorithm 1: INVs go out (and all ACKs return) while
                # the rows are exclusively locked, *before* persisting.
                yield from self.run_coherence(
                    affected, broadcast=locals().get("broadcast", False),
                    trace_parent=span,
                )
                if (
                    res is not None
                    and request.deadline_ms is not None
                    and env.now >= request.deadline_ms
                ):
                    # The point of no return for gate 7: the mutation is
                    # about to persist on behalf of a client whose
                    # deadline already passed.  With enforcement active
                    # the write is refused here (counted as one more
                    # deadline give-up) so the executed-past-deadline
                    # tripwire is unreachable by construction; with the
                    # ``disable_shedding`` latch off it commits anyway
                    # and every late commit is counted — the noshed
                    # twin's smoking gun.
                    if res_on:
                        res.note_deadline_expired(
                            request, "namenode-commit", self.member_id
                        )
                        raise FsError(
                            f"{request.op.value} on {request.path!r} "
                            f"deadline expired before commit"
                        )
                    res.note_deadline_violation("namenode-commit")
                tracer = env.tracer
                if tracer is not None:
                    tracer.point(
                        "nn.commit", self.member_id, parent=span,
                        paths=tuple(affected), op=request.op.value,
                    )
                yield from txn.commit()
                break
            except TransactionAborted:
                txn.abort()
                attempt += 1
                if attempt > self.config.txn_retries:
                    raise FsError(f"{request.op.value} on {request.path!r} kept aborting")
                tracer = env.tracer
                retry_span = None
                if tracer is not None:
                    retry_span = tracer.begin(
                        "nn.retry_backoff", self.member_id, parent=span,
                        attempt=attempt, op=request.op.value,
                    )
                # Full jitter over the same capped exponential curve
                # the old hand-rolled 2·2^min(attempt,6) backoff
                # followed: synchronized abort storms decorrelate.
                yield env.timeout(
                    _WRITE_BACKOFF.full_jitter_delay(attempt, self._backoff_rng)
                )
                if tracer is not None:
                    tracer.end(retry_span)
            except BaseException:
                txn.abort()  # release locks on application errors
                raise

        self._apply_local(new_entries, removed, resolved)
        return value, False

    def _needs_subtree(self, request: MetadataRequest, span=None) -> Generator:
        """True when MV/DELETE targets a directory (subtree protocol)."""
        if request.op is OpType.DELETE and not request.recursive:
            return False
        path = normalize(request.path)
        known = self.cache.get_path_prefix(path)
        if path in known:
            return known[path].is_dir
        try:
            resolved = yield from self.fs.store.run_transaction(
                lambda txn: self.fs.ops.resolve(txn, path, known),
                label="resolve", trace_parent=span,
            )
        except FsError:
            return False
        self._cache_resolved(resolved, span)
        return resolved[path].is_dir

    def run_coherence(
        self,
        affected_paths: List[str],
        broadcast: bool = False,
        trace_parent=None,
    ) -> Generator:
        """Send INVs for ``affected_paths`` and await every ACK.

        With ``broadcast`` the INVs go to *every* deployment — needed
        when a directory's own metadata changes, since directories
        are cached as ancestors across the whole fleet.
        """
        # Sets of strings iterate in a per-process salted order; sort
        # so the INV fan-out (and therefore the event sequence) is a
        # function of the seed alone.
        by_deployment: Dict[str, List[str]] = {}
        if broadcast:
            for deployment in self.fs.partitioner.deployment_names():
                by_deployment[deployment] = sorted(set(affected_paths))
        else:
            for path in sorted(set(affected_paths)):
                deployment = self.fs.partitioner.deployment_for(path)
                by_deployment.setdefault(deployment, []).append(path)
        env = self.fs.env
        waits = []
        for deployment, paths in by_deployment.items():
            exclude = [self.member_id] if deployment == self.deployment_name else []
            waits.append(env.process(
                self.fs.coordinator.invalidate(
                    deployment, paths=paths, exclude=exclude,
                    initiator=self.member_id, trace_parent=trace_parent,
                )
            ))
        if waits:
            yield AllOf(env, waits)

    def run_subtree_coherence(
        self, prefix: str, deployments: List[str], trace_parent=None
    ) -> Generator:
        """One prefix INV per deployment caching subtree metadata."""
        env = self.fs.env
        waits = []
        for deployment in deployments:
            exclude = [self.member_id] if deployment == self.deployment_name else []
            waits.append(env.process(
                self.fs.coordinator.invalidate(
                    deployment, prefix=prefix, exclude=exclude,
                    initiator=self.member_id, trace_parent=trace_parent,
                )
            ))
        if waits:
            yield AllOf(env, waits)
        # Leader applies the same invalidation to its own cache.
        self._invalidate_prefix_local(prefix)

    def _apply_local(
        self,
        new_entries: Dict[str, INode],
        removed: List[str],
        resolved: Dict[str, INode],
    ) -> None:
        """Refresh the leader's own cache after a committed write."""
        tracer = self.fs.env.tracer
        gone = set(removed)
        for path in removed:
            self.cache.invalidate(path)
            if self._stale_inodes:
                # The leader deleted it: a stale snapshot must not
                # resurrect the entry under shed pressure.
                self._stale_inodes.pop(path, None)
            if tracer is not None:
                tracer.point("nn.cache_invalidate", self.member_id, path=path)
            self._listing_cache.pop(path, None)
            self._drop_listing_of_parent(path)
        for path, inode in resolved.items():
            if path not in gone:
                self.cache.put(path, inode)
                if self._stale_inodes:
                    self._stale_inodes.pop(path, None)
                if tracer is not None:
                    tracer.point("nn.cache_put", self.member_id, path=path)
        for path, inode in new_entries.items():
            self.cache.put(path, inode)
            if self._stale_inodes:
                self._stale_inodes.pop(path, None)
            if tracer is not None:
                tracer.point("nn.cache_put", self.member_id, path=path)
            self._drop_listing_of_parent(path)

    # -- subtree batch execution (helper role) ---------------------------------
    def _exec_batch(self, request: MetadataRequest, span=None) -> Generator:
        """Execute offloaded sub-operations (Appendix D phase 3)."""
        actions = request.payload or []
        yield from self.instance.compute(0.2 + 0.05 * len(actions))

        def body(txn):
            for action in actions:
                kind = action[0]
                if kind == "delete_inode":
                    _, target_id, parent_id, name = action
                    yield from txn.delete(dirent_key(parent_id, name))
                    yield from txn.delete(inode_key(target_id))
                elif kind == "touch_inode":
                    _, target_id = action
                    inode = txn._visible(inode_key(target_id))
                    if inode is not None:
                        yield from txn.write(inode_key(target_id), inode)
            return len(actions)

        return (
            yield from self.fs.store.run_transaction(
                body, label="exec batch", trace_parent=span
            )
        )

    # -- invalidation handling (follower role) -----------------------------------
    def _on_invalidation(self, inv: Invalidation) -> None:
        if inv.is_subtree:
            # Subtree INVs are not snapshotted for stale serving:
            # capturing a whole detached subtree is unbounded work,
            # and MV/DELETE targets are exactly what must not be
            # served stale-by-structure.
            self._invalidate_prefix_local(inv.prefix)
            return
        for path in inv.paths:
            self._remember_stale(path)
            self.cache.invalidate(path)
            self._listing_cache.pop(path, None)
            self._drop_listing_of_parent(path)

    def _invalidate_prefix_local(self, prefix: str) -> None:
        tracer = self.fs.env.tracer
        if tracer is not None:
            tracer.point(
                "nn.cache_invalidate", self.member_id,
                path=prefix, prefix=prefix,
            )
        self.cache.invalidate_prefix(prefix)
        for cached_path in list(self._listing_cache):
            if is_descendant(cached_path, prefix):
                del self._listing_cache[cached_path]
        self._drop_listing_of_parent(prefix)

    def _drop_listing_of_parent(self, path: str) -> None:
        if normalize(path) != "/":
            self._listing_cache.pop(parent_of(path), None)

    # -- misc ----------------------------------------------------------------------
    def _cache_resolved(self, resolved: Dict[str, INode], span=None) -> None:
        tracer = self.fs.env.tracer
        for path, inode in resolved.items():
            self.cache.put(path, inode)
            if self._stale_inodes:
                # A fresh copy supersedes any stale snapshot.
                self._stale_inodes.pop(path, None)
            if tracer is not None:
                tracer.point("nn.cache_put", self.member_id, parent=span,
                             path=path)

    def _connect_back(self, request: MetadataRequest) -> None:
        """Proactively open TCP connections to the client's servers."""
        for server in request.tcp_servers:
            server.connect_from(self.instance)

    def _purge_result_cache(self) -> None:
        now = self.fs.env.now
        ttl = self.config.result_cache_ttl_ms
        # Purging is amortized: scan at most once per quarter-TTL so
        # a full cache does not trigger a rescan on every request.
        if (
            len(self._result_cache) < 4096
            or now - self._last_result_purge < ttl / 4
        ):
            return
        self._last_result_purge = now
        expired = [
            request_id
            for request_id, (at, _) in self._result_cache.items()
            if now - at > ttl
        ]
        for request_id in expired:
            del self._result_cache[request_id]
