"""Metadata RPC request/response messages."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Optional, Tuple


class OpType(enum.Enum):
    """The file-system operations from the paper's workloads (Table 2)."""

    CREATE_FILE = "create file"
    MKDIRS = "mkdirs"
    DELETE = "delete file/dir"
    MV = "mv file/dir"
    READ_FILE = "read file"
    STAT = "stat file/dir"
    LS = "ls file/dir"
    SET_PERMISSION = "set permission"
    EXEC_BATCH = "exec batch"
    """Internal: a batch of subtree sub-operations offloaded to a
    helper NameNode (Appendix D, "serverless offloading")."""

    @property
    def is_write(self) -> bool:
        return self in _WRITE_OPS

    @property
    def is_subtree_capable(self) -> bool:
        """Ops that may span a whole directory subtree (§3.5)."""
        return self in (OpType.MV, OpType.DELETE)


_WRITE_OPS = frozenset(
    {OpType.CREATE_FILE, OpType.MKDIRS, OpType.DELETE, OpType.MV,
     OpType.SET_PERMISSION}
)

_request_ids = count(1)


@dataclass
class MetadataRequest:
    """One metadata RPC.

    ``tcp_servers`` carries the client VM's TCP server handles inside
    HTTP payloads so NameNodes can proactively connect back (§3.2).
    """

    op: OpType
    path: str
    dst_path: Optional[str] = None
    recursive: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))
    client_id: str = ""
    tcp_servers: Tuple = ()
    attempt: int = 1
    payload: Any = None
    trace_parent: Optional[int] = None
    """Span id of the client-side RPC attempt (set only while a
    :class:`repro.trace.Tracer` is installed), so server-side spans
    attach to the issuing operation's causal tree."""
    deadline_ms: Optional[float] = None
    """Absolute sim-time deadline for the whole op (resilience mode).
    Every hop — gateway, FaaS queue, NameNode admission, metastore
    txn — computes its remaining budget from this and sheds the
    request once it has expired instead of executing dead work."""


@dataclass
class MetadataResponse:
    """The reply to one metadata RPC."""

    request_id: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    served_by: str = ""
    cache_hit: bool = False
    shed: bool = False
    """Explicit pushback: a hop refused the request (deadline expired
    or load shed) without executing it.  Clients may retry if their
    budget and deadline allow, but must not treat it as a crash."""
    stale: bool = False
    """Served from an invalidated cache entry under shed pressure
    (bounded staleness; see ``staleness_ms``)."""
    staleness_ms: Optional[float] = None
