"""Namespace partitioning across function deployments (§3.1, §3.3).

λFS registers *n* uniquely named NameNode deployments and partitions
the namespace among them by consistently hashing the **parent
directory** of each file or directory.  All metadata for the entries
of one directory therefore lands on one deployment (fast `ls`, cheap
invalidation fan-out), while hot directories still scale because a
deployment can run arbitrarily many instances.
"""

from __future__ import annotations

from typing import List

from repro._util import stable_hash
from repro.namespace.paths import normalize, parent_of


class NamespacePartitioner:
    """Maps paths to deployment names by parent-directory hash."""

    def __init__(self, num_deployments: int, prefix: str = "NameNode") -> None:
        if num_deployments < 1:
            raise ValueError("need at least one deployment")
        self.num_deployments = num_deployments
        self.prefix = prefix
        self._names = [f"{prefix}{index}" for index in range(num_deployments)]

    def deployment_names(self) -> List[str]:
        return list(self._names)

    def index_for(self, path: str) -> int:
        """Deployment index responsible for caching ``path``."""
        normalized = normalize(path)
        anchor = "/" if normalized == "/" else parent_of(normalized)
        return stable_hash(anchor) % self.num_deployments

    def deployment_for(self, path: str) -> str:
        """Deployment name responsible for caching ``path``."""
        return self._names[self.index_for(path)]
