"""Heartbeat-driven liveness tracking for the DataNode fleet.

The tracker is the NameNode-side view of which DataNodes are alive:
each node's heartbeat loop calls :meth:`HeartbeatTracker.record`;
a periodic scan declares any node that has missed
``miss_threshold`` consecutive beats dead and excludes it from
placement until a fresh beat arrives.  State transitions are logged
as ``dn.dead`` / ``dn.alive`` tracer points and counted in
telemetry, so a chaos run's liveness timeline is reconstructable
from the trace alone.

A node that flaps — dies and restarts inside one miss window — is
never observed as dead: the restart resumes beats before the
cutoff, which is the behaviour the flapping-node edge-case test
pins down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.datanode.fleet import DataNodeFleet


class HeartbeatTracker:
    """Miss-threshold liveness state machine over heartbeat times."""

    def __init__(self, fleet: "DataNodeFleet") -> None:
        self.fleet = fleet
        self.env = fleet.env
        config = fleet.config
        self.cutoff_ms = config.miss_threshold * config.heartbeat_interval_ms
        #: Last beat per node; nodes start implicitly alive at t=0.
        self.last_beat_ms: Dict[str, float] = {dn.id: 0.0 for dn in fleet.nodes}
        self._dead: Set[str] = set()
        self.deaths = 0
        self.revivals = 0

    # -- beat ingestion ------------------------------------------------
    def record(self, node_id: str) -> None:
        """Note a heartbeat; a beat from a dead-marked node revives it."""
        self.last_beat_ms[node_id] = self.env.now
        if node_id in self._dead:
            self._dead.discard(node_id)
            self.revivals += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.point("dn.alive", node_id)
            metrics = self.env.metrics
            if metrics is not None:
                metrics.inc("dn_revivals_total")

    # -- liveness queries ----------------------------------------------
    def is_live(self, node_id: str) -> bool:
        return node_id not in self._dead

    def live(self) -> List[str]:
        """Sorted ids of nodes currently considered alive."""
        return sorted(
            node_id for node_id in self.last_beat_ms if node_id not in self._dead
        )

    def dead(self) -> List[str]:
        return sorted(self._dead)

    # -- the scan ------------------------------------------------------
    def scan_once(self) -> List[str]:
        """Mark overdue nodes dead; returns ids newly declared dead."""
        now = self.env.now
        newly_dead: List[str] = []
        for node_id, beat_ms in self.last_beat_ms.items():
            if node_id in self._dead:
                continue
            if now - beat_ms > self.cutoff_ms:
                self._dead.add(node_id)
                self.deaths += 1
                newly_dead.append(node_id)
        if newly_dead:
            tracer = self.env.tracer
            metrics = self.env.metrics
            for node_id in newly_dead:
                if tracer is not None:
                    tracer.point("dn.dead", node_id, cutoff_ms=self.cutoff_ms)
                if metrics is not None:
                    metrics.inc("dn_deaths_total")
        return newly_dead

    def scan_loop(self) -> Generator:
        """Periodic liveness scan (one fleet-wide process)."""
        interval = self.fleet.config.scan_interval_ms
        while True:
            yield self.env.timeout(interval)
            newly_dead = self.scan_once()
            if newly_dead and self.fleet.scanner is not None:
                self.fleet.scanner.note_membership_change()
