"""One simulated DataNode: disk, heartbeats, and chunk storage.

A :class:`DataNode` is a DES actor owned by a
:class:`~repro.datanode.fleet.DataNodeFleet`.  Its disk state (the
set of block replicas it holds) survives a :meth:`kill` — a killed
node is unreachable, not wiped — so a node that :meth:`restart`\\ s
rejoins with its replicas intact, exactly like an HDFS DataNode
coming back after a reboot.

The heartbeat loop ticks for the node's whole life; a dead node
simply stops *recording* beats at the tracker.  Restart therefore
needs no process respawn (which would perturb event ids), keeping
flapping nodes cheap and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.datanode.fleet import DataNodeFleet


@dataclass(frozen=True)
class DataNodeFleetConfig:
    """Shape and timing of the DataNode fleet."""

    count: int = 9
    racks: int = 3
    """Nodes are assigned round-robin to ``rack0..rack{racks-1}``."""
    replication: int = 3
    heartbeat_interval_ms: float = 500.0
    miss_threshold: int = 3
    """Heartbeats missed before the tracker declares a node dead
    (liveness cutoff = ``miss_threshold × heartbeat_interval_ms``)."""
    scan_interval_ms: float = 500.0
    """Tracker liveness scan and re-replication scan cadence."""
    publish_interval_ms: float = 3_000.0
    """Block-report publishing cadence into the metadata store (the
    serverless heartbeat substitute of §1/Fig. 2; 0 disables)."""
    net_ms_per_hop: float = 0.8
    net_jitter_ms: float = 0.2
    disk_ms_per_chunk: float = 2.5
    disk_jitter_ms: float = 0.5
    ack_ms_per_hop: float = 0.2
    repair_enabled: bool = True
    """Background re-replication on by default; the chaos
    ``datanode_kill`` fault's ``disable_repair`` param switches it off
    for the deliberately broken expected-FAIL path."""


class DataNode:
    """One DataNode actor: rack-labelled disk plus a heartbeat loop."""

    def __init__(self, fleet: "DataNodeFleet", node_id: str, rack: str) -> None:
        self.fleet = fleet
        self.env = fleet.env
        self.id = node_id
        self.rack = rack
        self.alive = True
        #: Block replicas on this node's disk (survives kill/restart).
        self.replicas: Set[int] = set()
        self.chunks_written = 0
        self.kills = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<DataNode {self.id} {self.rack} {state} blocks={len(self.replicas)}>"

    # -- fault surface -------------------------------------------------
    def kill(self) -> None:
        """Crash the node: heartbeats stop, replicas become unreachable."""
        if not self.alive:
            return
        self.alive = False
        self.kills += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.point("dn.kill", self.id, rack=self.rack)
        metrics = self.env.metrics
        if metrics is not None:
            metrics.inc("dn_kills_total", rack=self.rack)

    def restart(self) -> None:
        """Bring the node back with its disk intact."""
        if self.alive:
            return
        self.alive = True
        tracer = self.env.tracer
        if tracer is not None:
            tracer.point("dn.restart", self.id, rack=self.rack)
        # The next heartbeat tick re-records the node at the tracker;
        # a restart inside one miss window is therefore never observed
        # as a death (the flap case).

    # -- storage -------------------------------------------------------
    def write_chunk(self, block_id: int) -> Generator:
        """Persist one chunk; returns False if the node died mid-write.

        Disk service time is the configured per-chunk cost plus a
        jitter draw from the fleet's seeded stream, multiplied by any
        active ``disk_slow`` chaos factor.
        """
        config = self.fleet.config
        service = config.disk_ms_per_chunk
        if config.disk_jitter_ms > 0.0:
            service += self.fleet.rng.uniform(0.0, config.disk_jitter_ms)
        chaos = self.env.chaos
        if chaos is not None:
            service *= chaos.datanode_disk_factor(self.id, self.rack)
        yield self.env.timeout(service)
        if not self.alive:
            return False
        self.replicas.add(block_id)
        self.chunks_written += 1
        return True

    def read_chunk(self, block_id: int) -> Generator:
        """Read one chunk off disk (re-replication source side)."""
        config = self.fleet.config
        service = config.disk_ms_per_chunk / 2.0
        chaos = self.env.chaos
        if chaos is not None:
            service *= chaos.datanode_disk_factor(self.id, self.rack)
        yield self.env.timeout(service)
        return self.alive and block_id in self.replicas

    # -- heartbeats ----------------------------------------------------
    def heartbeat_loop(self) -> Generator:
        """Tick forever; record a beat at the tracker only while alive."""
        interval = self.fleet.config.heartbeat_interval_ms
        metrics = self.env.metrics
        while True:
            yield self.env.timeout(interval)
            if self.alive:
                self.fleet.tracker.record(self.id)
                if metrics is not None:
                    metrics.inc("dn_heartbeats_total", rack=self.rack)
