"""The DataNode fleet facade: nodes, tracker, scanner, and wiring.

:class:`DataNodeFleet` owns the whole data plane for a simulation:
the rack-labelled :class:`~repro.datanode.node.DataNode` actors, the
:class:`~repro.datanode.tracker.HeartbeatTracker` liveness view, the
:class:`~repro.datanode.scanner.ReplicationScanner`, and the
block→holders map that pipelines and repairs both update.

Determinism contract: **constructing** a fleet schedules no events
and draws no randomness from any shared stream (it has its own
``RngStreams(seed).stream("datanode")``); only :meth:`start` spawns
processes.  An attached-but-idle fleet therefore leaves a run's
event hash byte-identical — the property the kernel golden
regression pins.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Set

from repro.core.blocks import rack_aware_place
from repro.core.maintenance import BlockReport
from repro.datanode.node import DataNode, DataNodeFleetConfig
from repro.datanode.pipeline import write_pipeline
from repro.datanode.scanner import ReplicationScanner
from repro.datanode.tracker import HeartbeatTracker
from repro.sim import Environment
from repro.sim.rng import RngStreams


class DataNodeFleet:
    """All DataNode actors of one simulation, plus their control loops."""

    def __init__(
        self,
        env: Environment,
        config: DataNodeFleetConfig | None = None,
        seed: int = 0,
        store: Any = None,
    ) -> None:
        self.env = env
        self.config = config or DataNodeFleetConfig()
        self.store = store
        self.rng = RngStreams(seed).stream("datanode")
        self.nodes: List[DataNode] = [
            DataNode(self, f"dn{index}", f"rack{index % max(1, self.config.racks)}")
            for index in range(self.config.count)
        ]
        self._by_id: Dict[str, DataNode] = {dn.id: dn for dn in self.nodes}
        self.tracker = HeartbeatTracker(self)
        self.scanner = ReplicationScanner(self)
        #: block id → DataNode ids holding a replica (durable writes
        #: and completed repairs both land here).
        self.blocks: Dict[int, Set[str]] = {}
        self.repair_enabled = bool(self.config.repair_enabled)
        self.started = False
        self.reports_published = 0

    # -- lookups -------------------------------------------------------
    def node(self, node_id: str) -> Optional[DataNode]:
        return self._by_id.get(node_id)

    def racks_map(self, node_ids: Optional[Sequence[str]] = None) -> Dict[str, str]:
        """DataNode id → rack label, restricted to ``node_ids`` if given."""
        if node_ids is None:
            return {dn.id: dn.rack for dn in self.nodes}
        return {
            node_id: self._by_id[node_id].rack
            for node_id in node_ids
            if node_id in self._by_id
        }

    def live_node_ids(self) -> List[str]:
        """Nodes currently up (actor truth, not the tracker's view)."""
        return [dn.id for dn in self.nodes if dn.alive]

    def placement(self, block_id: int) -> List[str]:
        """Rack-aware replica targets over tracker-live nodes."""
        live = self.tracker.live()
        return rack_aware_place(
            block_id, self.racks_map(live), self.config.replication
        )

    # -- data path -----------------------------------------------------
    def client_write(
        self, block_id: int, actor: str, parent: Any = None
    ) -> Generator:
        """Write one chunk of ``block_id`` through a replica pipeline.

        Placement is computed at write time from the tracker's live
        view (dead nodes excluded); returns the DataNode ids that
        stored the replica.
        """
        targets = self.placement(block_id)
        if not targets:
            return []
        stored = yield from write_pipeline(
            self, block_id, targets, actor, parent=parent
        )
        return stored

    def register_replicas(self, block_id: int, node_ids: Sequence[str]) -> None:
        """Record durable replicas in the block map *and* on the node
        disks (kept consistent so a repair can always read from any
        registered holder)."""
        self.blocks.setdefault(block_id, set()).update(node_ids)
        for node_id in node_ids:
            node = self._by_id.get(node_id)
            if node is not None:
                node.replicas.add(block_id)

    # -- fault surface (used by chaos faults and tests) ----------------
    def kill(self, node_id: str) -> None:
        node = self._by_id[node_id]
        node.kill()

    def restart(self, node_id: str) -> None:
        node = self._by_id[node_id]
        node.restart()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn heartbeat/scan/publish processes (idempotent)."""
        if self.started:
            return
        self.started = True
        for dn in self.nodes:
            self.env.process(dn.heartbeat_loop())
        self.env.process(self.tracker.scan_loop())
        self.env.process(self.scanner.scan_loop())
        if self.store is not None and self.config.publish_interval_ms > 0:
            for dn in self.nodes:
                self.env.process(self._publish_loop(dn))
        metrics = self.env.metrics
        if metrics is not None:
            metrics.register_gauge(
                "dn_live",
                lambda: float(len(self.tracker.live())),
                help="DataNodes the tracker currently considers alive",
            )
            metrics.register_gauge(
                "dn_underreplicated",
                lambda: float(len(self.scanner.under_replicated())),
                help="Blocks below target replication factor right now",
            )
            metrics.register_gauge(
                "dn_lost_blocks",
                lambda: float(len(self.scanner.lost)),
                help="Blocks with zero live replicas",
            )

    def _publish_loop(self, dn: DataNode) -> Generator:
        """Publish this node's block report into the metadata store.

        Same row shape as the legacy ``DataNodeService`` (the
        serverless heartbeat substitute, §1/§3): NameNodes derive
        their DataNode view from these rows.  A dead node stops
        publishing, so its row goes stale and the NameNode's
        staleness filter drops it from metadata placement.
        """
        interval = self.config.publish_interval_ms
        while True:
            if dn.alive:
                report = BlockReport(
                    datanode_id=dn.id,
                    published_at_ms=self.env.now,
                    block_count=len(dn.replicas),
                    healthy=True,
                )

                def body(txn, row=report):
                    yield from txn.write(("datanode", row.datanode_id), row)

                yield from self.store.run_transaction(body)
                self.reports_published += 1
            yield self.env.timeout(interval)
