"""The simulated data plane: DataNode actors, liveness, replication.

See ``docs/datanode.md`` for the lifecycle, heartbeat/scan
parameters, and recovery-SLO semantics.
"""

from repro.datanode.fleet import DataNodeFleet
from repro.datanode.node import DataNode, DataNodeFleetConfig
from repro.datanode.pipeline import write_pipeline
from repro.datanode.scanner import RepairRecord, ReplicationScanner
from repro.datanode.tracker import HeartbeatTracker

__all__ = [
    "DataNode",
    "DataNodeFleet",
    "DataNodeFleetConfig",
    "HeartbeatTracker",
    "RepairRecord",
    "ReplicationScanner",
    "write_pipeline",
]
