"""Background re-replication: restore replication factor after loss.

The scanner periodically walks the fleet's block→holders map,
intersects each holder set with the tracker's live view, and copies
any under-replicated block from a surviving replica to a fresh
DataNode (chosen deterministically by rendezvous rank over the live
non-holders, so same-seed runs repair identically).  Each completed
repair is recorded as a :class:`RepairRecord` with its detection and
restore times — the raw material for the verifier's
replication-restored-within-SLO predicate and for the determinism
regression that pins same-seed recovery timelines.

Blocks with *zero* live holders are unrepairable and tracked in
:attr:`ReplicationScanner.lost`; the verifier surfaces those as a
hard FAIL rather than a silent empty placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Set

from repro.core.blocks import rendezvous_rank

if TYPE_CHECKING:  # pragma: no cover
    from repro.datanode.fleet import DataNodeFleet


@dataclass(frozen=True)
class RepairRecord:
    """One completed re-replication: when seen, when fixed, who to."""

    block_id: int
    detected_ms: float
    restored_ms: float
    source: str
    target: str


class ReplicationScanner:
    """Periodic under-replication scan + deterministic repair copies."""

    def __init__(self, fleet: "DataNodeFleet") -> None:
        self.fleet = fleet
        self.env = fleet.env
        self.records: List[RepairRecord] = []
        #: block id → sim-time the deficit was first observed.
        self.pending: Dict[int, float] = {}
        #: Blocks whose every replica is on a dead node right now.
        self.lost: Set[int] = set()
        self.scans = 0
        self.membership_changes = 0

    def note_membership_change(self) -> None:
        """Hint from the tracker that liveness changed (bookkeeping
        only — the periodic scan picks the deficit up on its next
        tick, which keeps repair timing independent of *when* in the
        scan interval a death was declared)."""
        self.membership_changes += 1

    # -- deficit analysis ---------------------------------------------
    def under_replicated(self) -> Dict[int, List[str]]:
        """block id → live holders, for blocks below target RF.

        Target RF is ``min(replication, live nodes)`` so a tiny
        surviving fleet is not condemned for being small.
        """
        fleet = self.fleet
        live = set(fleet.tracker.live())
        target_rf = min(fleet.config.replication, len(live))
        deficits: Dict[int, List[str]] = {}
        for block_id, holders in fleet.blocks.items():
            live_holders = sorted(holders & live)
            if len(live_holders) < target_rf:
                deficits[block_id] = live_holders
        return deficits

    # -- the scan ------------------------------------------------------
    def scan_loop(self) -> Generator:
        interval = self.fleet.config.scan_interval_ms
        while True:
            yield self.env.timeout(interval)
            yield from self.scan_once()

    def scan_once(self) -> Generator:
        self.scans += 1
        fleet = self.fleet
        deficits = self.under_replicated()
        now = self.env.now
        # Lost set tracks the zero-live-holder subset; a flapped node
        # coming back can shrink it again.
        self.lost = {bid for bid, holders in deficits.items() if not holders}
        for block_id in list(self.pending):
            if block_id not in deficits:
                del self.pending[block_id]
        for block_id in deficits:
            self.pending.setdefault(block_id, now)
        metrics = self.env.metrics
        if metrics is not None and deficits:
            metrics.inc("dn_underreplicated_seen_total", amount=float(len(deficits)))
        if not fleet.repair_enabled:
            return
        live = fleet.tracker.live()
        for block_id in sorted(deficits):
            holders = deficits[block_id]
            if not holders:
                continue  # lost: nothing to copy from
            yield from self._repair(block_id, holders, live)

    def _repair(
        self, block_id: int, live_holders: List[str], live: List[str]
    ) -> Generator:
        """Copy one replica from a live holder to a fresh live node."""
        fleet = self.fleet
        env = self.env
        candidates = [dn for dn in live if dn not in fleet.blocks[block_id]]
        if not candidates:
            return
        source = rendezvous_rank(block_id, live_holders)[0]
        target = rendezvous_rank(block_id, candidates)[0]
        tracer = env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "dn.repair", target, block=block_id, source=source
            )
        src_node = fleet.node(source)
        dst_node = fleet.node(target)
        ok = yield from src_node.read_chunk(block_id)
        if ok:
            yield env.timeout(fleet.config.net_ms_per_hop)
            ok = yield from dst_node.write_chunk(block_id)
        if ok:
            fleet.register_replicas(block_id, [target])
            detected = self.pending.get(block_id, env.now)
            self.records.append(
                RepairRecord(
                    block_id=block_id,
                    detected_ms=detected,
                    restored_ms=env.now,
                    source=source,
                    target=target,
                )
            )
            metrics = env.metrics
            if metrics is not None:
                metrics.inc("dn_repairs_total")
                metrics.observe("dn_repair_latency_ms", env.now - detected)
        if tracer is not None:
            tracer.end(span, ok=bool(ok))
