"""Pipelined chunk writes: client → DN1 → DN2 → DN3 ack chain.

HDFS writes stream a block down a replica pipeline: the client sends
to the first DataNode, which forwards to the second while persisting
locally, and acks travel back up the chain.  The simulation keeps the
same shape at chunk granularity — one forward network hop plus one
disk write per position, then an ack hop back per surviving node —
so per-stage tracer spans (``dn.pipeline`` → ``dn.xfer`` /
``dn.disk`` / ``dn.ack``) attribute the latency exactly.

The chain breaks at the first dead node: downstream replicas are
simply not written (partial success), which is what leaves blocks
under-replicated for the scanner to repair.  Every stage is a pure
timeout, so a pipeline can never wedge the run's liveness gate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.datanode.fleet import DataNodeFleet


def write_pipeline(
    fleet: "DataNodeFleet",
    block_id: int,
    targets: Sequence[str],
    actor: str,
    parent: Any = None,
) -> Generator:
    """Write one chunk of ``block_id`` through the target pipeline.

    Returns the list of DataNode ids that durably stored the replica
    (a prefix of ``targets``; empty if DN1 was already dead).
    """
    env = fleet.env
    config = fleet.config
    tracer = env.tracer
    metrics = env.metrics
    root = None
    if tracer is not None:
        root = tracer.begin(
            "dn.pipeline", actor, parent=parent, block=block_id, width=len(targets)
        )
    stored: List[str] = []
    for position, node_id in enumerate(targets):
        # Forward network hop (client→DN1, then DN→DN).
        hop_ms = config.net_ms_per_hop
        if config.net_jitter_ms > 0.0:
            hop_ms += fleet.rng.uniform(0.0, config.net_jitter_ms)
        xfer = None
        if tracer is not None:
            xfer = tracer.begin(
                "dn.xfer", node_id, parent=root, block=block_id, position=position
            )
        yield env.timeout(hop_ms)
        if tracer is not None:
            tracer.end(xfer)
        node = fleet.node(node_id)
        if node is None or not node.alive:
            # Chain breaks here; downstream targets never see the chunk.
            if tracer is not None:
                tracer.point(
                    "dn.pipeline_break", node_id, parent=root, position=position
                )
            if metrics is not None:
                metrics.inc("dn_pipeline_breaks_total")
            break
        disk = None
        if tracer is not None:
            disk = tracer.begin("dn.disk", node_id, parent=root, block=block_id)
        ok = yield from node.write_chunk(block_id)
        if tracer is not None:
            tracer.end(disk, ok=ok)
        if not ok:
            break
        stored.append(node_id)
    # Ack chain back up through the surviving prefix.
    for node_id in reversed(stored):
        yield env.timeout(config.ack_ms_per_hop)
        if tracer is not None:
            tracer.point("dn.ack", node_id, parent=root, block=block_id)
    if stored:
        fleet.register_replicas(block_id, stored)
    if metrics is not None:
        metrics.inc("dn_chunks_total", amount=float(len(stored)))
        if len(stored) < len(targets):
            metrics.inc("dn_partial_pipelines_total")
    if tracer is not None:
        tracer.end(root, stored=len(stored))
    return stored
