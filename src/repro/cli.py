"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — the quickstart scenario (basic metadata ops);
* ``spotify`` — a miniature Figure 8(a): λFS vs HopsFS under the
  bursty industrial workload, with throughput plots;
* ``scaling`` — one client-scaling comparison point per system;
* ``table3`` — the subtree-mv latency table;
* ``replay`` — replay an audit-log trace file;
* ``telemetry`` — a telemetry-instrumented microbenchmark rendering
  the sim-time metrics dashboard (fleet size, RPC mix, cache rates);
* ``profile`` — critical-path profiling: ``run`` a profiled
  microbenchmark (attribution report + Perfetto/flamegraph exports),
  ``diff`` two profile.json files stage-by-stage, ``export`` from a
  spans dump;
* ``chaos`` — deterministic fault injection: ``run`` one scenario
  (built-in name or JSON file) under load and verify recovery,
  ``matrix`` the regression scenario set (add ``--detect`` for online
  alerting + the detection gate);
* ``incidents`` — online SLO alerting + root-cause attribution:
  ``run`` one detected chaos scenario (incident timeline report),
  ``matrix`` the detection regression set with ``BENCH_incidents.json``
  baselines, ``analyze`` a telemetry JSONL export offline, ``rules``
  the alert-rule catalog;
* ``bench`` — wall-clock benchmarks of the toolkit itself: ``kernel``
  measures raw simulator events/sec + peak RSS at 1k/10k/100k client
  scales, with ``--baseline`` regression gating against a committed
  BENCH_kernel.json;
* ``experiments`` — list the experiment drivers and what they map to.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.report import tabulate


def _print_trace_summary(tracer) -> None:
    summary = tracer.summary()
    print(f"\ntrace: {summary['spans']} spans ({summary['points']} points), "
          f"{summary['events_hashed']} events hashed, "
          f"event hash {summary['event_hash']}, "
          f"{summary['violations']} invariant violation(s)")
    for violation in tracer.violations():
        print(f"  {violation}")


def _cmd_demo(args) -> int:
    from repro.core import LambdaFS
    from repro.sim import Environment

    env = Environment()
    tracer = None
    if args.trace:
        from repro.trace import install_tracer

        tracer = install_tracer(env)
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    client = fs.new_client()

    def scenario(env):
        for op, path in (
            ("mkdirs", "/cli/demo"),
            ("create_file", "/cli/demo/file.txt"),
            ("stat", "/cli/demo/file.txt"),
            ("ls", "/cli/demo"),
            ("delete", "/cli/demo/file.txt"),
        ):
            response = yield from getattr(client, op)(path)
            print(f"{op:12s} {path:22s} ok={response.ok}")

    done = env.process(scenario(env))
    env.run(until=done)
    print(f"\nactive NameNodes: {fs.active_namenodes()}  "
          f"avg latency: {fs.metrics.average_latency():.2f} ms  "
          f"cost: ${fs.cost_usd():.6f}")
    if tracer is not None:
        _print_trace_summary(tracer)
    return 0


def _cmd_spotify(args) -> int:
    from repro.bench.experiments import fig8_spotify
    from repro.metrics.ascii_plot import line_plot

    runs = fig8_spotify(
        base_throughput=args.base,
        duration_ms=args.duration * 1000.0,
        clients=args.clients,
        systems=("lambda", "hopsfs"),
        trace=args.trace,
    )
    rows = [
        [run.name, run.avg_throughput, run.peak_throughput,
         run.avg_latency_ms, f"${run.final_cost_usd:.4f}"]
        for run in runs.values()
    ]
    print(tabulate(
        ["system", "avg ops/s", "peak ops/s", "avg lat (ms)", "cost"], rows
    ))
    print()
    print(line_plot({
        "λFS": runs["lambda"].throughput_timeline,
        "HopsFS": runs["hopsfs"].throughput_timeline,
    }))
    report = runs["lambda"].trace_report
    if report is not None:
        print(f"\ntrace: {report['spans']} spans, "
              f"event hash {report['event_hash']}, "
              f"{report['violations']} invariant violation(s)")
        for line in report["violation_detail"]:
            print(f"  {line}")
    return 0


def _cmd_scaling(args) -> int:
    from repro.bench.experiments import fig11_client_scaling
    from repro.core import OpType

    points = fig11_client_scaling(
        client_counts=(args.clients,),
        ops=(OpType.READ_FILE,),
        ops_per_client=args.ops,
        warmup_per_client=max(8, args.ops // 4),
    )
    print(tabulate(
        ["system", "clients", "ops/s", "servers", "cost"],
        [
            [p.system, p.clients, p.throughput, p.active_servers,
             f"${p.cost_usd:.4f}"]
            for p in points
        ],
    ))
    return 0


def _cmd_table3(args) -> int:
    from repro.bench.experiments import table3_subtree_mv

    rows = table3_subtree_mv(directory_sizes=tuple(args.sizes))
    print(tabulate(
        ["files", "HopsFS (ms)", "λFS (ms)", "λFS advantage"],
        [
            [r["files"], r["hopsfs"], r["lambda"],
             f"{(r['hopsfs'] - r['lambda']) / r['hopsfs'] * 100:.1f}%"]
            for r in rows
        ],
    ))
    return 0


def _cmd_replay(args) -> int:
    from repro.core import LambdaFS
    from repro.sim import Environment
    from repro.workloads import TraceReplayer, load_trace

    with open(args.trace) as handle:
        records = load_trace(handle)
    env = Environment()
    tracer = None
    if args.trace_spans:
        from repro.trace import install_tracer

        tracer = install_tracer(env)
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    clients = [fs.new_client() for _ in range(args.clients)]
    warm = env.process((lambda g: (yield from g))(fs.prewarm(1)))
    env.run(until=warm)
    box = {}

    def main(env):
        box["r"] = yield from TraceReplayer(env, records).run(clients)

    done = env.process(main(env))
    env.run(until=done)
    result = box["r"]
    print(f"replayed {result.issued} ops "
          f"({result.succeeded} ok, {result.failed} failed) "
          f"in {result.duration_ms / 1000:.2f} s simulated "
          f"-> {result.throughput:,.0f} ops/s")
    print(f"avg latency {fs.metrics.average_latency():.2f} ms, "
          f"cost ${fs.cost_usd():.6f}, "
          f"NameNodes {fs.active_namenodes()}")
    if tracer is not None:
        _print_trace_summary(tracer)
    return 0


def _cmd_telemetry(args) -> int:
    """A Fig-11-style microbenchmark with full telemetry.

    A short prelude run by a few clients per VM establishes the
    shared TCP connections, so the measured phases' HTTP traffic is
    purely the deliberate replacement signal (§3.6) — the fleet
    timeline then scales out with ``--replacement`` instead of with
    the artefactual all-HTTP first-contact burst.  Phase 1 (reads)
    warms caches under that signal; a mid-run subtree mv (away and
    back) injects an invalidation storm so cache hit-rate gauges
    visibly dip; phase 2 re-reads under the cooled caches.  The
    sampled series are exported (JSONL/CSV/Prometheus) and rendered
    as a dashboard.
    """
    from repro.telemetry import read_jsonl, render_dashboard

    if args.load:
        print(render_dashboard(read_jsonl(args.load)))
        return 0

    from repro.bench.harness import build_lambdafs, drive
    from repro.core import OpType
    from repro.namespace.treegen import TreeSpec, generate_tree
    from repro.sim import Environment
    from repro.workloads import MicroBenchmark

    env = Environment()
    tree = generate_tree(TreeSpec(seed=args.seed))
    handle = build_lambdafs(
        env, tree,
        deployments=args.deployments,
        seed=args.seed,
        client_overrides={"replacement_probability": args.replacement},
        trace=args.trace,
        telemetry=True,
        telemetry_interval_ms=args.interval,
    )
    telemetry = handle.telemetry
    clients = handle.make_clients(args.clients)
    drive(env, handle.prewarm())
    bench = MicroBenchmark(env, tree, seed=args.seed)
    # Connection prelude: a handful of clients (spanning every VM —
    # connections are VM-shared) touch every deployment so the fleet
    # the measured phases see is TCP-connected from op one.
    drive(env, bench.run(clients[:8], OpType.READ_FILE, 0, args.warmup))
    drive(env, bench.run(clients, OpType.READ_FILE, args.ops, 0))
    # Injected subtree invalidation: move a hot directory away and
    # back, blowing every deployment's cached entries beneath it.
    victim = tree.directories[1]

    def invalidate(env):
        yield from clients[0].mv(victim, victim + "_tmp")
        yield from clients[0].mv(victim + "_tmp", victim)

    drive(env, invalidate(env))
    drive(env, bench.run(clients, OpType.READ_FILE, args.ops, 0))
    telemetry.stop()
    print(telemetry.dashboard())
    if args.out:
        paths = telemetry.export(args.out)
        print("\nexports:")
        for kind in sorted(paths):
            print(f"  {kind:6s} {paths[kind]}")
    if handle.tracer is not None:
        _print_trace_summary(handle.tracer)
    return 0


def _run_profiled_micro(args):
    """Build a profiled λFS and run the standard profile workload.

    One read phase (cache-dominated) plus one create-file phase
    (store + coherence-dominated), after a TCP-connection prelude, so
    every stage of the taxonomy shows up in the attribution.  Returns
    ``(handle, profile)``.
    """
    from dataclasses import replace as _replace

    from repro.bench.harness import build_lambdafs, drive
    from repro.core import OpType
    from repro.metastore import NdbConfig
    from repro.namespace.treegen import TreeSpec, generate_tree
    from repro.sim import Environment
    from repro.workloads import MicroBenchmark

    ndb = None
    if args.slow_store != 1.0:
        base = NdbConfig()
        ndb = _replace(
            base,
            read_service_ms=base.read_service_ms * args.slow_store,
            write_service_ms=base.write_service_ms * args.slow_store,
            commit_service_ms=base.commit_service_ms * args.slow_store,
        )
    env = Environment()
    tree = generate_tree(TreeSpec(seed=args.seed))
    handle = build_lambdafs(
        env, tree,
        deployments=args.deployments,
        seed=args.seed,
        ndb=ndb,
        client_overrides={"replacement_probability": args.replacement},
        profile=True,
    )
    clients = handle.make_clients(args.clients)
    drive(env, handle.prewarm())
    bench = MicroBenchmark(env, tree, seed=args.seed)
    drive(env, bench.run(clients[:8], OpType.READ_FILE, 0, args.warmup))
    drive(env, bench.run(clients, OpType.READ_FILE, args.ops, 0))
    drive(env, bench.run(clients, OpType.CREATE_FILE, max(1, args.ops // 4), 0))
    return handle, handle.profiler.analyze()


def _cmd_profile(args) -> int:
    import json
    import os

    from repro.profile import (
        Profile,
        diff_profiles,
        dump_spans,
        format_diff,
        format_report,
        load_spans,
        analyze_spans,
        write_chrome_trace,
        write_folded_stacks,
    )

    if args.profile_command == "run":
        handle, profile = _run_profiled_micro(args)
        print(format_report(profile, top=args.top))
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            tracer = handle.tracer
            paths = {
                "profile": profile.save(os.path.join(args.out, "profile.json")),
                "chrome": write_chrome_trace(
                    tracer.spans.values(),
                    os.path.join(args.out, "trace.chrome.json"),
                ),
                "folded": write_folded_stacks(
                    profile, os.path.join(args.out, "stacks.folded")
                ),
                "spans": dump_spans(
                    tracer.spans.values(),
                    os.path.join(args.out, "spans.jsonl"),
                ),
            }
            print("\nexports:")
            for kind in sorted(paths):
                print(f"  {kind:8s} {paths[kind]}")
        if args.bench_json:
            summary = profile.to_dict()["summary"]
            with open(args.bench_json, "w") as fh:
                json.dump(
                    {
                        "version": 1,
                        "event_hash": handle.tracer.event_hash(),
                        "ops": summary,
                    },
                    fh, indent=2, sort_keys=True,
                )
            print(f"\nbench json: {args.bench_json}")
        _print_trace_summary(handle.tracer)
        return 0

    if args.profile_command == "diff":
        before = Profile.load(args.before)
        after = Profile.load(args.after)
        diff = diff_profiles(
            before, after,
            rel_threshold=args.threshold, min_ms=args.min_ms,
        )
        print(format_diff(diff, verbose=args.verbose))
        return 1 if diff.regressions() else 0

    if args.profile_command == "export":
        spans = load_spans(args.spans)
        os.makedirs(args.out, exist_ok=True)
        profile = analyze_spans(spans)
        chrome = write_chrome_trace(
            spans, os.path.join(args.out, "trace.chrome.json")
        )
        folded = write_folded_stacks(
            profile, os.path.join(args.out, "stacks.folded"), by=args.by
        )
        print(f"chrome trace: {chrome}\nfolded stacks: {folded}")
        print(f"({len(profile.ops)} completed op(s) attributed)")
        return 0

    raise ValueError(f"unknown profile subcommand {args.profile_command!r}")


def _chaos_run_config(args, detect: Optional[bool] = None):
    from repro.chaos import ChaosRunConfig, RecoverySLO

    return ChaosRunConfig(
        seed=args.seed,
        clients=args.clients,
        deployments=args.deployments,
        write_fraction=args.write_frac,
        think_ms=args.think,
        telemetry_interval_ms=args.interval,
        drain_ms=args.drain,
        slo=RecoverySLO(window_ms=args.window),
        datanodes=args.datanodes,
        chunk_write_fraction=args.chunk_write_frac,
        detect=(
            detect if detect is not None
            else getattr(args, "detect", False)
        ),
        ruleset=getattr(args, "ruleset", "default"),
    )


def _chaos_result_lines(result) -> List[str]:
    lines = [result.summary(), result.report.render()]
    injections = [e for e in result.engine.log if e.action == "inject"]
    lines.append(
        f"fault log: {len(result.engine.log)} event(s), "
        f"{len(injections)} injection(s), hash {result.log_hash}"
    )
    if result.incidents is not None:
        lines.append("")
        lines.append(result.incidents.render())
    return lines


def _cmd_chaos(args) -> int:
    import json

    from repro.chaos import (
        EXPECTED_FAIL,
        MATRIX,
        builtin_scenarios,
        load_scenario,
        run_scenario,
    )

    if args.chaos_command == "run":
        if args.list:
            rows = [
                [s.name, len(s.faults), f"{s.clear_ms / 1000:.1f}s",
                 s.description]
                for s in builtin_scenarios().values()
            ]
            print(tabulate(["scenario", "faults", "clear", "description"],
                           rows))
            return 0
        if args.file:
            scenario = load_scenario(args.file)
        elif args.scenario:
            scenario = builtin_scenarios().get(args.scenario)
            if scenario is None:
                print(f"unknown scenario {args.scenario!r} "
                      f"(try: repro chaos run --list)", file=sys.stderr)
                return 2
        else:
            print("need a scenario name or --file (or --list)",
                  file=sys.stderr)
            return 2
        result = run_scenario(scenario, _chaos_run_config(args))
        for line in _chaos_result_lines(result):
            print(line)
        if args.verbose:
            for event in result.engine.log:
                print(f"  {event}")
        return 0 if result.passed else 1

    if args.chaos_command == "matrix":
        scenarios = builtin_scenarios()
        names = list(args.scenarios) if args.scenarios else list(MATRIX)
        unknown = [n for n in names if n not in scenarios]
        if unknown:
            print(f"unknown scenario(s): {unknown}", file=sys.stderr)
            return 2
        config = _chaos_run_config(args)
        rows = []
        records = {}
        exit_code = 0
        for name in names:
            result = run_scenario(scenarios[name], config)
            expected_fail = name in EXPECTED_FAIL
            ok = result.passed != expected_fail
            verdict = "PASS" if result.passed else "FAIL"
            if expected_fail:
                verdict += " (expected)" if ok else " (!)"
            elif not ok:
                exit_code = 1
            if expected_fail and not ok:
                exit_code = 1
            recovery = result.report.recovery_time_ms
            rows.append([
                name, verdict, result.ops_ok, result.ops_failed,
                "-" if recovery is None else f"{recovery:.0f} ms",
                result.event_hash[:12],
            ])
            records[name] = {
                "passed": result.passed,
                "expected_fail": expected_fail,
                "ops_ok": result.ops_ok,
                "ops_failed": result.ops_failed,
                "errors": result.errors,
                "checks": result.report.checks,
                "hung_ops": len(result.report.hung_ops),
                "recovery_time_ms": recovery,
                "duration_ms": result.duration_ms,
                "event_hash": result.event_hash,
                "fault_log_hash": result.log_hash,
            }
            if result.incidents is not None:
                records[name].update({
                    "incidents": len(result.incidents.incidents),
                    "mttd_ms": result.incidents.mttd_ms,
                    "top_suspect": result.report.top_suspect,
                })
            if result.tenant_counts is not None:
                records[name].update({
                    "tenants": {
                        tenant: {"issued": c.issued, "ok": c.ok,
                                 "failed": c.failed, "errors": c.errors}
                        for tenant, c in sorted(result.tenant_counts.items())
                    },
                    "jain_min": result.report.jain_min,
                    "jain_recovered": result.report.jain_recovered,
                    "baseline_victim_p99_ms":
                        result.report.baseline_victim_p99_ms,
                    "recovered_victim_p99_ms":
                        result.report.recovered_victim_p99_ms,
                    "fairness_recovery_ms":
                        result.report.fairness_recovery_ms,
                })
            if result.fleet is not None:
                scanner = result.fleet.scanner
                records[name].update({
                    "datanodes": len(result.fleet.nodes),
                    "datanodes_dead": len(result.fleet.tracker.dead()),
                    "blocks": len(result.fleet.blocks),
                    "repairs": len(scanner.records),
                    "lost_blocks": sorted(scanner.lost),
                    "replication_recovery_ms":
                        result.report.replication_recovery_ms,
                })
            if not ok:
                print(result.report.render())
        print(tabulate(
            ["scenario", "verdict", "ok", "failed", "recovery", "events"],
            rows,
        ))
        if args.bench_json:
            with open(args.bench_json, "w") as fh:
                json.dump(
                    {"version": 1, "seed": args.seed, "scenarios": records},
                    fh, indent=2, sort_keys=True,
                )
            print(f"\nbench json: {args.bench_json}")
        print("matrix:", "PASS" if exit_code == 0 else "FAIL")
        return exit_code

    raise ValueError(f"unknown chaos subcommand {args.chaos_command!r}")


def _incident_rules(args):
    """Resolve --ruleset / --rules-file into a rule list."""
    from repro.incidents import get_ruleset, load_rules

    if getattr(args, "rules_file", None):
        with open(args.rules_file) as handle:
            return load_rules(handle.read())
    return get_ruleset(getattr(args, "ruleset", "default"))


def _incidents_exports(result, out: str) -> List[str]:
    """Write incidents.json / incidents.md / telemetry.jsonl to ``out``."""
    import os

    from repro.telemetry.export import write_jsonl

    os.makedirs(out, exist_ok=True)
    paths = [result.incidents.save(os.path.join(out, "incidents.json"))]
    md = os.path.join(out, "incidents.md")
    with open(md, "w") as handle:
        handle.write(result.incidents.render_markdown())
    paths.append(md)
    if result.timeseries is not None:
        series = os.path.join(out, "telemetry.jsonl")
        write_jsonl(result.timeseries, series)
        paths.append(series)
    return paths


def _cmd_incidents(args) -> int:
    import json
    import os

    from repro.incidents import (
        AlertEngine,
        Evidence,
        build_report,
        rule_to_dict,
    )

    if args.incidents_command == "rules":
        rules = _incident_rules(args)
        if args.json:
            print(json.dumps(
                [rule_to_dict(rule) for rule in rules],
                indent=2, sort_keys=True,
            ))
            return 0
        rows = [
            [rule.name, rule.kind, rule.severity, rule.condition(),
             rule.description]
            for rule in rules
        ]
        print(tabulate(
            ["rule", "kind", "severity", "condition", "description"], rows
        ))
        return 0

    if args.incidents_command == "analyze":
        from repro.telemetry import read_jsonl

        timeseries = read_jsonl(args.series)
        engine = AlertEngine(_incident_rules(args))
        alerts = engine.replay(timeseries)
        end_ms = timeseries.samples[-1][0] if timeseries.samples else 0.0
        report = build_report(
            alerts, Evidence(timeseries=timeseries),
            scenario=args.scenario or os.path.basename(args.series),
            end_ms=end_ms,
        )
        print(report.render())
        if args.json:
            report.save(args.json)
            print(f"\nincidents json: {args.json}")
        return 0

    from repro.chaos import EXPECTED_FAIL, MATRIX, builtin_scenarios, \
        load_scenario, run_scenario

    if args.incidents_command == "run":
        if args.file:
            scenario = load_scenario(args.file)
        else:
            scenario = builtin_scenarios().get(args.scenario or "")
            if scenario is None:
                print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
                return 2
        result = run_scenario(scenario, _chaos_run_config(args, detect=True))
        print(result.summary())
        print(result.report.render())
        print()
        print(result.incidents.render())
        if args.out:
            print("\nexports:")
            for path in _incidents_exports(result, args.out):
                print(f"  {path}")
        return 0 if result.passed else 1

    if args.incidents_command == "matrix":
        scenarios = builtin_scenarios()
        names = (
            list(args.scenarios) if args.scenarios
            else list(MATRIX) + ["control"]
        )
        unknown = [n for n in names if n not in scenarios]
        if unknown:
            print(f"unknown scenario(s): {unknown}", file=sys.stderr)
            return 2
        config = _chaos_run_config(args, detect=True)
        rows = []
        records = {}
        exit_code = 0
        for name in names:
            result = run_scenario(scenarios[name], config)
            expected_fail = name in EXPECTED_FAIL
            ok = result.passed != expected_fail
            if not ok:
                exit_code = 1
                print(result.report.render())
            incidents = result.incidents
            mttd = incidents.mttd_ms
            rows.append([
                name,
                ("PASS" if result.passed else "FAIL")
                + (" (expected)" if expected_fail and ok else "")
                + (" (!)" if not ok else ""),
                len(incidents.incidents),
                "-" if mttd is None else f"{mttd:.0f} ms",
                result.report.top_suspect or "-",
            ])
            records[name] = {
                "passed": result.passed,
                "expected_fail": expected_fail,
                "incidents": len(incidents.incidents),
                "alerts": incidents.alerts_total,
                "mttd_ms": mttd,
                "top_suspect": result.report.top_suspect,
                "event_hash": result.event_hash,
                "fault_log_hash": result.log_hash,
            }
        print(tabulate(
            ["scenario", "verdict", "incidents", "MTTD", "top suspect"], rows
        ))
        if args.bench_json:
            with open(args.bench_json, "w") as fh:
                json.dump(
                    {"version": 1, "seed": args.seed,
                     "detection_window_ms": config.slo.detection_window_ms,
                     "scenarios": records},
                    fh, indent=2, sort_keys=True,
                )
            print(f"\nbench json: {args.bench_json}")
        if args.baseline:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
            drift = []
            for name, expected in sorted(baseline["scenarios"].items()):
                got = records.get(name)
                if got is None:
                    continue
                for field in ("passed", "incidents", "top_suspect"):
                    if got[field] != expected[field]:
                        drift.append(
                            f"{name}: {field} {expected[field]!r} -> "
                            f"{got[field]!r}"
                        )
            if drift:
                exit_code = 1
                print("\ndetection baseline drift:")
                for line in drift:
                    print(f"  {line}")
            else:
                print("\ndetection baseline: OK")
        print("detection matrix:", "PASS" if exit_code == 0 else "FAIL")
        return exit_code

    raise ValueError(
        f"unknown incidents subcommand {args.incidents_command!r}"
    )


def _resilience_config(args):
    from repro.chaos import RecoverySLO, resilience_run_config

    return resilience_run_config(
        seed=args.seed,
        clients=args.clients,
        deployments=args.deployments,
        write_fraction=args.write_frac,
        think_ms=args.think,
        telemetry_interval_ms=args.interval,
        drain_ms=args.drain,
        slo=RecoverySLO(window_ms=args.window),
        ruleset=getattr(args, "ruleset", "default"),
    )


def _cmd_resilience(args) -> int:
    import json

    from repro.chaos import (
        EXPECTED_FAIL,
        RESILIENCE_MATRIX,
        builtin_scenarios,
        run_scenario,
    )

    scenarios = builtin_scenarios()
    default_names = list(RESILIENCE_MATRIX) + ["metastable-brownout-noshed"]

    if args.resilience_command == "run":
        if args.list:
            rows = [
                [s.name, len(s.faults), f"{s.clear_ms / 1000:.1f}s",
                 s.description]
                for s in (scenarios[n] for n in default_names)
            ]
            print(tabulate(["scenario", "faults", "clear", "description"],
                           rows))
            return 0
        if not args.scenario:
            print("need a scenario name (or --list)", file=sys.stderr)
            return 2
        scenario = scenarios.get(args.scenario)
        if scenario is None:
            print(f"unknown scenario {args.scenario!r} "
                  f"(try: repro resilience run --list)", file=sys.stderr)
            return 2
        result = run_scenario(scenario, _resilience_config(args))
        for line in _chaos_result_lines(result):
            print(line)
        if args.verbose:
            for event in result.engine.log:
                print(f"  {event}")
        return 0 if result.passed else 1

    if args.resilience_command == "matrix":
        names = list(args.scenarios) if args.scenarios else default_names
        unknown = [n for n in names if n not in scenarios]
        if unknown:
            print(f"unknown scenario(s): {unknown}", file=sys.stderr)
            return 2
        config = _resilience_config(args)
        rows = []
        records = {}
        exit_code = 0
        for name in names:
            result = run_scenario(scenarios[name], config)
            expected_fail = name in EXPECTED_FAIL
            ok = result.passed != expected_fail
            if not ok:
                exit_code = 1
                print(result.report.render())
            snap = result.resilience or {}
            violations = result.report.deadline_violations
            rows.append([
                name,
                ("PASS" if result.passed else "FAIL")
                + (" (expected)" if expected_fail and ok else "")
                + (" (!)" if not ok else ""),
                result.ops_ok,
                snap.get("sheds", 0),
                snap.get("deadline_expirations", 0),
                "-" if violations is None else violations,
                snap.get("breaker_opens", 0),
            ])
            records[name] = {
                "passed": result.passed,
                "expected_fail": expected_fail,
                "ops_ok": result.ops_ok,
                "ops_failed": result.ops_failed,
                "shed": snap.get("sheds", 0),
                "deadline_expirations": snap.get("deadline_expirations", 0),
                "deadline_violations": violations,
                "breaker_opened": snap.get("breaker_opens", 0) > 0,
                "breaker_opens": snap.get("breaker_opens", 0),
                "breaker_transitions": snap.get("breaker_transitions", 0),
                "stale_reads": snap.get("stale_reads", 0),
                "budget_exhaustions": snap.get("budget_exhaustions", 0),
                "baseline_goodput": result.report.baseline_goodput,
                "recovered_goodput": result.report.recovered_goodput,
                "event_hash": result.event_hash,
                "fault_log_hash": result.log_hash,
            }
        print(tabulate(
            ["scenario", "verdict", "ok", "sheds", "give-ups",
             "violations", "breaker opens"],
            rows,
        ))
        if args.bench_json:
            with open(args.bench_json, "w") as fh:
                json.dump(
                    {"version": 1, "seed": args.seed, "scenarios": records},
                    fh, indent=2, sort_keys=True,
                )
            print(f"\nbench json: {args.bench_json}")
        if args.baseline:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
            drift = []
            for name, expected in sorted(baseline["scenarios"].items()):
                got = records.get(name)
                if got is None:
                    continue
                for field in ("passed", "deadline_violations",
                              "breaker_opened", "shed"):
                    if got[field] != expected[field]:
                        drift.append(
                            f"{name}: {field} {expected[field]!r} -> "
                            f"{got[field]!r}"
                        )
            if drift:
                exit_code = 1
                print("\nresilience baseline drift:")
                for line in drift:
                    print(f"  {line}")
            else:
                print("\nresilience baseline: OK")
        print("resilience matrix:", "PASS" if exit_code == 0 else "FAIL")
        return exit_code

    raise ValueError(
        f"unknown resilience subcommand {args.resilience_command!r}"
    )


def _cmd_tenants(args) -> int:
    """Multi-tenant run: per-tenant dashboard + fairness report."""
    import json

    from repro.tenants import TenantRunConfig, render_tenant_dashboard, run_tenants

    config = TenantRunConfig(
        seed=args.seed,
        duration_ms=args.duration,
        deployments=args.deployments,
        telemetry_interval_ms=args.interval,
        governed=args.governed,
        profile=args.profile,
    )
    result = run_tenants(config=config)
    print(render_tenant_dashboard(
        result.timeseries, specs=result.specs, report=result.report,
    ))
    print(f"\n{result.total_ops} op(s) across {len(result.specs)} tenant(s) "
          f"in {result.duration_ms:.0f} sim-ms  "
          f"events={result.event_hash[:12]}")
    if result.profile is not None:
        print("\nper-tenant critical-path shares:")
        for tenant, ops in sorted(result.profile.by_tenant().items()):
            if not tenant:
                continue
            shares = result.profile.stage_shares(tenant=tenant)
            top = sorted(shares.items(), key=lambda kv: -kv[1])[:4]
            stages = "  ".join(f"{s} {100 * v:.0f}%" for s, v in top)
            print(f"  {tenant:<12s} {len(ops):5d} ops  {stages}")
    if args.out:
        import os

        os.makedirs(args.out, exist_ok=True)
        from repro.telemetry.export import write_csv, write_jsonl, write_prometheus

        jsonl = os.path.join(args.out, "tenants.jsonl")
        csv = os.path.join(args.out, "tenants.csv")
        prom = os.path.join(args.out, "tenants.prom")
        write_jsonl(result.timeseries, jsonl)
        write_csv(result.timeseries, csv)
        write_prometheus(result.registry, prom)
        print("\nexports:")
        for path in (jsonl, csv, prom):
            print(f"  {path}")
    if args.json:
        payload = {
            "version": 1,
            "seed": args.seed,
            "duration_ms": result.duration_ms,
            "event_hash": result.event_hash,
            "report": result.report.as_dict(),
            "counts": {
                tenant: {"issued": c.issued, "ok": c.ok, "failed": c.failed}
                for tenant, c in sorted(result.counts.items())
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\njson: {args.json}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.kernel import (
        compare_kernel_bench,
        format_kernel_bench,
        format_kernel_diff,
        load_kernel_bench,
        quick_scale_names,
        run_kernel_bench,
        save_kernel_bench,
    )

    if args.bench_command != "kernel":
        raise ValueError(f"unknown bench subcommand {args.bench_command!r}")

    if args.diff:
        before = load_kernel_bench(args.diff[0])
        after = load_kernel_bench(args.diff[1])
        diff = compare_kernel_bench(before, after, threshold=args.threshold)
        print(format_kernel_diff(diff))
        return 0 if diff.ok else 1

    scales = quick_scale_names(args.quick, args.scales)
    result = run_kernel_bench(
        scales=scales,
        seed=args.seed,
        repeats=args.repeats,
        verify_count=args.verify_count,
        mem_probe=not args.no_mem,
    )
    print(format_kernel_bench(result))
    if args.json:
        print(f"\nbench json: {save_kernel_bench(result, args.json)}")
    if args.baseline:
        baseline = load_kernel_bench(args.baseline)
        diff = compare_kernel_bench(baseline, result, threshold=args.threshold)
        print()
        print(format_kernel_diff(diff))
        return 0 if diff.ok else 1
    return 0


def _cmd_experiments(_args) -> int:
    table = [
        ("fig8a/fig8b", "Spotify workload throughput", "benchmarks/test_fig8a…,8b…"),
        ("fig8c", "performance-per-cost timeline", "benchmarks/test_fig8c…"),
        ("fig9", "cumulative cost", "benchmarks/test_fig9…"),
        ("fig10", "latency CDFs", "benchmarks/test_fig10…"),
        ("fig11", "client-driven scaling", "benchmarks/test_fig11…"),
        ("fig12", "resource scaling", "benchmarks/test_fig12…"),
        ("fig13", "read perf-per-cost", "benchmarks/test_fig13…"),
        ("fig14", "auto-scaling ablation", "benchmarks/test_fig14…"),
        ("table3", "subtree mv latency", "benchmarks/test_table3…"),
        ("fig15", "fault tolerance", "benchmarks/test_fig15…"),
        ("fig16", "λIndexFS vs IndexFS", "benchmarks/test_fig16…"),
        ("app B/C/D", "straggler / anti-thrash / offload", "benchmarks/test_app*…"),
    ]
    print(tabulate(["experiment", "reproduces", "bench target"], table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="λFS (ASPLOS '23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_help = "enable causal tracing + invariant checking"
    demo = sub.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument("--trace", action="store_true", help=trace_help)

    spotify = sub.add_parser("spotify", help="mini Figure 8(a) run")
    spotify.add_argument("--base", type=float, default=3_000.0,
                         help="base throughput (ops/s)")
    spotify.add_argument("--duration", type=float, default=20.0,
                         help="workload duration (seconds)")
    spotify.add_argument("--clients", type=int, default=128)
    spotify.add_argument("--trace", action="store_true", help=trace_help)

    scaling = sub.add_parser("scaling", help="one client-scaling point")
    scaling.add_argument("--clients", type=int, default=64)
    scaling.add_argument("--ops", type=int, default=96)

    table3 = sub.add_parser("table3", help="subtree mv latency table")
    table3.add_argument("--sizes", type=int, nargs="+",
                        default=[1_024, 4_096])

    replay = sub.add_parser("replay", help="replay an audit-log trace")
    replay.add_argument("trace", help="trace file: '<ms> <op> <path> [dst]'")
    replay.add_argument("--clients", type=int, default=8)
    replay.add_argument("--trace-spans", action="store_true", help=trace_help)

    telemetry = sub.add_parser(
        "telemetry",
        help="telemetry-instrumented microbenchmark + ascii dashboard",
    )
    telemetry.add_argument("--clients", type=int, default=256)
    telemetry.add_argument("--ops", type=int, default=192,
                           help="measured ops per client per phase")
    telemetry.add_argument("--warmup", type=int, default=64,
                           help="connection-prelude ops per prelude client")
    telemetry.add_argument("--deployments", type=int, default=4)
    telemetry.add_argument("--interval", type=float, default=250.0,
                           help="sampling interval (sim-ms)")
    telemetry.add_argument("--replacement", type=float, default=0.1,
                           help="HTTP-TCP replacement probability")
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument("--out", default=None,
                           help="directory for JSONL/CSV/Prometheus exports")
    telemetry.add_argument("--load", default=None, metavar="JSONL",
                           help="render a dashboard from an existing export")
    telemetry.add_argument("--trace", action="store_true", help=trace_help)

    profile = sub.add_parser(
        "profile",
        help="critical-path profiling: run / diff / export",
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)

    profile_run = profile_sub.add_parser(
        "run", help="profiled microbenchmark + attribution report"
    )
    profile_run.add_argument("--clients", type=int, default=64)
    profile_run.add_argument("--ops", type=int, default=48,
                             help="measured ops per client (read phase; "
                                  "the create phase runs a quarter)")
    profile_run.add_argument("--warmup", type=int, default=32,
                             help="connection-prelude ops per prelude client")
    profile_run.add_argument("--deployments", type=int, default=4)
    profile_run.add_argument("--seed", type=int, default=0)
    profile_run.add_argument("--replacement", type=float, default=0.05,
                             help="HTTP-TCP replacement probability")
    profile_run.add_argument("--slow-store", type=float, default=1.0,
                             help="multiply store service times (regression "
                                  "injection for diff testing)")
    profile_run.add_argument("--top", type=int, default=10,
                             help="rows in the top-contributors table")
    profile_run.add_argument("--out", default=None,
                             help="directory for profile.json, Chrome trace, "
                                  "folded stacks, spans JSONL")
    profile_run.add_argument("--bench-json", default=None, metavar="PATH",
                             help="write per-op p50/p99 + stage shares JSON")

    profile_diff = profile_sub.add_parser(
        "diff", help="stage-by-stage regression diff of two profile.json"
    )
    profile_diff.add_argument("before", help="baseline profile.json")
    profile_diff.add_argument("after", help="candidate profile.json")
    profile_diff.add_argument("--threshold", type=float, default=0.25,
                              help="relative growth flagged as regression")
    profile_diff.add_argument("--min-ms", type=float, default=0.05,
                              help="absolute per-op growth floor (ms)")
    profile_diff.add_argument("--verbose", action="store_true",
                              help="print every stage cell, not just movers")

    profile_export = profile_sub.add_parser(
        "export", help="re-render exports from a spans.jsonl dump"
    )
    profile_export.add_argument("spans", help="spans.jsonl from 'profile run'")
    profile_export.add_argument("--out", required=True,
                                help="output directory")
    profile_export.add_argument("--by", choices=("kind", "stage"),
                                default="kind",
                                help="folded-stack leaf frames")

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault injection: run / matrix",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    def _chaos_knobs(p):
        p.add_argument("--clients", type=int, default=24)
        p.add_argument("--deployments", type=int, default=4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--write-frac", type=float, default=0.15,
                       help="fraction of ops that are metadata writes")
        p.add_argument("--think", type=float, default=40.0,
                       help="mean client think time (sim-ms)")
        p.add_argument("--interval", type=float, default=250.0,
                       help="telemetry sampling interval (sim-ms)")
        p.add_argument("--window", type=float, default=10_000.0,
                       help="recovery-SLO window after faults clear (sim-ms)")
        p.add_argument("--drain", type=float, default=8_000.0,
                       help="grace beyond the SLO window before cutoff")
        p.add_argument("--datanodes", type=int, default=None,
                       help="DataNode fleet size (default: auto — 9 for "
                            "data-plane scenarios, none otherwise)")
        p.add_argument("--chunk-write-frac", type=float, default=0.25,
                       help="fraction of ops that are pipelined chunk "
                            "writes when a fleet is attached")
        p.add_argument("--ruleset", default="default",
                       help="alert rule catalog for --detect runs")

    chaos_detect_help = ("attach the online alert engine and add the "
                         "detection gate to the verdict")

    chaos_run = chaos_sub.add_parser(
        "run", help="one scenario under load + recovery verification"
    )
    chaos_run.add_argument("scenario", nargs="?", default=None,
                           help="built-in scenario name")
    chaos_run.add_argument("--file", default=None, metavar="JSON",
                           help="load the scenario from a JSON file instead")
    chaos_run.add_argument("--list", action="store_true",
                           help="list built-in scenarios and exit")
    chaos_run.add_argument("--verbose", action="store_true",
                           help="print the full fault log")
    chaos_run.add_argument("--detect", action="store_true",
                           help=chaos_detect_help)
    _chaos_knobs(chaos_run)

    chaos_matrix = chaos_sub.add_parser(
        "matrix", help="the regression scenario matrix"
    )
    chaos_matrix.add_argument("--scenarios", nargs="+", default=None,
                              help="override the default matrix set")
    chaos_matrix.add_argument("--bench-json", default=None, metavar="PATH",
                              help="write per-scenario verdicts + hashes JSON")
    chaos_matrix.add_argument("--detect", action="store_true",
                              help=chaos_detect_help)
    _chaos_knobs(chaos_matrix)

    resilience = sub.add_parser(
        "resilience",
        help="overload resilience: deadline / breaker / shedding "
             "scenarios with the gate-7 verdict: run / matrix",
    )
    resilience_sub = resilience.add_subparsers(
        dest="resilience_command", required=True
    )

    resilience_run = resilience_sub.add_parser(
        "run", help="one overload scenario under the convoy-prone "
                    "workload shape"
    )
    resilience_run.add_argument("scenario", nargs="?", default=None,
                                help="built-in scenario name")
    resilience_run.add_argument("--list", action="store_true",
                                help="list the overload scenarios and exit")
    resilience_run.add_argument("--verbose", action="store_true",
                                help="print the full fault log")
    _chaos_knobs(resilience_run)

    resilience_matrix = resilience_sub.add_parser(
        "matrix", help="the overload regression set (includes the "
                       "expected-FAIL noshed twin)"
    )
    resilience_matrix.add_argument("--scenarios", nargs="+", default=None,
                                   help="override the default set")
    resilience_matrix.add_argument("--bench-json", default=None,
                                   metavar="PATH",
                                   help="write the resilience baseline JSON "
                                        "(BENCH_resilience.json)")
    resilience_matrix.add_argument("--baseline", default=None, metavar="PATH",
                                   help="gate against a committed resilience "
                                        "baseline (exit 1 on drift)")
    _chaos_knobs(resilience_matrix)

    for p in (resilience_run, resilience_matrix):
        # The convoy-prone canonical shape (see resilience_run_config),
        # not the generic chaos defaults.
        p.set_defaults(clients=48, write_frac=0.5, window=8_000.0)

    incidents = sub.add_parser(
        "incidents",
        help="online alerting + root-cause attribution: "
             "run / matrix / analyze / rules",
    )
    incidents_sub = incidents.add_subparsers(
        dest="incidents_command", required=True
    )

    incidents_run = incidents_sub.add_parser(
        "run", help="one chaos scenario with detection on: incident "
                    "timeline + ranked suspects"
    )
    incidents_run.add_argument("scenario", nargs="?", default=None,
                               help="built-in scenario name")
    incidents_run.add_argument("--file", default=None, metavar="JSON",
                               help="load the scenario from a JSON file")
    incidents_run.add_argument("--out", default=None, metavar="DIR",
                               help="write incidents.json / incidents.md / "
                                    "telemetry.jsonl")
    _chaos_knobs(incidents_run)

    incidents_matrix = incidents_sub.add_parser(
        "matrix", help="the detection regression set (matrix + control)"
    )
    incidents_matrix.add_argument("--scenarios", nargs="+", default=None,
                                  help="override the default set "
                                       "(matrix + control)")
    incidents_matrix.add_argument("--bench-json", default=None,
                                  metavar="PATH",
                                  help="write the detection baseline JSON "
                                       "(BENCH_incidents.json)")
    incidents_matrix.add_argument("--baseline", default=None, metavar="PATH",
                                  help="gate against a committed detection "
                                       "baseline (exit 1 on drift)")
    _chaos_knobs(incidents_matrix)

    incidents_analyze = incidents_sub.add_parser(
        "analyze", help="offline rule replay over a telemetry JSONL export"
    )
    incidents_analyze.add_argument("series", help="telemetry.jsonl path")
    incidents_analyze.add_argument("--scenario", default=None,
                                   help="label for the report header")
    incidents_analyze.add_argument("--ruleset", default="default")
    incidents_analyze.add_argument("--rules-file", default=None,
                                   metavar="JSON",
                                   help="load rules from a JSON file "
                                        "instead of a named ruleset")
    incidents_analyze.add_argument("--json", default=None, metavar="PATH",
                                   help="write the incident report JSON")

    incidents_rules = incidents_sub.add_parser(
        "rules", help="show the alert-rule catalog"
    )
    incidents_rules.add_argument("--ruleset", default="default")
    incidents_rules.add_argument("--rules-file", default=None, metavar="JSON")
    incidents_rules.add_argument("--json", action="store_true",
                                 help="dump the catalog as JSON")

    tenants = sub.add_parser(
        "tenants",
        help="multi-tenant run: per-tenant dashboard + fairness report",
    )
    tenants.add_argument("--seed", type=int, default=0)
    tenants.add_argument("--duration", type=float, default=10_000.0,
                         help="workload duration (sim-ms)")
    tenants.add_argument("--deployments", type=int, default=4)
    tenants.add_argument("--interval", type=float, default=250.0,
                         help="telemetry sampling interval (sim-ms)")
    tenants.add_argument("--governed", action="store_true",
                         help="attach the QoS token-bucket governor")
    tenants.add_argument("--profile", action="store_true",
                         help="also attribute per-tenant critical paths")
    tenants.add_argument("--out", default=None, metavar="DIR",
                         help="export the series (JSONL/CSV/Prometheus)")
    tenants.add_argument("--json", default=None, metavar="PATH",
                         help="write the fairness report JSON")

    bench = sub.add_parser(
        "bench",
        help="wall-clock toolkit benchmarks: kernel",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_kernel = bench_sub.add_parser(
        "kernel",
        help="raw simulator throughput (events/sec, ops/sec, peak RSS)",
    )
    bench_kernel.add_argument("--quick", action="store_true",
                              help="run only the smoke scale point "
                                   "(for regression gating)")
    bench_kernel.add_argument("--scales", nargs="+", default=None,
                              help="explicit scale points (default: all)")
    bench_kernel.add_argument("--seed", type=int, default=0)
    bench_kernel.add_argument("--repeats", type=int, default=2,
                              help="timed repetitions per point (best wins)")
    bench_kernel.add_argument("--json", default=None, metavar="PATH",
                              help="write the result JSON (BENCH_kernel.json)")
    bench_kernel.add_argument("--baseline", default=None, metavar="PATH",
                              help="gate events/sec against this bench JSON "
                                   "(exit 1 on regression)")
    bench_kernel.add_argument("--threshold", type=float, default=0.10,
                              help="relative events/sec drop that fails "
                                   "the gate")
    bench_kernel.add_argument("--diff", nargs=2, default=None,
                              metavar=("BEFORE", "AFTER"),
                              help="compare two bench JSONs without running")
    bench_kernel.add_argument("--no-mem", action="store_true",
                              help="skip the tracemalloc heap probe")
    bench_kernel.add_argument("--verify-count", action="store_true",
                              help="cross-check event counts with a "
                                   "counting on_step hook (untimed)")

    sub.add_parser("experiments", help="list experiment drivers")
    return parser


COMMANDS = {
    "demo": _cmd_demo,
    "spotify": _cmd_spotify,
    "scaling": _cmd_scaling,
    "table3": _cmd_table3,
    "replay": _cmd_replay,
    "telemetry": _cmd_telemetry,
    "profile": _cmd_profile,
    "chaos": _cmd_chaos,
    "resilience": _cmd_resilience,
    "incidents": _cmd_incidents,
    "tenants": _cmd_tenants,
    "bench": _cmd_bench,
    "experiments": _cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
