"""Operation records, throughput timelines, and latency statistics."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class OpRecord:
    """One completed client operation."""

    op: str
    start_ms: float
    end_ms: float
    ok: bool = True
    via: str = "tcp"
    cache_hit: bool = False

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


class MetricsRecorder:
    """Collects :class:`OpRecord` objects and derives statistics."""

    def __init__(self) -> None:
        self.records: List[OpRecord] = []
        self._cache_stats_provider = None

    def attach_cache_stats(self, provider) -> None:
        """Make ``provider()`` (returning a CacheStats-like object with
        ``lookups``/``hit_ratio``) the authoritative source for
        :meth:`cache_hit_ratio`, replacing per-record flag counting."""
        self._cache_stats_provider = provider

    def record(
        self,
        op: str,
        start_ms: float,
        end_ms: float,
        ok: bool = True,
        via: str = "tcp",
        cache_hit: bool = False,
    ) -> None:
        self.records.append(OpRecord(op, start_ms, end_ms, ok, via, cache_hit))

    def __len__(self) -> int:
        return len(self.records)

    # -- throughput ----------------------------------------------------
    def throughput_timeline(self, bin_ms: float = 1_000.0) -> List[Tuple[float, float]]:
        """(bin start ms, ops/sec) pairs over the recorded span."""
        if not self.records:
            return []
        ends = sorted(record.end_ms for record in self.records)
        start = 0.0
        stop = ends[-1]
        timeline: List[Tuple[float, float]] = []
        t = start
        while t <= stop:
            lo = bisect_right(ends, t)
            hi = bisect_right(ends, t + bin_ms)
            timeline.append((t, (hi - lo) * 1_000.0 / bin_ms))
            t += bin_ms
        return timeline

    def average_throughput(self, duration_ms: Optional[float] = None) -> float:
        """Mean ops/sec over ``duration_ms`` (or the recorded span)."""
        if not self.records:
            return 0.0
        if duration_ms is None:
            duration_ms = max(record.end_ms for record in self.records)
        if duration_ms <= 0:
            return 0.0
        return len(self.records) * 1_000.0 / duration_ms

    def peak_throughput(self, bin_ms: float = 1_000.0) -> float:
        timeline = self.throughput_timeline(bin_ms)
        return max((ops for _, ops in timeline), default=0.0)

    # -- latency ----------------------------------------------------------
    def latencies(self, op: Optional[str] = None, read_only: bool = False) -> List[float]:
        read_ops = {"read file", "stat file/dir", "ls file/dir"}
        return [
            record.latency_ms
            for record in self.records
            if (op is None or record.op == op)
            and (not read_only or record.op in read_ops)
        ]

    def average_latency(self, op: Optional[str] = None) -> float:
        values = self.latencies(op)
        return sum(values) / len(values) if values else 0.0

    def cache_hit_ratio(self) -> float:
        """Hit ratio from the attached CacheStats when available
        (single source of truth); falls back to per-record flags for
        standalone recorders with no system attached."""
        if self._cache_stats_provider is not None:
            stats = self._cache_stats_provider()
            if stats.lookups:
                return stats.hit_ratio
        if not self.records:
            return 0.0
        hits = sum(1 for record in self.records if record.cache_hit)
        return hits / len(self.records)

    def ops_breakdown(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.op] = counts.get(record.op, 0) + 1
        return counts


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def latency_cdf(values: Iterable[float], points: int = 100) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs for plotting a CDF."""
    ordered = sorted(values)
    if not ordered:
        return []
    count = len(ordered)
    step = max(1, count // points)
    cdf = [
        (ordered[index], (index + 1) / count)
        for index in range(0, count, step)
    ]
    if cdf[-1][0] != ordered[-1]:
        cdf.append((ordered[-1], 1.0))
    return cdf
