"""Monetary cost models (Figure 9, §5.2.5).

``lambda_cost`` bills NameNodes only while they actively serve
requests, at AWS Lambda's published prices.  ``simplified_cost``
bills provisioned lifetime (the "λFS (Simplified)" curve).
``vm_cost`` bills a serverful cluster for the whole run, calibrated
against the paper's numbers (512 vCPUs for the 300 s workload =
$2.50).
"""

from __future__ import annotations

from typing import Iterable

LAMBDA_GB_SECOND_USD = 0.0000166667
"""AWS Lambda price per GB-second, billed at 1 ms granularity [5]."""

LAMBDA_PER_REQUEST_USD = 0.20 / 1_000_000
"""AWS Lambda price per request ($0.20 per 1M)."""

VM_VCPU_SECOND_USD = 2.50 / (300.0 * 512.0)
"""Per-vCPU-second price of the serverful cluster, solved from the
paper's Figure 9: the 512-vCPU HopsFS cluster cost $2.50 over 300 s."""


def lambda_cost(
    busy_ms_by_instance: Iterable[float],
    requests: int,
    ram_gb: float,
) -> float:
    """Pay-per-use cost: busy GB-seconds plus per-request charges."""
    busy_seconds = sum(busy_ms_by_instance) / 1_000.0
    return (
        busy_seconds * ram_gb * LAMBDA_GB_SECOND_USD
        + requests * LAMBDA_PER_REQUEST_USD
    )


def simplified_cost(
    provisioned_ms_by_instance: Iterable[float],
    requests: int,
    ram_gb: float,
) -> float:
    """Provisioned-lifetime cost ("λFS (Simplified)" in Figure 9)."""
    provisioned_seconds = sum(provisioned_ms_by_instance) / 1_000.0
    return (
        provisioned_seconds * ram_gb * LAMBDA_GB_SECOND_USD
        + requests * LAMBDA_PER_REQUEST_USD
    )


def vm_cost(vcpus: float, duration_ms: float) -> float:
    """Serverful cluster cost for the whole run."""
    return vcpus * (duration_ms / 1_000.0) * VM_VCPU_SECOND_USD


def performance_per_cost(throughput_ops_per_sec: float, cost_usd: float) -> float:
    """Operations-per-second-per-dollar (§5.2.5)."""
    if cost_usd <= 0:
        return 0.0
    return throughput_ops_per_sec / cost_usd
