"""Measurement: op records, throughput timelines, latency CDFs, cost.

The cost models implement the paper's three pricing schemes (Fig. 9):

* **pay-per-use** — AWS Lambda prices, $0.0000166667 per GB-second
  billed at 1 ms granularity plus $0.20 per million requests; a
  NameNode is billed only while actively serving a request;
* **simplified** — NameNodes incur cost for their entire provisioned
  lifetime (like VMs), which roughly doubles λFS' cost;
* **VM (serverful)** — a fixed cluster billed per vCPU-second for the
  whole run, calibrated so 512 vCPUs for 300 s cost $2.50 as in the
  paper.
"""

from repro.metrics.cost import (
    LAMBDA_GB_SECOND_USD,
    LAMBDA_PER_REQUEST_USD,
    VM_VCPU_SECOND_USD,
    lambda_cost,
    performance_per_cost,
    simplified_cost,
    vm_cost,
)
from repro.metrics.recorder import MetricsRecorder, OpRecord, latency_cdf, percentile

__all__ = [
    "LAMBDA_GB_SECOND_USD",
    "LAMBDA_PER_REQUEST_USD",
    "MetricsRecorder",
    "OpRecord",
    "VM_VCPU_SECOND_USD",
    "lambda_cost",
    "latency_cdf",
    "percentile",
    "performance_per_cost",
    "simplified_cost",
    "vm_cost",
]
