"""Terminal plotting for experiment output.

Benchmarks and examples print series the paper shows as figures;
these helpers render them as sparklines, horizontal bar charts, and
multi-series line plots in plain text.

All three renderers tolerate degenerate input — NaN / ±inf values,
empty series, zero-span windows — because detector math feeds them
windows where a rate divides by zero ops or a baseline never formed.
Non-finite samples render as ``·`` (sparklines), a bar-less row
(bar charts), or are dropped (line plots) instead of raising.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Placeholder glyph for a NaN/±inf sample in a sparkline.
_SPARK_HOLE = "·"


def _finite(values: Sequence[float]) -> List[float]:
    return [value for value in values if math.isfinite(value)]


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` (non-finite samples → ``·``)."""
    if not values:
        return ""
    finite = _finite(values)
    if not finite:
        return _SPARK_HOLE * len(values)
    low = min(finite)
    high = max(finite)
    span = high - low
    steps = len(_SPARK_LEVELS) - 1
    out = []
    for value in values:
        if not math.isfinite(value):
            out.append(_SPARK_HOLE)
        elif span <= 0:
            out.append(_SPARK_LEVELS[0])
        else:
            out.append(_SPARK_LEVELS[int(round((value - low) / span * steps))])
    return "".join(out)


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one ``(label, value)`` per row.

    Non-finite values get no bar and print as ``nan``/``inf``; the
    scale peak is taken over the finite values only.
    """
    if not rows:
        return ""
    label_width = max(len(label) for label, _ in rows)
    peak = max(_finite([value for _, value in rows]) or [0.0]) or 1.0
    lines = []
    for label, value in rows:
        if math.isfinite(value):
            bar = "█" * max(
                1 if value > 0 else 0, int(round(value / peak * width))
            )
            shown = f"{value:,.0f}"
        else:
            bar = ""
            shown = str(value)
        lines.append(f"{label.ljust(label_width)}  {bar} {shown}{unit}")
    return "\n".join(lines)


def line_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 14,
) -> str:
    """Plot several (x, y) series on one character grid.

    Each series gets a marker from its name's first character; axes
    are labeled with min/max values.  Points with a non-finite
    coordinate are dropped; a plot with no finite points renders
    empty.
    """
    clean = {
        name: [
            (x, y) for x, y in values
            if math.isfinite(x) and math.isfinite(y)
        ]
        for name, values in series.items()
    }
    points = [(x, y) for values in clean.values() for x, y in values]
    if not points:
        return ""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for name, values in clean.items():
        marker = name.strip()[0] if name.strip() else "?"
        for x, y in values:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    lines = [f"{y_high:>10,.0f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_low:>10,.0f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_low:<10,.0f}" + " " * max(0, width - 20) + f"{x_high:>10,.0f}"
    )
    legend = "   ".join(f"{name.strip()[0]} = {name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
