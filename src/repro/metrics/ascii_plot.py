"""Terminal plotting for experiment output.

Benchmarks and examples print series the paper shows as figures;
these helpers render them as sparklines, horizontal bar charts, and
multi-series line plots in plain text.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values``."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    steps = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((value - low) / span * steps))]
        for value in values
    )


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one ``(label, value)`` per row."""
    if not rows:
        return ""
    label_width = max(len(label) for label, _ in rows)
    peak = max(value for _, value in rows) or 1.0
    lines = []
    for label, value in rows:
        bar = "█" * max(1 if value > 0 else 0, int(round(value / peak * width)))
        lines.append(
            f"{label.ljust(label_width)}  {bar} {value:,.0f}{unit}"
        )
    return "\n".join(lines)


def line_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 14,
) -> str:
    """Plot several (x, y) series on one character grid.

    Each series gets a marker from its name's first character; axes
    are labeled with min/max values.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return ""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        marker = name.strip()[0] if name.strip() else "?"
        for x, y in values:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    lines = [f"{y_high:>10,.0f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_low:>10,.0f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_low:<10,.0f}" + " " * max(0, width - 20) + f"{x_high:>10,.0f}"
    )
    legend = "   ".join(f"{name.strip()[0]} = {name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
