"""TCP servers, connections, and per-VM connection sharing (Fig. 4).

Every client VM runs one or more TCP servers; by default all clients
on a VM share one server, and users may cap clients-per-server so new
servers are created as clients are added.  A NameNode that serves an
HTTP request "connects back" to every TCP server advertised in the
request payload.  When a client's own server lacks a connection to
the target deployment, it borrows one from a sibling server on the
same VM (one extra intra-VM hop), exactly as in Figure 4.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, Generator, List, Optional

from repro.rpc.latency import LatencyModel
from repro.sim import Environment


class ConnectionDropped(Exception):
    """The TCP peer went away mid-request."""


class TcpConnection:
    """A live TCP connection between a TCP server and a NameNode."""

    _ids = count(1)

    def __init__(self, server: "TcpServer", instance: Any) -> None:
        self.id = next(self._ids)
        self.server = server
        self.instance = instance
        self.alive = True

    @property
    def deployment(self) -> str:
        return self.instance.deployment_name

    def close(self) -> None:
        if self.alive:
            env = self.server.env
            if env.metrics is not None:
                env.metrics.inc(
                    "tcp_connections_closed_total", deployment=self.deployment
                )
            tracer = env.tracer
            if tracer is not None:
                tracer.connection_closed()
        self.alive = False
        self.server._drop(self)

    def call(self, request: Any) -> Generator:
        """Issue ``request`` over this connection and await the reply.

        Raises :class:`ConnectionDropped` if the peer dies before or
        during the exchange (the caller's retry logic handles it).
        """
        env = self.server.env
        latency = self.server.latency
        # One flag read covers tracer + chaos when the sim runs bare
        # (the common case for benchmarks); see docs/kernel.md.
        if env.instrumented:
            tracer = env.tracer
            chaos = env.chaos
        else:
            tracer = None
            chaos = None
        parent = getattr(request, "trace_parent", None)
        if not self.alive or not self.instance.is_alive:
            self.close()
            if tracer is not None:
                tracer.point("tcp.drop", f"conn{self.id}", parent=parent,
                             deployment=self.deployment, when="pre-send")
            raise ConnectionDropped(f"connection {self.id} is down")
        if chaos is not None:
            extra = chaos.tcp_extra_delay_ms(self.deployment)
            if extra > 0.0:
                yield env.timeout(extra)
            if chaos.tcp_should_drop(self.deployment):
                # Message loss, not connection loss: the connection
                # stays up and the client's retry resubmits over it.
                if tracer is not None:
                    tracer.point("chaos.tcp_drop", f"conn{self.id}",
                                 parent=parent, deployment=self.deployment)
                raise ConnectionDropped(
                    f"request lost on connection {self.id} (chaos)"
                )
        if tracer is not None:
            tracer.point("tcp.send", f"conn{self.id}", parent=parent,
                         deployment=self.deployment)
        yield env.timeout(latency.tcp_oneway())
        if not self.instance.is_alive:
            self.close()
            if tracer is not None:
                tracer.point("tcp.drop", f"conn{self.id}", parent=parent,
                             deployment=self.deployment, when="in-flight")
            raise ConnectionDropped(f"{self.deployment} died before serving")
        response = yield from self.instance.serve(request, via="tcp")
        if (
            chaos is not None
            and self.instance.is_alive
            and chaos.tcp_should_duplicate(self.deployment)
        ):
            # Duplicate delivery: the same request is served twice;
            # the NameNode's result cache must answer the replay with
            # the original result instead of re-running the op.
            if tracer is not None:
                tracer.point("chaos.tcp_duplicate", f"conn{self.id}",
                             parent=parent, deployment=self.deployment)
            response = yield from self.instance.serve(request, via="tcp")
        if not self.alive or not self.instance.is_alive:
            self.close()
            if tracer is not None:
                tracer.point("tcp.drop", f"conn{self.id}", parent=parent,
                             deployment=self.deployment, when="mid-request")
            raise ConnectionDropped(f"{self.deployment} died mid-request")
        yield env.timeout(latency.tcp_oneway())
        if tracer is not None:
            tracer.point("tcp.recv", f"conn{self.id}", parent=parent,
                         deployment=self.deployment)
        return response


class TcpServer:
    """One TCP endpoint on a client VM."""

    _ids = count(1)

    def __init__(self, env: Environment, vm: "ClientVM", latency: LatencyModel) -> None:
        self.id = next(self._ids)
        self.env = env
        self.vm = vm
        self.latency = latency
        self._by_deployment: Dict[str, List[TcpConnection]] = {}
        self._rotation: Dict[str, int] = {}

    def connect_from(self, instance: Any) -> TcpConnection:
        """Accept a connection initiated by a NameNode instance."""
        for existing in self._by_deployment.get(instance.deployment_name, ()):
            if existing.alive and existing.instance is instance:
                return existing
        connection = TcpConnection(self, instance)
        self._by_deployment.setdefault(instance.deployment_name, []).append(connection)
        instance.attach_connection(connection)
        if self.env.metrics is not None:
            self.env.metrics.inc(
                "tcp_connections_opened_total",
                deployment=instance.deployment_name,
            )
        tracer = self.env.tracer
        if tracer is not None:
            tracer.connection_opened()
            tracer.point(
                "tcp.connect_back", f"server{self.id}",
                deployment=instance.deployment_name, instance=instance.id,
            )
        return connection

    def find(self, deployment: str) -> Optional[TcpConnection]:
        """A live connection to ``deployment``, or None.

        Rotates round-robin over the live connections so clients
        spread TCP load across every instance of a deployment that
        has connected back, instead of pinning the first one.
        """
        connections = self._by_deployment.get(deployment, [])
        if not connections:
            return None
        start = self._rotation.get(deployment, 0)
        count = len(connections)
        for offset in range(count):
            connection = connections[(start + offset) % count]
            if connection.alive and connection.instance.is_alive:
                self._rotation[deployment] = (start + offset + 1) % count
                return connection
        return None

    def connection_count(self, deployment: Optional[str] = None) -> int:
        if deployment is not None:
            return len([c for c in self._by_deployment.get(deployment, []) if c.alive])
        return sum(
            len([c for c in conns if c.alive])
            for conns in self._by_deployment.values()
        )

    def _drop(self, connection: TcpConnection) -> None:
        connections = self._by_deployment.get(connection.deployment, [])
        try:
            connections.remove(connection)
        except ValueError:
            pass


class ClientVM:
    """A client VM hosting clients and their TCP servers."""

    _ids = count(1)

    def __init__(
        self,
        env: Environment,
        latency: LatencyModel,
        clients_per_server: int = 128,
    ) -> None:
        if clients_per_server <= 0:
            raise ValueError("clients_per_server must be positive")
        self.id = next(self._ids)
        self.env = env
        self.latency = latency
        self.clients_per_server = clients_per_server
        self.servers: List[TcpServer] = []
        self._client_count = 0

    def assign_server(self) -> TcpServer:
        """Server for the next client (new servers created as needed)."""
        index = self._client_count // self.clients_per_server
        self._client_count += 1
        while len(self.servers) <= index:
            self.servers.append(TcpServer(self.env, self, self.latency))
        return self.servers[index]

    def find_shared(
        self,
        deployment: str,
        own_server: TcpServer,
        trace_parent: Any = None,
    ) -> Generator:
        """Connection-sharing lookup (Figure 4).

        Checks the client's own server first; then the sibling servers
        on this VM, paying one intra-VM hop.  Returns a live
        connection or None.
        """
        metrics = self.env.metrics if self.env.instrumented else None
        connection = own_server.find(deployment)
        if connection is not None:
            if metrics is not None:
                metrics.inc("tcp_connection_reuse_total", source="own")
            return connection
        for server in self.servers:
            if server is own_server:
                continue
            connection = server.find(deployment)
            if connection is not None:
                if metrics is not None:
                    metrics.inc("tcp_connection_reuse_total", source="sibling")
                tracer = self.env.tracer
                hop_span = None
                if tracer is not None:
                    hop_span = tracer.begin(
                        "rpc.sibling_hop", f"vm{self.id}",
                        parent=trace_parent, deployment=deployment,
                        server=server.id,
                    )
                yield self.env.timeout(self.latency.intra_vm())
                if tracer is not None:
                    tracer.end(hop_span)
                return connection
        return None
