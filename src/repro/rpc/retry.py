"""Exponential backoff with randomized jitter (§3.2).

Naively resubmitting timed-out HTTP requests causes request storms
that overwhelm the FaaS platform; the λFS client library instead
sleeps following an exponential backoff pattern with jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    base_ms: float = 20.0
    factor: float = 2.0
    max_ms: float = 2_000.0
    jitter: float = 0.5
    max_attempts: int = 16
    """The single source of truth for RPC attempt limits: everything
    that counts attempts (the client submit loop, its straggler
    watchdog guard) derives from this field rather than keeping a
    parallel constant."""

    def as_attrs(self) -> dict:
        """Span-attribute summary of this policy, so backoff spans in
        a trace carry enough context to be read without the config."""
        return {
            "policy_base_ms": self.base_ms,
            "policy_factor": self.factor,
            "policy_max_ms": self.max_ms,
        }

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        .. note:: **Legacy.** Centred jitter keeps retriers correlated
           around the same expected wait; every RPC/txn retry path now
           uses :meth:`full_jitter_delay` instead.  This survives only
           for the client's straggler resubmit pacing, where staying
           near the expected wait is intentional (the resubmit races
           the original, it does not replace it).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_ms * (self.factor ** (attempt - 1)), self.max_ms)
        spread = raw * self.jitter
        return max(0.0, raw - spread + rng.random() * 2 * spread)

    def full_jitter_delay(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter backoff: uniform over [0, capped exponential].

        Decorrelates synchronized retry storms (e.g. many transactions
        aborted by the same lock-timeout burst) better than centred
        jitter: no two retriers share even the expected wait.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_ms * (self.factor ** (attempt - 1)), self.max_ms)
        return rng.uniform(0.0, raw)
