"""Network latency distributions.

Calibrated from §3.2: end-to-end read latency was 1–2 ms over TCP and
8–20 ms over HTTP; TCP also shows much lower variance.  One-way
network components are set so that round trips (plus server-side
processing) land in those windows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyConfig:
    tcp_oneway_min_ms: float = 0.25
    tcp_oneway_max_ms: float = 0.55
    http_oneway_min_ms: float = 3.5
    http_oneway_max_ms: float = 8.5
    gateway_overhead_ms: float = 0.8
    """Extra queueing/routing at the FaaS API gateway per invocation."""
    intra_vm_ms: float = 0.05
    """Hop between co-located TCP servers (connection sharing)."""


class LatencyModel:
    """Draws latencies from a dedicated RNG stream.

    The bound ``uniform`` method and the config bounds are cached at
    construction (the per-draw handles of docs/kernel.md): ``tcp_oneway``
    runs several times per simulated RPC, and the cached handle makes
    each draw one call with two float locals instead of four attribute
    chases.  The draw sequence is identical to calling
    ``rng.uniform`` directly.
    """

    def __init__(self, rng: random.Random, config: LatencyConfig | None = None) -> None:
        self.rng = rng
        self.config = config or LatencyConfig()
        self._uniform = rng.uniform
        self._tcp_lo = self.config.tcp_oneway_min_ms
        self._tcp_hi = self.config.tcp_oneway_max_ms
        self._http_lo = self.config.http_oneway_min_ms
        self._http_hi = self.config.http_oneway_max_ms

    def tcp_oneway(self) -> float:
        return self._uniform(self._tcp_lo, self._tcp_hi)

    def http_oneway(self) -> float:
        return self._uniform(self._http_lo, self._http_hi)

    def gateway(self) -> float:
        return self.config.gateway_overhead_ms

    def intra_vm(self) -> float:
        return self.config.intra_vm_ms
