"""RPC fabric: latency models, TCP connections, retry policies (§3.2).

λFS clients reach NameNodes two ways: HTTP invocations through the
FaaS API gateway (8–20 ms, FaaS-aware, triggers scale-out) and direct
TCP connections (1–2 ms, FaaS-invisible).  This package provides the
shared latency model, the per-VM TCP-server/connection registry with
the "connection sharing" mechanism of Figure 4, and exponential
backoff with jitter for HTTP resubmission.
"""

from repro.rpc.connections import ClientVM, ConnectionDropped, TcpConnection, TcpServer
from repro.rpc.latency import LatencyConfig, LatencyModel
from repro.rpc.retry import RetryPolicy

__all__ = [
    "ClientVM",
    "ConnectionDropped",
    "LatencyConfig",
    "LatencyModel",
    "RetryPolicy",
    "TcpConnection",
    "TcpServer",
]
