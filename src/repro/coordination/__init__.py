"""The pluggable "Coordinator" service (§3.5).

λFS uses a coordination service to (a) track which NameNode instances
are alive in which deployments and (b) deliver the INV/ACK messages of
the cache-coherence protocol.  The paper supports two backends —
ZooKeeper and MySQL NDB — which share semantics and differ only in
message latency; both are provided here.
"""

from repro.coordination.coordinator import (
    Coordinator,
    CoordinatorConfig,
    Invalidation,
    NdbCoordinator,
    ZooKeeperCoordinator,
    make_coordinator,
)

__all__ = [
    "Coordinator",
    "CoordinatorConfig",
    "Invalidation",
    "NdbCoordinator",
    "ZooKeeperCoordinator",
    "make_coordinator",
]
