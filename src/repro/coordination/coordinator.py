"""Membership tracking and INV/ACK delivery.

The Coordinator implements exactly what Algorithm 1 needs:

1. a registry of live NameNode instances per deployment (with
   liveness notifications on termination);
2. reliable delivery of invalidations (INVs) to every live member of
   a deployment, and collection of their ACKs;
3. the rule that *"ACKs are not required from NameNodes that
   terminate mid-protocol"* — a member that deregisters while an INV
   is outstanding is dropped from the pending set so writers never
   block on the dead.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Callable, Dict, Generator, Iterable, Optional, Set

from repro.sim import Environment, Event


@dataclass(frozen=True)
class CoordinatorConfig:
    """Latency knobs for one Coordinator backend."""

    publish_ms: float = 0.4
    """One-way delivery latency of an INV to one member."""
    ack_ms: float = 0.4
    """One-way latency of an ACK back to the leader."""
    watch_ms: float = 0.3
    """Latency of a liveness notification."""
    ack_retry_ms: float = 5.0
    """Redelivery backoff when a member's ACK goes missing (chaos ACK
    loss).  INV handlers are idempotent, so redelivering the whole
    INV is safe and the writer eventually collects every ACK."""
    ack_max_retries: int = 32
    """Redelivery attempts before the coordinator gives up on a
    member (0 disables redelivery — a lost ACK then strands the
    writer until the member deregisters).  Generous by default:
    redelivery is cheap and outlasts any plausible loss window."""


@dataclass(frozen=True)
class Invalidation:
    """One invalidation message.

    ``prefix`` selects subtree (prefix) semantics: members invalidate
    every cached path under it.  Otherwise ``paths`` lists the exact
    entries to drop.
    """

    inv_id: int
    deployment: str
    paths: tuple = ()
    prefix: Optional[str] = None

    @property
    def is_subtree(self) -> bool:
        return self.prefix is not None


class _PendingInv:
    __slots__ = ("waiting", "event")

    def __init__(self, env: Environment, members: Set[str]) -> None:
        self.waiting = set(members)
        self.event = Event(env)
        if not self.waiting:
            self.event.succeed(0)


class Coordinator:
    """Base Coordinator; see subclasses for backend latencies."""

    def __init__(self, env: Environment, config: Optional[CoordinatorConfig] = None) -> None:
        self.env = env
        self.config = config or CoordinatorConfig()
        # deployment -> member_id -> INV handler callback
        self._members: Dict[str, Dict[str, Callable[[Invalidation], None]]] = {}
        self._pending: Dict[int, _PendingInv] = {}
        self._inv_ids = count(1)
        self._death_watchers: Dict[str, list] = {}
        self.invs_sent = 0
        self.acks_received = 0

    # -- membership ------------------------------------------------------
    def register(
        self,
        deployment: str,
        member_id: str,
        inv_handler: Callable[[Invalidation], None],
    ) -> None:
        """Announce a live NameNode instance."""
        self._members.setdefault(deployment, {})[member_id] = inv_handler

    def deregister(self, deployment: str, member_id: str) -> None:
        """Remove an instance (normal scale-in or crash).

        Outstanding INVs waiting on this member are released, per the
        "no ACK required from terminated NameNodes" rule.
        """
        members = self._members.get(deployment, {})
        members.pop(member_id, None)
        for pending in list(self._pending.values()):
            if member_id in pending.waiting:
                pending.waiting.discard(member_id)
                if not pending.waiting and not pending.event.triggered:
                    pending.event.succeed(0)
        for callback in self._death_watchers.pop(member_id, []):
            self.env.process(self._notify_death(callback, member_id))

    def live_members(self, deployment: str) -> Set[str]:
        """Ids of instances currently alive in ``deployment``."""
        return set(self._members.get(deployment, {}))

    def deployments(self) -> Set[str]:
        """Names of deployments with at least one registered member."""
        return {name for name, members in self._members.items() if members}

    def inv_handler(self, deployment: str, member_id: str):
        """The registered INV handler for a member (or None).

        Lets fault injection capture a handler before a simulated
        deregistration so the member can rejoin with it afterwards.
        """
        return self._members.get(deployment, {}).get(member_id)

    def live_count(self, deployment: str) -> int:
        return len(self._members.get(deployment, {}))

    def watch_death(self, member_id: str, callback: Callable[[str], None]) -> None:
        """Invoke ``callback(member_id)`` when the member deregisters."""
        self._death_watchers.setdefault(member_id, []).append(callback)

    def _notify_death(self, callback: Callable[[str], None], member_id: str) -> Generator:
        yield self.env.timeout(self.config.watch_ms)
        callback(member_id)

    # -- coherence messaging ------------------------------------------------
    def invalidate(
        self,
        deployment: str,
        paths: Iterable[str] = (),
        prefix: Optional[str] = None,
        exclude: Iterable[str] = (),
        initiator: str = "",
        trace_parent=None,
    ) -> Generator:
        """Send an INV to every live member and wait for all ACKs.

        ``exclude`` names members (typically the leader itself) that
        invalidate locally and need no message.  ``initiator`` tags the
        round with the writing NameNode's id so the coherence checker
        can pair it with that writer's commit.  Returns the number of
        members that were contacted.
        """
        inv = Invalidation(
            inv_id=next(self._inv_ids),
            deployment=deployment,
            paths=tuple(paths),
            prefix=prefix,
        )
        excluded = set(exclude)
        targets = {
            member_id: handler
            for member_id, handler in self._members.get(deployment, {}).items()
            if member_id not in excluded
        }
        tracer = self.env.tracer
        round_span = None
        if tracer is not None:
            round_span = tracer.begin(
                "coord.inv", initiator or "coordinator", parent=trace_parent,
                inv_id=inv.inv_id, deployment=deployment, paths=inv.paths,
                prefix=prefix, initiator=initiator, members=len(targets),
            )
        metrics = self.env.metrics
        if metrics is not None:
            metrics.inc("coord_inv_rounds_total", deployment=deployment)
            if targets:
                metrics.inc(
                    "coord_invs_sent_total", len(targets), deployment=deployment
                )
            metrics.observe("coord_fanout", float(len(targets)))
        round_started = self.env.now
        pending = _PendingInv(self.env, set(targets))
        self._pending[inv.inv_id] = pending
        for member_id, handler in targets.items():
            self.invs_sent += 1
            self.env.process(self._deliver(inv, member_id, handler, round_span))
        yield pending.event
        self._pending.pop(inv.inv_id, None)
        if metrics is not None:
            metrics.observe("coord_ack_latency_ms", self.env.now - round_started)
        if tracer is not None:
            tracer.end(round_span)
        return len(targets)

    def ack(self, inv_id: int, member_id: str) -> None:
        """Record one member's ACK for ``inv_id``."""
        self.acks_received += 1
        if self.env.metrics is not None:
            self.env.metrics.inc("coord_acks_total")
        tracer = self.env.tracer
        if tracer is not None:
            tracer.point("coord.ack", member_id, inv_id=inv_id)
        pending = self._pending.get(inv_id)
        if pending is None:
            return
        pending.waiting.discard(member_id)
        if not pending.waiting and not pending.event.triggered:
            pending.event.succeed(0)

    def _deliver(
        self,
        inv: Invalidation,
        member_id: str,
        handler: Callable[[Invalidation], None],
        round_span=None,
    ) -> Generator:
        tracer = self.env.tracer
        member_span = None
        if tracer is not None:
            # One per-member publish→ACK leg: the slowest of these is
            # the coherence round's critical path.
            member_span = tracer.begin(
                "coord.member", member_id, parent=round_span,
                inv_id=inv.inv_id,
            )
        attempt = 0
        while True:
            attempt += 1
            yield self.env.timeout(self.config.publish_ms)
            # The member may have died in flight; deregistration
            # already released the pending set in that case.
            live = self._members.get(inv.deployment, {})
            if member_id not in live:
                if tracer is not None:
                    tracer.end(member_span, delivered=False)
                return
            if tracer is not None:
                # From this instant, any cached copy of these paths on
                # the member is stale by protocol — emitted *before*
                # the handler runs so a broken handler cannot hide
                # staleness from the coherence checker.
                tracer.point(
                    "coord.inv_deliver", member_id, parent=round_span,
                    inv_id=inv.inv_id, paths=inv.paths, prefix=inv.prefix,
                )
            handler(inv)
            yield self.env.timeout(self.config.ack_ms)
            chaos = self.env.chaos
            if chaos is not None and chaos.ack_should_drop(
                inv.deployment, member_id
            ):
                if tracer is not None:
                    tracer.point(
                        "chaos.ack_drop", member_id, parent=round_span,
                        inv_id=inv.inv_id, attempt=attempt,
                    )
                if attempt > self.config.ack_max_retries:
                    # Redelivery exhausted (or disabled): the writer
                    # stays blocked until this member deregisters.
                    if tracer is not None:
                        tracer.end(member_span, delivered=True, acked=False)
                    return
                # Handlers are idempotent: redeliver the whole INV
                # after a short backoff and collect the ACK again.
                yield self.env.timeout(self.config.ack_retry_ms)
                continue
            if tracer is not None:
                tracer.end(member_span, delivered=True)
            self.ack(inv.inv_id, member_id)
            return


class ZooKeeperCoordinator(Coordinator):
    """ZooKeeper-backed Coordinator (default in the paper)."""

    def __init__(self, env: Environment) -> None:
        super().__init__(env, CoordinatorConfig(publish_ms=0.4, ack_ms=0.4, watch_ms=0.3))


class NdbCoordinator(Coordinator):
    """NDB-backed Coordinator: slightly slower, piggybacks on the DB."""

    def __init__(self, env: Environment) -> None:
        super().__init__(env, CoordinatorConfig(publish_ms=0.7, ack_ms=0.7, watch_ms=0.5))


def make_coordinator(env: Environment, kind: str = "zookeeper") -> Coordinator:
    """Factory for the pluggable Coordinator backends."""
    if kind == "zookeeper":
        return ZooKeeperCoordinator(env)
    if kind == "ndb":
        return NdbCoordinator(env)
    raise ValueError(f"unknown coordinator kind {kind!r}")
