"""Reproduction of *λFS: A Scalable and Elastic Distributed File
System Metadata Service using Serverless Functions* (ASPLOS 2023).

The package is a deterministic discrete-event simulation of the full
λFS stack and the systems it is evaluated against:

* :mod:`repro.sim` — the simulation kernel;
* :mod:`repro.namespace`, :mod:`repro.metastore`,
  :mod:`repro.coordination`, :mod:`repro.rpc`, :mod:`repro.faas` —
  the substrates (trie cache, NDB-like store, Coordinator, RPC
  fabric, OpenWhisk-like FaaS platform);
* :mod:`repro.core` — λFS itself (client library, serverless
  NameNodes, coherence protocol, subtree offloading, auto-scaling);
* :mod:`repro.baselines` — HopsFS, HopsFS+Cache, InfiniCache-style,
  CephFS-style, IndexFS, λIndexFS;
* :mod:`repro.workloads` and :mod:`repro.bench` — the paper's
  workloads and one experiment driver per table/figure.

Quickstart::

    from repro.sim import Environment
    from repro.core import LambdaFS

    env = Environment()
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    client = fs.new_client()

    def main(env):
        yield from client.mkdirs("/demo")
        yield from client.create_file("/demo/hello")
        response = yield from client.stat("/demo/hello")
        print(response.value)

    done = env.process(main(env))
    env.run(until=done)
"""

from repro.core import LambdaFS, LambdaFSClient, LambdaFSConfig, OpType
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "LambdaFS",
    "LambdaFSClient",
    "LambdaFSConfig",
    "OpType",
    "__version__",
]
