"""Calendar-queue event scheduler for the simulation kernel.

A drop-in replacement for the kernel's former single global ``heapq``:
entries are ``(time, priority, eid, event)`` tuples and pop order is
**exactly** the heap's — ascending time, then priority, then insertion
order (``eid`` is unique, so comparisons never reach the event object).
What changes is the cost model: instead of one O(log n) heap over every
pending event — at 100k+ pending entries that is ~20 levels of
cache-cold tuple comparisons per operation — entries are spread across
time buckets of ``width`` sim-ms, so each push/pop works on a small
per-bucket heap whose size is the *local* event density, not the
global pending count.

Structure
---------
``_cur`` / ``_over``
    The active bucket, split in two.  ``_cur`` holds the entries that
    were in the bucket when it was loaded, sorted *descending* once
    (one C-level sort) and consumed from the tail with ``list.pop()``
    — no per-event heap sift.  ``_over`` is a small heap catching
    entries pushed at or before the current bucket index *after* the
    load (delay-0 scheduling, process-start bursts); a pop takes the
    smaller of ``_cur``'s tail and ``_over``'s root.  A plain sorted
    list cannot serve both roles: a freshly pushed same-time entry
    carries the largest eid in the bucket and would have to be
    inserted at the far end of the sorted order, degenerating to
    O(bucket) memmove per push exactly when delay-0 traffic is
    heaviest (e.g. 100k process initializations at t=0).
``_ring``
    Future near-term buckets: a flat power-of-two array of entry lists
    indexed by ``bucket_index & mask``.  The reachable window is
    exactly one lap (``_far_limit = _cur_idx + ring size``), so two
    live bucket indices can never collide in a slot and no lap checks
    are needed.  A push into the window is one array index and an
    append — no dict probe, no per-bucket bookkeeping.  Advancing
    scans forward for the next non-empty slot; with the resizer
    holding bucket occupancy near ``_TARGET_OCC`` the scan cost per
    dequeued event is a fraction of a slot.
``_far``
    Heap fallback for events beyond the ring's window (timers like
    10 s SLO windows).  Due entries are pulled back into the calendar
    whenever the active bucket advances, using bucket-index
    comparisons so float boundary rounding cannot reorder anything.

Automatic width resizing
------------------------
Every 4096 pops the queue measures the *frontier density*: the mean
sim-time gap between dequeued events since the last check.  The width
is then set in one shot to ``TARGET_OCC x gap`` (with 4x hysteresis),
rebuilding the structure in O(n).  Two design points matter:

* The check is triggered by **pop count**, not bucket loads.  A badly
  oversized width makes bucket loads rare (one load can cover
  thousands of events), so a load-triggered check would let most of a
  run execute at the wrong width before the first correction.
* The width is **computed from measured density**, not adjusted by
  occupancy feedback (shrink while buckets look full / grow while
  empty).  On bimodal schedules — a dense leading edge of sub-ms RPC
  hops ahead of sparse multi-ms think timers — feedback keeps reading
  "full" at every width and spirals down until each bucket holds one
  entry and the queue degenerates into a slower global ``heapq``.
  One-shot targeting lands on the right width in a single rebuild and
  the hysteresis band keeps it there.

At each rebuild the ring is re-sized so its window covers the full
time span of the pending entries (within ``max_ring`` slots); whatever
still does not fit stays in the far heap.  Resizing is driven purely
by the pop sequence — it is deterministic, and pop *order* is
invariant under any width, so the kernel's event-sequence hash cannot
depend on it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

_INF = float("inf")

Entry = Tuple[float, int, int, Any]




class CalendarQueue:
    """Bucketed scheduler, order-identical to a ``(t, prio, eid)`` heap."""

    __slots__ = (
        "_width", "_inv_width", "_ring", "_mask", "_ring_count",
        "_cur", "_over", "_cur_idx", "_far", "_far_limit",
        "_pops", "_check_time", "_scanned",
        "min_width", "max_width", "max_ring", "resizes",
    )

    #: Pops between width checks.
    _CHECK_POPS = 4096
    #: Entries per bucket the resizer aims for.  Chosen empirically at
    #: 100k+ pending entries: below ~10 the empty-slot scan and bucket
    #: churn dominate, above ~a thousand the per-bucket heaps do;
    #: throughput is flat in between, and the upper half of the band
    #: needs fewer corrective rebuilds as density drifts.
    _TARGET_OCC = 192.0
    #: Hysteresis, asymmetric.  A width that is too *wide* piles
    #: entries into oversized bucket heaps and degenerates toward the
    #: global heap, so shrinking reacts quickly; a width that is too
    #: *narrow* merely spreads entries over more slots and costs a
    #: short empty-slot scan per bucket advance, so growing tolerates a
    #: much larger drift (e.g. the falling density of a drain tail)
    #: before paying an O(n) rebuild.
    _SHRINK_RATIO = 4.0
    _GROW_RATIO = 16.0

    def __init__(
        self,
        width: float = 0.5,
        start: float = 0.0,
        ring: int = 8192,
        min_width: float = 1e-7,
        max_width: float = 1e9,
        max_ring: int = 1 << 20,
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if ring < 2 or ring & (ring - 1):
            raise ValueError("ring must be a power of two >= 2")
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._ring: List[Optional[List[Entry]]] = [None] * ring
        self._mask = ring - 1
        self._ring_count = 0
        self._cur: List[Entry] = []
        self._over: List[Entry] = []
        self._cur_idx = int(float(start) * self._inv_width)
        self._check_time = float(start)
        self._far: List[Entry] = []
        self._far_limit = self._cur_idx + ring
        self.min_width = min_width
        self.max_width = max_width
        self.max_ring = max_ring
        self._pops = 0
        self._scanned = 0
        self.resizes = 0

    def __len__(self) -> int:
        # Derived, not maintained: the active bucket (sorted part and
        # overflow heap), the ring population counter, and the far
        # heap partition every entry.  Keeping size out of push/pop
        # saves a read-modify-write on the two hottest kernel paths.
        return (len(self._cur) + len(self._over)
                + self._ring_count + len(self._far))

    @property
    def width(self) -> float:
        """Current bucket width (sim time units); resized automatically."""
        return self._width

    @property
    def ring_size(self) -> int:
        """Number of ring slots (the near-term window, in buckets)."""
        return self._mask + 1

    # -- hot path ----------------------------------------------------------
    def push(self, t: float, priority: int, eid: int, event: Any) -> None:
        """Insert one entry; ``eid`` must be unique and increasing."""
        idx = int(t * self._inv_width)
        if idx <= self._cur_idx:
            heappush(self._over, (t, priority, eid, event))
        elif idx < self._far_limit:
            ring = self._ring
            slot = idx & self._mask
            bucket = ring[slot]
            if bucket is None:
                ring[slot] = [(t, priority, eid, event)]
            else:
                bucket.append((t, priority, eid, event))
            self._ring_count += 1
        else:
            heappush(self._far, (t, priority, eid, event))

    def pop(self) -> Optional[Entry]:
        """Remove and return the least entry, or ``None`` when empty."""
        cur = self._cur
        over = self._over
        if over:
            if cur and cur[-1] < over[0]:
                entry = cur.pop()
            else:
                entry = heappop(over)
        elif cur:
            entry = cur.pop()
        else:
            if not self._refill():
                return None
            return self.pop()
        pops = self._pops + 1
        if pops >= self._CHECK_POPS:
            self._pops = 0
            self._auto_resize(entry[0])
        else:
            self._pops = pops
        return entry

    def peek(self) -> float:
        """Time of the least entry, or ``inf`` when empty."""
        cur = self._cur
        over = self._over
        if not cur and not over:
            if not self._refill():
                return _INF
            cur = self._cur
            over = self._over
        if over and (not cur or over[0] < cur[-1]):
            return over[0][0]
        return cur[-1][0]

    # -- bucket management -------------------------------------------------
    def _refill(self) -> bool:
        """Make the active bucket non-empty; False iff queue empty.

        Only called when both ``_cur`` and ``_over`` are empty (the
        overflow heap holds entries due in or before the current
        bucket, so it always drains before the window may advance).
        """
        while True:
            if self._cur or self._over:
                return True
            if not self._ring_count and not self._far:
                return False
            ring = self._ring
            mask = self._mask
            bucket: Optional[List[Entry]] = None
            if self._ring_count:
                # Advance to the next non-empty slot.  The window is
                # one lap, so the scan is bounded by the ring size and,
                # with occupancy held near target, costs a fraction of
                # a slot per dequeued event.
                idx = self._cur_idx
                start = idx
                limit = self._far_limit
                while idx + 1 < limit:
                    idx += 1
                    slot = idx & mask
                    bucket = ring[slot]
                    if bucket is not None:
                        ring[slot] = None
                        self._ring_count -= len(bucket)
                        self._cur_idx = idx
                        self._far_limit = idx + mask + 1
                        self._scanned += idx - start
                        break
            if bucket is None:
                # Ring drained: everything pending is in the far heap.
                # Re-anchor at the earliest far event so its bucket
                # becomes the active one.
                far = self._far
                if not far:
                    return False
                self._cur_idx = int(far[0][0] * self._inv_width)
                self._far_limit = self._cur_idx + mask + 1
                self._pull_far()
                continue
            if self._far:
                # Pull newly-due far events into the advanced window.
                self._pull_far()
            bucket.sort(reverse=True)
            self._cur = bucket
            return True

    def _pull_far(self) -> None:
        """Move far-heap entries now inside the window into place.

        Compares bucket indices, not times, so float rounding at
        bucket boundaries cannot disagree with :meth:`push`.
        """
        far = self._far
        inv = self._inv_width
        limit = self._far_limit
        cur_idx = self._cur_idx
        ring = self._ring
        mask = self._mask
        while far and int(far[0][0] * inv) < limit:
            entry = heappop(far)
            idx = int(entry[0] * inv)
            if idx <= cur_idx:
                heappush(self._over, entry)
            else:
                slot = idx & mask
                bucket = ring[slot]
                if bucket is None:
                    ring[slot] = [entry]
                else:
                    bucket.append(entry)
                self._ring_count += 1

    # -- automatic width resizing -----------------------------------------
    def _auto_resize(self, now: float) -> None:
        # One-shot width targeting from the measured frontier density:
        # the mean inter-event gap over the last _CHECK_POPS dequeues
        # is elapsed / pops, so width = TARGET_OCC * gap lands on the
        # occupancy target in a single rescale.  An elapsed of zero
        # (e.g. the t=0 startup burst of process-initialize events)
        # carries no density signal and is skipped — which also resets
        # the window so the burst never pollutes a later estimate.
        elapsed = now - self._check_time
        self._check_time = now
        if elapsed <= 0.0:
            return
        ideal = self._TARGET_OCC * elapsed / self._CHECK_POPS
        ratio = ideal / self._width
        if ratio < 1.0 / self._SHRINK_RATIO:
            self._rescale(ideal)
        elif ratio > self._GROW_RATIO and (
            len(self._far) * 4 > len(self)
            or self._scanned > 2 * self._CHECK_POPS
        ):
            # Growing only pays when the narrow width causes actual
            # pressure: due events parked in the far heap, or empty-slot
            # scans exceeding ~2 slots per pop.  A quiet drain tail with
            # falling density never rebuilds.
            self._rescale(ideal)
        self._scanned = 0

    def _rescale(self, new_width: float) -> None:
        new_width = min(max(new_width, self.min_width), self.max_width)
        if new_width == self._width:
            return
        entries = list(self._cur)
        entries.extend(self._over)
        for bucket in self._ring:
            if bucket is not None:
                entries.extend(bucket)
        entries.extend(self._far)
        self.resizes += 1
        self._width = new_width
        self._inv_width = 1.0 / new_width
        # Clear the retired lists in place before replacing them: the
        # run loop caches ``_cur``/``_over`` in locals, and emptying the
        # old objects guarantees a stale cached reference can only read
        # "empty" (routing it through ``_refill`` and a re-read), never
        # a duplicate entry.
        self._cur.clear()
        self._over.clear()
        self._far.clear()
        self._cur = []
        self._over = []
        self._far = []
        self._ring_count = 0
        if not entries:
            self._ring = [None] * (self._mask + 1)
            return
        tmin = entries[0][0]
        tmax = tmin
        for entry in entries:
            t = entry[0]
            if t < tmin:
                tmin = t
            elif t > tmax:
                tmax = t
        # Size the ring so one lap covers the whole pending span (with
        # slack for the frontier to keep advancing); beyond max_ring
        # the far heap absorbs the tail.
        span_slots = int((tmax - tmin) * self._inv_width) + 2
        ring = 8192
        target = min(span_slots * 2, self.max_ring)
        while ring < target:
            ring <<= 1
        self._ring = [None] * ring
        self._mask = ring - 1
        self._cur_idx = int(tmin * self._inv_width)
        self._check_time = tmin
        self._far_limit = self._cur_idx + ring
        # Redistribute in place (the push body inlined so the existing
        # entry tuples are reused instead of reallocated).
        inv = self._inv_width
        cur_idx = self._cur_idx
        limit = self._far_limit
        ring_list = self._ring
        mask = self._mask
        far = self._far
        cur = self._cur
        count = 0
        for entry in entries:
            idx = int(entry[0] * inv)
            if idx <= cur_idx:
                cur.append(entry)
            elif idx < limit:
                slot = idx & mask
                bucket = ring_list[slot]
                if bucket is None:
                    ring_list[slot] = [entry]
                else:
                    bucket.append(entry)
                count += 1
            else:
                heappush(far, entry)
        cur.sort(reverse=True)
        self._ring_count = count

    # -- diagnostics -------------------------------------------------------
    def stats(self) -> dict:
        """Occupancy snapshot (for tests and the kernel benchmark)."""
        return {
            "size": len(self),
            "width": self._width,
            "active": len(self._cur) + len(self._over),
            "ring_slots": self._mask + 1,
            "ring_buckets": sum(1 for b in self._ring if b is not None),
            "ring_entries": self._ring_count,
            "far": len(self._far),
            "resizes": self.resizes,
        }
