"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional

from repro.sim.events import Event, Process, Timeout

#: Scheduling priorities.  Lower runs first at equal time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to stop the run loop when the until-event fires."""


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float; this repository's convention is **milliseconds**.
    The environment is fully deterministic: ties in time are broken by
    priority then insertion order.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Optional :class:`repro.trace.Tracer`.  ``None`` (the default)
        #: keeps tracing zero-cost: one attribute check per step.
        self.tracer: Optional[Any] = None
        #: Optional :class:`repro.telemetry.MetricsRegistry` — same
        #: contract as the tracer: instrumentation sites check
        #: ``env.metrics is None`` and pay nothing when telemetry is off.
        self.metrics: Optional[Any] = None
        #: Optional :class:`repro.chaos.ChaosEngine` — same contract
        #: again: fault-injection sites check ``env.chaos is None``;
        #: with no engine attached the simulation is byte-identical to
        #: a build without the chaos subsystem.
        self.chaos: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories ---------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    # -- scheduling ---------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = PRIORITY_NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed after ``delay``."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event in the queue."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self._now = when
        if self.tracer is not None:
            self.tracer.on_step(when, _prio, _eid, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the simulation, mirroring an
            # uncaught exception in real code.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an event, a time, or queue exhaustion).

        Returns the value of the until-event, if one was given.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                at = float(until)
                if at <= self._now:
                    raise ValueError(
                        f"until ({at}) must be in the future (now={self._now})"
                    )
                stop_event = Event(self)
                # Urgent priority: stop before same-time normal events run.
                self.schedule(stop_event, priority=PRIORITY_URGENT, delay=at - self._now)
                stop_event._ok = True
                stop_event._value = None

            stop_event.callbacks.append(_stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise RuntimeError(
                    f"no scheduled events left but until={stop_event!r} pending"
                ) from None
            return None


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
