"""The simulation environment: clock, event queue, and run loop.

The event queue is a :class:`repro.sim.calendar.CalendarQueue` — pop
order is identical to the former global ``heapq`` (time, then priority,
then insertion order), but push/pop cost tracks local event density
instead of the global pending count, which is what makes 100k+ client
runs feasible (see docs/kernel.md).

Instrumentation fast path
-------------------------
``tracer``, ``metrics`` and ``chaos`` read and assign exactly as
before (``env.chaos = engine`` / ``env.tracer = None``), but they are
properties whose setters precompute two plain attributes:

* ``instrumented`` — True iff *any* of the three subsystems is
  attached.  Hot instrumentation sites check this single flag first
  and skip the three per-subsystem ``is None`` checks when the
  simulation runs bare (the common case for benchmarks).
* ``_on_step`` — the tracer's bound ``on_step`` hook or ``None``; the
  run loop reads one attribute per step instead of two.

Attaching a tracer requires an ``on_step`` callable (the determinism
hash and step counters depend on it being invoked for every event).
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Generator, Optional

from repro.sim.calendar import CalendarQueue
from repro.sim.events import Event, Process, Timeout

#: Scheduling priorities.  Lower runs first at equal time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to stop the run loop when the until-event fires."""


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float; this repository's convention is **milliseconds**.
    The environment is fully deterministic: ties in time are broken by
    priority then insertion order.
    """

    # Slotted for attribute-lookup speed on the hot paths (schedule,
    # the run loop, Timeout's inlined push); ``__dict__`` stays so
    # external code can still hang arbitrary attributes off an env.
    __slots__ = (
        "_now", "_queue", "_eid_next", "_steps", "_active_proc",
        "_tracer", "_metrics", "_chaos", "_on_step", "instrumented",
        "__dict__", "__weakref__",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = CalendarQueue(start=self._now)
        self._eid_next = 0
        self._steps = 0
        self._active_proc: Optional[Process] = None
        self._tracer: Optional[Any] = None
        self._metrics: Optional[Any] = None
        self._chaos: Optional[Any] = None
        self._on_step: Optional[Any] = None
        #: True iff a tracer, metrics registry, or chaos engine is
        #: attached.  Plain attribute, recomputed by the property
        #: setters below; hot paths branch on it before touching the
        #: individual subsystems.
        self.instrumented = False

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def steps(self) -> int:
        """Total events executed by :meth:`step`/:meth:`run` so far."""
        return self._steps

    # -- instrumentation attachment points ----------------------------
    # Reading/assigning these looks exactly like the plain attributes
    # they used to be; the setters keep ``instrumented``/``_on_step``
    # coherent so the run loop and instrumentation sites stay cheap.
    @property
    def tracer(self) -> Optional[Any]:
        """Optional :class:`repro.trace.Tracer` (``None`` = tracing off)."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Optional[Any]) -> None:
        self._tracer = value
        self._on_step = None if value is None else value.on_step
        self.instrumented = (
            value is not None
            or self._metrics is not None
            or self._chaos is not None
        )

    @property
    def metrics(self) -> Optional[Any]:
        """Optional :class:`repro.telemetry.MetricsRegistry`."""
        return self._metrics

    @metrics.setter
    def metrics(self, value: Optional[Any]) -> None:
        self._metrics = value
        self.instrumented = (
            value is not None
            or self._tracer is not None
            or self._chaos is not None
        )

    @property
    def chaos(self) -> Optional[Any]:
        """Optional :class:`repro.chaos.ChaosEngine`.

        With no engine attached the simulation is byte-identical to a
        build without the chaos subsystem.
        """
        return self._chaos

    @chaos.setter
    def chaos(self, value: Optional[Any]) -> None:
        self._chaos = value
        self.instrumented = (
            value is not None
            or self._tracer is not None
            or self._metrics is not None
        )

    # -- event factories ---------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    # -- scheduling ---------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = PRIORITY_NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed after ``delay``."""
        eid = self._eid_next
        self._eid_next = eid + 1
        self._queue.push(self._now + delay, priority, eid, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek()

    def step(self) -> None:
        """Process the next event in the queue."""
        entry = self._queue.pop()
        if entry is None:
            raise EmptySchedule()
        when, prio, eid, event = entry

        self._now = when
        self._steps += 1
        on_step = self._on_step
        if on_step is not None:
            on_step(when, prio, eid, event)
        callbacks = event.callbacks
        event.callbacks = None
        cls = callbacks.__class__
        if cls is tuple:  # no subscribers
            pass
        elif cls is list:
            for callback in callbacks:
                if callback is not None:  # tombstoned by an interrupt
                    callback(event)
        else:  # bare callable: exactly one subscriber
            callbacks(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the simulation, mirroring an
            # uncaught exception in real code.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an event, a time, or queue exhaustion).

        Returns the value of the until-event, if one was given.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                at = float(until)
                if at <= self._now:
                    raise ValueError(
                        f"until ({at}) must be in the future (now={self._now})"
                    )
                stop_event = Event(self)
                # Urgent priority: stop before same-time normal events run.
                self.schedule(stop_event, priority=PRIORITY_URGENT, delay=at - self._now)
                stop_event._ok = True
                stop_event._value = None

            callbacks = stop_event.callbacks
            if callbacks is None:
                raise ValueError(f"until event {stop_event!r} already processed")
            if type(callbacks) is tuple:  # no subscribers yet
                stop_event.callbacks = _stop_callback
            elif type(callbacks) is list:
                callbacks.append(_stop_callback)
            else:  # one existing subscriber: upgrade to a list
                stop_event.callbacks = [callbacks, _stop_callback]

        # The body of :meth:`step` inlined with attribute chases hoisted
        # into locals — including :meth:`CalendarQueue.pop` itself.  The
        # queue's partitions (``_cur``/``_over``) and its ``_pops``
        # resize counter live in locals across iterations: pushes from
        # callbacks mutate the same list objects, and the only code
        # that *replaces* them (``_refill``/``_rescale``) is re-read
        # after the two calls below that can reach it.  A re-entrant
        # ``env.step()``/``env.peek()`` from a callback self-heals: it
        # can only leave the locals stale-*empty* (``_rescale`` clears
        # the lists it retires), which routes the next iteration
        # through ``refill()`` and a fresh re-read.  ``_pops`` is
        # written back on exit so subsequent ``step()`` calls stay
        # coherent.
        queue = self._queue
        refill = queue._refill
        check_pops = queue._CHECK_POPS
        cur = queue._cur
        over = queue._over
        # ``steps`` doubles as the pop counter: the next width check
        # fires when it crosses ``next_check`` (seeded from the
        # queue's persisted ``_pops`` so step()/run() mixing keeps the
        # same cadence).
        next_check = check_pops - queue._pops
        steps = 0
        try:
            while True:
                if over:
                    if cur and cur[-1] < over[0]:
                        entry = cur.pop()
                    else:
                        entry = heappop(over)
                elif cur:
                    entry = cur.pop()
                else:
                    if not refill():
                        break
                    cur = queue._cur
                    over = queue._over
                    continue
                steps += 1
                if steps >= next_check:
                    next_check = steps + check_pops
                    queue._auto_resize(entry[0])
                    cur = queue._cur
                    over = queue._over
                when, prio, eid, event = entry
                self._now = when
                on_step = self._on_step
                if on_step is not None:
                    on_step(when, prio, eid, event)
                callbacks = event.callbacks
                event.callbacks = None
                cls = callbacks.__class__
                if cls is tuple:  # no subscribers (e.g. watchdog timers)
                    pass
                elif cls is list:
                    for callback in callbacks:
                        if callback is not None:  # tombstoned by interrupt
                            callback(event)
                else:  # bare callable: exactly one subscriber
                    callbacks(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self._steps += steps
            queue._pops = check_pops - (next_check - steps)

        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                f"no scheduled events left but until={stop_event!r} pending"
            )
        return None


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
