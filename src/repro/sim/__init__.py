"""Discrete-event simulation kernel.

This package implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  All higher-level
subsystems in this repository (the FaaS platform, the metadata store,
the RPC fabric, clients) are expressed as :class:`Process` generators
scheduled by an :class:`Environment`.

Quick example::

    from repro.sim import Environment

    def hello(env):
        yield env.timeout(5.0)
        print("woke at", env.now)

    env = Environment()
    env.process(hello(env))
    env.run()
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.core import Environment, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    ConditionValue,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngStreams",
    "StopSimulation",
    "Store",
    "Timeout",
]
