"""Shared resources: capacity-limited resources, containers, stores.

These model contended entities such as CPU slots on a NameNode, NDB
transaction coordinator threads, or queues of pending work items.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """A pending request for one unit of a :class:`Resource`.

    Usable as a context manager so the unit is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass


class Resource:
    """A resource with finite capacity and FIFO queuing."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._queue)

    def request(self) -> Request:
        """Request one unit of this resource."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a previously granted unit (no-op if never granted)."""
        try:
            self._users.remove(request)
        except ValueError:
            request.cancel()
            return
        self._trigger()

    def resize(self, capacity: int) -> None:
        """Change the capacity (used for elastic scaling)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._getters.append(self)
        container._trigger()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._putters.append(self)
        container._trigger()


class Container:
    """A homogeneous bulk resource (e.g. tokens, bytes of memory)."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: Deque[ContainerGet] = deque()
        self._putters: Deque[ContainerPut] = deque()

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._level + self._putters[0].amount <= self.capacity:
                put = self._putters.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._getters and self._level >= self._getters[0].amount:
                get = self._getters.popleft()
                self._level -= get.amount
                get.succeed()
                progressed = True


class StoreGet(Event):
    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.env)
        self.predicate = predicate
        store._getters.append(self)
        store._trigger()


class Store:
    """An unbounded FIFO queue of Python objects with blocking get."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Add an item (never blocks; the store is unbounded)."""
        self.items.append(item)
        self._trigger()

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Event that triggers with the next (matching) item."""
        return StoreGet(self, predicate)

    def _trigger(self) -> None:
        waiting: List[StoreGet] = []
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            if getter.predicate is None:
                getter.succeed(self.items.popleft())
                continue
            matched = None
            for index, item in enumerate(self.items):
                if getter.predicate(item):
                    matched = index
                    break
            if matched is None:
                waiting.append(getter)
            else:
                del_item = self.items[matched]
                del self.items[matched]
                getter.succeed(del_item)
        self._getters.extendleft(reversed(waiting))
