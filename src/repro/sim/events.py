"""Event primitives for the simulation kernel.

Events follow the SimPy model: an event is created *pending*, may be
*triggered* with a value (success) or an exception (failure), and once
processed by the environment it invokes its registered callbacks.
Processes are events themselves, so one process can wait for another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Environment

PENDING = object()
"""Sentinel marking an event whose value has not been set yet."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """An event that may happen at some point in simulated time."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    def __repr__(self) -> str:
        status = "pending" if self._value is PENDING else repr(self._value)
        return f"<{type(self).__name__} {status}>"

    @property
    def triggered(self) -> bool:
        """True if the event has a value (it has been scheduled)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful when triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The triggered value; raises if the event is still pending."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    # -- composition -------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a new process on the next step."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=0)


class Process(Event):
    """Wraps a generator so it can be scheduled by the environment.

    The generator yields :class:`Event` instances; each time a yielded
    event is processed the generator is resumed with the event's value
    (or the event's exception is thrown into it).
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator exits."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        # Jump the queue: deliver the interrupt before normal events.
        interrupt_event.callbacks = [self._resume_interrupt]
        self.env.schedule(interrupt_event, priority=0)

    def _resume_interrupt(self, event: Event) -> None:
        # The process may have ended between scheduling and delivery.
        if self._value is not PENDING:
            return
        if self._target is not None and self.callbacks is not None:
            # Unsubscribe from the event we were waiting for.
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                self._ok = True
                self._value = getattr(stop, "value", None)
                self.env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - failure propagates
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if next_event is None:
                # ``yield None`` means "yield control, resume immediately".
                event = Event(self.env)
                event.succeed()
            elif isinstance(next_event, Event):
                event = next_event
            else:
                raise RuntimeError(
                    f"process yielded a non-event: {next_event!r}"
                )

            if event.callbacks is not None:
                # Event still pending: wait for it.
                event.callbacks.append(self._resume)
                self._target = event
                break
            # Event already processed: loop and resume immediately with
            # its value, without another trip through the queue.
            if not event._ok and not event._defused:
                event._defused = True

        self.env._active_proc = None


class ConditionValue:
    """Ordered mapping of events to values for triggered conditions."""

    def __init__(self) -> None:
        self.events: list = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def keys(self) -> Iterable[Event]:
        return list(self.events)

    def values(self) -> Iterable[Any]:
        return [event._value for event in self.events]

    def items(self) -> Iterable:
        return [(event, event._value) for event in self.events]

    def todict(self) -> dict:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Waits for a boolean combination of events."""

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())

    def _collect(self, value: ConditionValue) -> None:
        for event in self._events:
            if event.callbacks is None and event not in value.events:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            # The condition already fired (e.g. a timeout won the
            # race); a late failure of another member must not crash
            # the simulation.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._collect(value)
            self.succeed(value)


class AllOf(Condition):
    """Triggered once every given event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Triggered once any of the given events has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1, events)
