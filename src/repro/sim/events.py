"""Event primitives for the simulation kernel.

Events follow the SimPy model: an event is created *pending*, may be
*triggered* with a value (success) or an exception (failure), and once
processed by the environment it invokes its registered callbacks.
Processes are events themselves, so one process can wait for another.

Hot-path notes (see docs/kernel.md):

* Every class here carries ``__slots__`` — at 100k+ concurrent client
  processes the per-instance ``__dict__`` was a third of the kernel's
  heap and a measurable share of its attribute-lookup time.  External
  subclasses without ``__slots__`` still work; they simply get a dict.
* :meth:`Process._resume` is the single hottest Python frame in the
  simulator; attribute chases are hoisted into locals.  The bound
  resume callback *is* cached (``_resume_cb``) to save one bound-method
  allocation per resume — a reference cycle, but one that is broken by
  clearing the slot the moment the generator terminates, so dead
  processes stay refcount-collectable instead of accumulating as
  cyclic garbage (at 100k processes, full collections over that
  garbage would dominate the run).
* Unsubscription on interrupt is O(1): a process remembers the index at
  which it subscribed (``_target_index``) and tombstones that slot to
  ``None`` instead of ``list.remove`` scanning the callback list.  The
  environment's dispatch loop skips ``None`` entries.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Environment

PENDING = object()
"""Sentinel marking an event whose value has not been set yet."""

_NO_CALLBACKS: tuple = ()
"""Shared empty-callbacks marker: a pending event with no subscribers.

Events are created by the million and the overwhelmingly common cases
are *zero* subscribers (armed watchdog timeouts) or *exactly one* (the
process that yielded on the event), so ``Event.callbacks`` uses a
compact tagged representation instead of always allocating a list:

* this shared empty tuple — pending, no subscribers (no allocation);
* a bare callable — pending, exactly one subscriber (no allocation);
* a list — pending, two or more subscribers (may contain ``None``
  tombstones left by O(1) interrupt unsubscription);
* ``None`` — already processed.

The kernel's subscription sites (``Process._resume``, ``Condition``,
``Environment.run``) upgrade the representation in place; external
code must not assume ``callbacks`` is a list.
"""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """An event that may happen at some point in simulated time."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Any = _NO_CALLBACKS
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    def __repr__(self) -> str:
        status = "pending" if self._value is PENDING else repr(self._value)
        return f"<{type(self).__name__} {status}>"

    @property
    def triggered(self) -> bool:
        """True if the event has a value (it has been scheduled)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful when triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The triggered value; raises if the event is still pending."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    # -- composition -------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the bulk of all events; the base ``__init__``,
        # ``Environment.schedule`` *and* ``CalendarQueue.push`` are
        # inlined here to save three frames on the hottest allocation
        # path.  The eid counter and the push routing must stay
        # byte-identical to ``schedule`` (priority is PRIORITY_NORMAL).
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self._ok = True
        self._defused = False
        eid = env._eid_next
        env._eid_next = eid + 1
        queue = env._queue
        t = env._now + delay
        idx = int(t * queue._inv_width)
        if idx <= queue._cur_idx:
            heappush(queue._over, (t, 1, eid, self))
        elif idx < queue._far_limit:
            ring = queue._ring
            slot = idx & queue._mask
            bucket = ring[slot]
            if bucket is None:
                ring[slot] = [(t, 1, eid, self)]
            else:
                bucket.append((t, 1, eid, self))
            queue._ring_count += 1
        else:
            heappush(queue._far, (t, 1, eid, self))


class Initialize(Event):
    """Internal event that starts a new process on the next step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        # The process is the sole subscriber (bare-callable form);
        # Process.__init__ records _target_index = 0 to match.
        self.callbacks = process._resume_cb
        self._value = None
        self._ok = True
        self._defused = False
        env.schedule(self, 0)  # PRIORITY_URGENT


class Process(Event):
    """Wraps a generator so it can be scheduled by the environment.

    The generator yields :class:`Event` instances; each time a yielded
    event is processed the generator is resumed with the event's value
    (or the event's exception is thrown into it).
    """

    __slots__ = ("_generator", "_target", "_target_index", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self._target_index = 0
        # The cached bound resume method is a deliberate reference
        # cycle (process -> bound method -> process) that saves one
        # bound-method allocation per resume; it is broken by clearing
        # the slot the moment the generator terminates, so *dead*
        # processes remain refcount-collectable and never accumulate as
        # cyclic garbage (see docs/kernel.md).
        self._resume_cb = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator exits."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        # Jump the queue: deliver the interrupt before normal events.
        interrupt_event.callbacks = self._resume_interrupt
        self.env.schedule(interrupt_event, priority=0)

    def _resume_interrupt(self, event: Event) -> None:
        # The process may have ended between scheduling and delivery.
        if self._value is not PENDING:
            return
        target = self._target
        if target is not None and self.callbacks is not None:
            # Unsubscribe from the event we were waiting for in O(1).
            # Bare-callable form: drop back to the no-subscriber
            # marker.  List form: tombstone the recorded subscription
            # slot (lists are append-only, so the index recorded at
            # subscription time still addresses our entry).  Every
            # subscription installs the one cached ``_resume_cb``
            # object, so identity checks suffice and make a second
            # interrupt a no-op.
            callbacks = target.callbacks
            if type(callbacks) is list:
                index = self._target_index
                if index < len(callbacks) and callbacks[index] is self._resume_cb:
                    callbacks[index] = None
            elif callbacks is self._resume_cb:
                target.callbacks = _NO_CALLBACKS
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_proc = self
        generator = self._generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                self._ok = True
                self._value = getattr(stop, "value", None)
                self._resume_cb = None  # break the cached-callback cycle
                env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - failure propagates
                self._ok = False
                self._value = exc
                self._resume_cb = None  # break the cached-callback cycle
                env.schedule(self)
                break

            try:
                callbacks = next_event.callbacks
            except AttributeError:
                if next_event is None:
                    # ``yield None``: yield control, resume immediately.
                    event = Event(env)
                    event.succeed()
                    continue
                raise RuntimeError(
                    f"process yielded a non-event: {next_event!r}"
                ) from None
            event = next_event

            if callbacks is not None:
                # Event still pending: wait for it, remembering where we
                # subscribed so an interrupt can unsubscribe in O(1).
                if callbacks is _NO_CALLBACKS:
                    event.callbacks = self._resume_cb  # sole subscriber
                    self._target_index = 0
                elif type(callbacks) is list:
                    self._target_index = len(callbacks)
                    callbacks.append(self._resume_cb)
                else:  # one existing subscriber: upgrade to a list
                    event.callbacks = [callbacks, self._resume_cb]
                    self._target_index = 1
                self._target = event
                break
            # Event already processed: loop and resume immediately with
            # its value, without another trip through the queue.
            if not event._ok and not event._defused:
                event._defused = True

        env._active_proc = None


class ConditionValue:
    """Ordered mapping of events to values for triggered conditions.

    Preserves trigger order in ``events`` while answering membership
    and ``[]`` lookups from a parallel identity set in O(1) (events
    hash by identity; none of them define ``__eq__``).
    """

    __slots__ = ("events", "_present")

    def __init__(self) -> None:
        self.events: list = []
        self._present: set = set()

    def add(self, event: Event) -> None:
        """Record ``event`` once, keeping insertion order."""
        if event not in self._present:
            self._present.add(event)
            self.events.append(event)

    def __getitem__(self, key: Event) -> Any:
        if key not in self._present:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self._present

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def keys(self) -> Iterable[Event]:
        return list(self.events)

    def values(self) -> Iterable[Any]:
        return [event._value for event in self.events]

    def items(self) -> Iterable:
        return [(event, event._value) for event in self.events]

    def todict(self) -> dict:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Waits for a boolean combination of events."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._count = 0

        # Copy and validate in one pass (all members are validated
        # before any subscription happens, so a mixed-environment error
        # leaves no dangling callbacks behind).
        members: list = []
        append = members.append
        for event in events:
            if event.env is not env:
                raise ValueError("events from different environments")
            append(event)
        self._events = members

        if not members:
            self.succeed(ConditionValue())
            return

        check = self._check  # one bound method for every subscription
        for event in members:
            callbacks = event.callbacks
            if callbacks is None:
                check(event)
            elif callbacks is _NO_CALLBACKS:
                event.callbacks = check  # sole subscriber
            elif type(callbacks) is list:
                callbacks.append(check)
            else:  # one existing subscriber: upgrade to a list
                event.callbacks = [callbacks, check]

    def _collect(self, value: ConditionValue) -> None:
        add = value.add
        for event in self._events:
            if event.callbacks is None:
                add(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            # The condition already fired (e.g. a timeout won the
            # race); a late failure of another member must not crash
            # the simulation.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._collect(value)
            self.succeed(value)


class AllOf(Condition):
    """Triggered once every given event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Triggered once any of the given events has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1, events)
