"""Deterministic named random-number streams.

Every stochastic component (HTTP latency, Pareto burst generator,
replacement coin flips, ...) draws from its own named stream derived
from a single master seed, so experiments are reproducible and
components never perturb each other's randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent ``random.Random`` streams.

    Each stream is keyed by name; the stream seed is derived from the
    master seed and the name, so adding a new stream never shifts the
    sequence seen by existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __call__(self, name: str) -> random.Random:
        return self.stream(name)
