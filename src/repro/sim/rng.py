"""Deterministic named random-number streams.

Every stochastic component (HTTP latency, Pareto burst generator,
replacement coin flips, ...) draws from its own named stream derived
from a single master seed, so experiments are reproducible and
components never perturb each other's randomness.

Three amortization layers sit on top of the raw streams, all of them
**sequence-preserving** — a component that migrates from direct
``random.Random`` calls to any of these sees the byte-identical value
sequence, so same-seed event hashes cannot change:

* *cached-method handles* (:meth:`RngStreams.handle`) memoize a bound
  method of a stream, removing the dict lookup + attribute chase that
  every hot-path draw otherwise pays;
* *batch draws* (:meth:`RngStreams.uniform_batch`,
  :meth:`RngStreams.expovariate_batch`, :meth:`RngStreams.random_batch`)
  produce ``n`` values with one call, exactly equal to ``n`` sequential
  single draws from the same stream;
* :class:`BufferedDraws` prefetches raw ``random()`` blocks from one
  stream and derives ``uniform``/``expovariate`` values with the same
  formulas ``random.Random`` uses, so per-call overhead collapses to a
  list index.  Because it *prefetches*, a buffer must be the stream's
  **only** consumer; :meth:`RngStreams.buffered` memoizes one buffer
  per stream name to make that easy to honour.
"""

from __future__ import annotations

import hashlib
import random
from math import log as _log
from typing import Callable, Dict, List, Tuple


class BufferedDraws:
    """Amortized draws from one ``random.Random``.

    Raw ``random()`` values are pulled in blocks; ``uniform`` and
    ``expovariate`` apply the identical formulas ``random.Random``
    uses (``a + (b - a) * random()`` and ``-log(1 - random())/lambd``),
    so call-for-call the values match direct stream draws — provided
    this buffer is the stream's only consumer (prefetching reorders
    raw draws relative to any *other* reader of the same stream).
    """

    __slots__ = ("rng", "_raw", "_block", "_buf", "_i")

    def __init__(self, rng: random.Random, block: int = 256) -> None:
        if block <= 0:
            raise ValueError("block must be positive")
        self.rng = rng
        self._raw = rng.random
        self._block = block
        # ``_i == _block`` means "refill needed"; starting there makes
        # the first draw refill without a special empty-buffer case.
        self._buf: List[float] = []
        self._i = block

    def random(self) -> float:
        i = self._i
        if i == self._block:
            raw = self._raw
            self._buf = [raw() for _ in range(i)]
            i = 0
        self._i = i + 1
        return self._buf[i]

    def uniform(self, a: float, b: float) -> float:
        i = self._i
        if i == self._block:
            raw = self._raw
            self._buf = [raw() for _ in range(i)]
            i = 0
        self._i = i + 1
        return a + (b - a) * self._buf[i]

    def expovariate(self, lambd: float) -> float:
        i = self._i
        if i == self._block:
            raw = self._raw
            self._buf = [raw() for _ in range(i)]
            i = 0
        self._i = i + 1
        return -_log(1.0 - self._buf[i]) / lambd

    # Fixed-arity batch draws: one call serves several draws from the
    # prefetched block, saving the per-call overhead that dominates
    # sub-microsecond latency models.  Values are served in exactly
    # the order the scalar methods would serve them; near a block
    # boundary the scalar path takes over, so the raw-draw sequence
    # from the underlying stream is unchanged.
    def random3(self) -> "Tuple[float, float, float]":
        i = self._i
        if i + 3 <= self._block:
            buf = self._buf
            self._i = i + 3
            return buf[i], buf[i + 1], buf[i + 2]
        r = self.random
        return r(), r(), r()

    def uniform2(self, a: float, b: float) -> "Tuple[float, float]":
        i = self._i
        if i + 2 <= self._block:
            buf = self._buf
            self._i = i + 2
            s = b - a
            return a + s * buf[i], a + s * buf[i + 1]
        u = self.uniform
        return u(a, b), u(a, b)

    def uniform4(self, a: float, b: float) -> "Tuple[float, float, float, float]":
        i = self._i
        if i + 4 <= self._block:
            buf = self._buf
            self._i = i + 4
            s = b - a
            return (a + s * buf[i], a + s * buf[i + 1],
                    a + s * buf[i + 2], a + s * buf[i + 3])
        u = self.uniform
        return u(a, b), u(a, b), u(a, b), u(a, b)

    def pending(self) -> int:
        """Prefetched-but-unserved draws (diagnostics only)."""
        return len(self._buf) - self._i if self._buf else 0


class RngStreams:
    """A factory of independent ``random.Random`` streams.

    Each stream is keyed by name; the stream seed is derived from the
    master seed and the name, so adding a new stream never shifts the
    sequence seen by existing ones.
    """

    __slots__ = ("seed", "_streams", "_handles", "_buffers")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}
        self._handles: Dict[Tuple[str, str], Callable] = {}
        self._buffers: Dict[str, BufferedDraws] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __call__(self, name: str) -> random.Random:
        return self.stream(name)

    # -- amortized access --------------------------------------------------
    def handle(self, name: str, method: str = "random") -> Callable:
        """Memoized bound ``method`` of the named stream.

        ``streams.handle("latency", "uniform")`` is the same callable
        on every call, so hot paths hoist it once and skip the stream
        dict lookup plus the method attribute chase per draw.  Draw
        sequences are untouched — it *is* the stream's own method.
        """
        key = (name, method)
        fn = self._handles.get(key)
        if fn is None:
            fn = getattr(self.stream(name), method)
            self._handles[key] = fn
        return fn

    def buffered(self, name: str, block: int = 256) -> BufferedDraws:
        """Memoized :class:`BufferedDraws` over the named stream.

        One buffer per name: every caller asking for the same name
        shares the buffer, which keeps the single-consumer requirement
        intact as long as nobody mixes ``buffered(name)`` with direct
        ``stream(name)`` draws.
        """
        buf = self._buffers.get(name)
        if buf is None:
            buf = BufferedDraws(self.stream(name), block)
            self._buffers[name] = buf
        return buf

    # -- batch draws -------------------------------------------------------
    def random_batch(self, name: str, n: int) -> List[float]:
        """``n`` raw draws — equal to ``n`` sequential ``random()`` calls."""
        raw = self.handle(name, "random")
        return [raw() for _ in range(n)]

    def uniform_batch(self, name: str, a: float, b: float, n: int) -> List[float]:
        """``n`` uniform draws — equal to ``n`` ``uniform(a, b)`` calls."""
        u = self.handle(name, "uniform")
        return [u(a, b) for _ in range(n)]

    def expovariate_batch(self, name: str, lambd: float, n: int) -> List[float]:
        """``n`` exponential draws — equal to ``n`` ``expovariate`` calls."""
        e = self.handle(name, "expovariate")
        return [e(lambd) for _ in range(n)]
