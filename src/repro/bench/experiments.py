"""One driver per paper table/figure (see DESIGN.md experiment index).

All experiments run at a documented scale-down: systems keep their
paper-calibrated constants (NDB capacity, latencies, per-op CPU), so
*ratios and crossovers* are preserved, while client counts and load
targets are reduced so a full suite completes in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import IndexFSCluster, IndexFSConfig, LambdaIndexFS, LambdaIndexFSConfig
from repro.bench.harness import (
    SystemHandle,
    build_cephfs,
    build_hopsfs,
    build_hopsfs_cache,
    build_infinicache,
    build_lambdafs,
    drive,
    run_micro,
)
from repro.core import OpType
from repro.core.subtree import SubtreeConfig
from repro.faas.chaos import NameNodeKiller
from repro.metastore import NdbConfig
from repro.metrics import VM_VCPU_SECOND_USD, latency_cdf, percentile
from repro.namespace.treegen import TreeSpec, flat_directory, generate_tree
from repro.sim import Environment
from repro.workloads import SpotifyConfig, SpotifyWorkload, TreeTest, TreeTestConfig

DEFAULT_TREE = TreeSpec(depth=3, dirs_per_dir=4, files_per_dir=8)

#: The Spotify experiments keep the paper-calibrated NDB (mixed
#: capacity ~23k ops/s, matching HopsFS' observed ceiling) and drive a
#: 6k-ops/s base whose Pareto bursts exceed that ceiling — the same
#: relationship as the paper's 25k base vs its testbed's capacity, at
#: a scale a simulation completes in minutes.
SPOTIFY_NDB = NdbConfig()


# ---------------------------------------------------------------------------
# Figures 8, 9, 10, 15 — the Spotify industrial workload suite
# ---------------------------------------------------------------------------


@dataclass
class SpotifyRun:
    """Everything measured during one system's Spotify execution."""

    name: str
    throughput_timeline: List[Tuple[float, float]]
    nn_timeline: List[Tuple[float, int]]
    cost_timeline: List[Tuple[float, float]]
    avg_throughput: float
    peak_throughput: float
    avg_latency_ms: float
    final_cost_usd: float
    simplified_cost_usd: Optional[float] = None
    latencies_by_op: Dict[str, List[float]] = field(default_factory=dict)
    issued: int = 0
    completed: int = 0
    trace_report: Optional[dict] = None
    """Tracer summary + invariant violations (``trace=True`` runs)."""

    def read_latency_cdf(self, op: str = "read file"):
        return latency_cdf(self.latencies_by_op.get(op, []))

    def perf_per_cost_timeline(self) -> List[Tuple[float, float]]:
        """ops/sec per incremental $ for each sampling interval."""
        series = []
        previous_cost = 0.0
        costs = dict(self.cost_timeline)
        for t, ops in self.throughput_timeline:
            cost_now = costs.get(t)
            if cost_now is None:
                continue
            delta = max(cost_now - previous_cost, 1e-12)
            previous_cost = cost_now
            series.append((t, ops / delta))
        return series


def _spotify_driver(
    handle: SystemHandle,
    tree,
    base_throughput: float,
    duration_ms: float,
    clients: int,
    seed: int,
    kill_interval_ms: Optional[float] = None,
    interval_ms: float = 10_000.0,
) -> SpotifyRun:
    env = handle.env
    client_objects = handle.make_clients(clients)
    if handle.prewarm is not None:
        drive(env, handle.prewarm())

    nn_timeline: List[Tuple[float, int]] = []
    cost_timeline: List[Tuple[float, float]] = []
    start = env.now

    def sampler(env):
        while True:
            nn_timeline.append((env.now - start, handle.active_servers()))
            cost_timeline.append((env.now - start, handle.cost_usd(env.now - start)))
            yield env.timeout(1_000.0)

    sampler_proc = env.process(sampler(env))

    killer = None
    if kill_interval_ms is not None and hasattr(handle.system, "platform"):
        killer = NameNodeKiller(env, handle.system.platform, kill_interval_ms)
        killer.start()

    workload = SpotifyWorkload(
        env,
        SpotifyConfig(
            base_throughput=base_throughput,
            duration_ms=duration_ms,
            interval_ms=interval_ms,
            seed=seed,
        ),
        tree,
    )
    drive(env, workload.run(client_objects))
    if killer is not None:
        killer.stop()
    if sampler_proc.is_alive:
        sampler_proc.interrupt()

    metrics = handle.metrics
    elapsed = env.now - start
    latencies_by_op: Dict[str, List[float]] = {}
    for record in metrics.records:
        latencies_by_op.setdefault(record.op, []).append(record.latency_ms)
    fs = handle.system
    simplified = (
        fs.simplified_cost_usd() if hasattr(fs, "simplified_cost_usd") else None
    )
    trace_report = None
    if handle.tracer is not None:
        trace_report = dict(handle.tracer.summary())
        trace_report["violation_detail"] = [
            str(v) for v in handle.tracer.violations()
        ]
    return SpotifyRun(
        name=handle.name,
        throughput_timeline=metrics.throughput_timeline(1_000.0),
        nn_timeline=nn_timeline,
        cost_timeline=cost_timeline,
        avg_throughput=metrics.average_throughput(elapsed),
        peak_throughput=metrics.peak_throughput(1_000.0),
        avg_latency_ms=metrics.average_latency(),
        final_cost_usd=handle.cost_usd(elapsed),
        simplified_cost_usd=simplified,
        latencies_by_op=latencies_by_op,
        issued=workload.issued,
        completed=workload.completed,
        trace_report=trace_report,
    )


def fig8_spotify(
    base_throughput: float = 6_000.0,
    duration_ms: float = 30_000.0,
    clients: int = 192,
    vcpus: float = 512.0,
    seed: int = 8,
    systems: Sequence[str] = (
        "lambda", "hopsfs", "hopsfs_cache", "lambda_reduced", "cn_hopsfs_cache"
    ),
    kill_interval_ms: Optional[float] = None,
    trace: bool = False,
) -> Dict[str, SpotifyRun]:
    """Figures 8(a)/8(b) (and 15 with ``kill_interval_ms``).

    Scaled down from the paper's 25k-ops/s configuration (see
    SPOTIFY_NDB); pass ``base_throughput=12_000`` for the Figure 8(b)
    analogue of the 50k run.
    """
    tree = generate_tree(DEFAULT_TREE)
    working_set = len(tree.files) + len(tree.directories)
    results: Dict[str, SpotifyRun] = {}

    lambda_cost_usd: Optional[float] = None
    # §5.2.1: each λFS NameNode gets 5 vCPUs and 6 GB of RAM for the
    # Spotify workloads (the 30 GB default is the microbenchmark
    # configuration) — this is where the pay-per-use cost gap
    # against the serverful 512-vCPU cluster comes from.
    spotify_faas = {
        "vcpus_per_instance": 5.0,
        "ram_gb_per_instance": 6.0,
        # Short idle grace so post-burst scale-in is visible within
        # the run (Figure 8's NN-count line comes back down).
        "idle_reclaim_ms": 8_000.0,
    }
    for system in systems:
        env = Environment()
        if system == "lambda":
            handle = build_lambdafs(
                env, tree, vcpus=vcpus, ndb=SPOTIFY_NDB, seed=seed,
                faas_overrides=dict(spotify_faas), trace=trace,
            )
        elif system == "lambda_reduced":
            # §5.2.3: cache capacity under half the working set size.
            # Each deployment caches ~1/n of the namespace; capacity
            # must be a fraction of that *partition* to actually bind.
            partition = max(1, working_set // 16)
            handle = build_lambdafs(
                env, tree, vcpus=vcpus, ndb=SPOTIFY_NDB, seed=seed,
                namenode_overrides={"cache_capacity": max(4, partition // 3)},
                faas_overrides=dict(spotify_faas),
                name="λFS (reduced cache)",
            )
        elif system == "hopsfs":
            handle = build_hopsfs(env, tree, vcpus=vcpus, ndb=SPOTIFY_NDB, seed=seed)
        elif system == "hopsfs_cache":
            handle = build_hopsfs_cache(env, tree, vcpus=vcpus, ndb=SPOTIFY_NDB, seed=seed)
        elif system == "cn_hopsfs_cache":
            # Cost-normalized: sized so its VM cost equals λFS' run cost.
            cost = lambda_cost_usd if lambda_cost_usd else 0.05
            cn_vcpus = max(
                16.0,
                16.0 * round(cost / (VM_VCPU_SECOND_USD * duration_ms / 1_000.0) / 16.0),
            )
            handle = build_hopsfs_cache(
                env, tree, vcpus=cn_vcpus, ndb=SPOTIFY_NDB, seed=seed,
                name="CN HopsFS+Cache",
            )
        elif system == "infinicache":
            handle = build_infinicache(
                env, tree, vcpus=vcpus, ndb=SPOTIFY_NDB, seed=seed, trace=trace
            )
        else:
            raise ValueError(f"unknown system {system!r}")
        run = _spotify_driver(
            handle, tree, base_throughput, duration_ms, clients, seed,
            kill_interval_ms=kill_interval_ms if system == "lambda" else None,
        )
        results[system] = run
        if system == "lambda":
            lambda_cost_usd = run.final_cost_usd
    return results


def fig15_fault_tolerance(
    base_throughput: float = 6_000.0,
    duration_ms: float = 30_000.0,
    clients: int = 192,
    kill_interval_ms: float = 5_000.0,
    seed: int = 8,
    trace: bool = False,
) -> Dict[str, SpotifyRun]:
    """§5.6: the Spotify run with a NameNode killed periodically
    (paper: every 30 s of a 300 s run; here every 7.5 s of 45 s)."""
    with_failures = fig8_spotify(
        base_throughput, duration_ms, clients, seed=seed,
        systems=("lambda",), kill_interval_ms=kill_interval_ms, trace=trace,
    )["lambda"]
    without = fig8_spotify(
        base_throughput, duration_ms, clients, seed=seed, systems=("lambda",),
        trace=trace,
    )["lambda"]
    with_failures.name = "λFS+Failures"
    return {"failures": with_failures, "baseline": without}


# ---------------------------------------------------------------------------
# Figures 11, 12, 13, 14 — scaling microbenchmarks
# ---------------------------------------------------------------------------

MICRO_OPS = (
    OpType.READ_FILE, OpType.LS, OpType.STAT, OpType.CREATE_FILE, OpType.MKDIRS
)

SYSTEM_BUILDERS: Dict[str, Callable] = {
    "lambda": build_lambdafs,
    "hopsfs": build_hopsfs,
    "hopsfs_cache": build_hopsfs_cache,
    "infinicache": build_infinicache,
    "cephfs": lambda env, tree, vcpus=512.0, seed=0, **_: build_cephfs(
        env, tree, vcpus=vcpus, seed=seed
    ),
}


@dataclass
class ScalingPoint:
    system: str
    op: OpType
    clients: int
    vcpus: float
    throughput: float
    errors: int
    active_servers: int
    cost_usd: float
    duration_ms: float


def _one_scaling_point(
    system: str,
    op: OpType,
    clients: int,
    vcpus: float,
    ops_per_client: int,
    warmup_per_client: int,
    seed: int,
    tree=None,
) -> ScalingPoint:
    tree = tree if tree is not None else generate_tree(DEFAULT_TREE)
    env = Environment()
    handle = SYSTEM_BUILDERS[system](env, tree, vcpus=vcpus, seed=seed)
    result = run_micro(
        handle, tree, op, clients, ops_per_client, warmup_per_client, seed=seed
    )
    return ScalingPoint(
        system=system,
        op=op,
        clients=clients,
        vcpus=vcpus,
        throughput=result.throughput,
        errors=result.errors,
        active_servers=handle.active_servers(),
        cost_usd=handle.cost_usd(result.duration_ms),
        duration_ms=result.duration_ms,
    )


def fig11_client_scaling(
    client_counts: Sequence[int] = (8, 32, 128, 256),
    ops: Sequence[OpType] = MICRO_OPS,
    systems: Sequence[str] = ("lambda", "hopsfs", "hopsfs_cache", "infinicache", "cephfs"),
    ops_per_client: int = 192,
    warmup_per_client: int = 48,
    vcpus: float = 512.0,
    seed: int = 0,
) -> List[ScalingPoint]:
    """Figure 11 (paper: 8→1024 clients at fixed 512 vCPUs)."""
    points = []
    for op in ops:
        for count in client_counts:
            for system in systems:
                points.append(_one_scaling_point(
                    system, op, count, vcpus, ops_per_client,
                    warmup_per_client, seed,
                ))
    return points


def fig12_resource_scaling(
    vcpu_list: Sequence[float] = (64.0, 128.0, 256.0, 512.0),
    ops: Sequence[OpType] = MICRO_OPS,
    systems: Sequence[str] = ("lambda", "hopsfs", "hopsfs_cache"),
    clients: int = 128,
    ops_per_client: int = 192,
    warmup_per_client: int = 48,
    seed: int = 0,
) -> List[ScalingPoint]:
    """Figure 12 (paper: 16→512 vCPUs)."""
    points = []
    for op in ops:
        for vcpus in vcpu_list:
            for system in systems:
                points.append(_one_scaling_point(
                    system, op, clients, vcpus, ops_per_client,
                    warmup_per_client, seed,
                ))
    return points


def fig13_perf_per_cost(
    client_counts: Sequence[int] = (8, 32, 128, 256),
    ops: Sequence[OpType] = (OpType.READ_FILE, OpType.LS, OpType.STAT),
    ops_per_client: int = 192,
    warmup_per_client: int = 48,
    seed: int = 0,
) -> List[dict]:
    """Figure 13: perf-per-cost for read ops, λFS vs HopsFS+Cache.

    λFS is billed per §5.2.5's activity model — a NameNode's
    resources are billed only while it serves requests — which §5.3.3
    notes is close to the simplified model's result here because the
    fleet is busy for the whole test.  HopsFS+Cache's VMs are billed
    for the full duration of the test.
    """
    rows = []
    tree = generate_tree(DEFAULT_TREE)
    for op in ops:
        for count in client_counts:
            env = Environment()
            handle = build_lambdafs(env, tree, seed=seed)
            result = run_micro(handle, tree, op, count, ops_per_client,
                               warmup_per_client, seed=seed)
            lambda_cost = handle.system.cost_usd()
            lambda_ppc = result.throughput / max(lambda_cost, 1e-12)

            env2 = Environment()
            handle2 = build_hopsfs_cache(env2, tree, seed=seed)
            result2 = run_micro(handle2, tree, op, count, ops_per_client,
                                warmup_per_client, seed=seed)
            cache_cost = handle2.cost_usd(env2.now)
            cache_ppc = result2.throughput / max(cache_cost, 1e-12)
            rows.append({
                "op": op, "clients": count,
                "lambda_throughput": result.throughput,
                "lambda_ppc": lambda_ppc,
                "hopsfs_cache_throughput": result2.throughput,
                "hopsfs_cache_ppc": cache_ppc,
            })
    return rows


def fig14_autoscaling_ablation(
    ops: Sequence[OpType] = MICRO_OPS,
    clients: int = 192,
    ops_per_client: int = 128,
    warmup_per_client: int = 32,
    deployments: int = 4,
    seed: int = 0,
) -> List[dict]:
    """Figure 14: auto-scaling enabled / limited (≤3) / disabled (1).

    Few deployments concentrate per-deployment load (hot partitions)
    so a single instance per deployment visibly saturates — the
    situation intra-deployment auto-scaling exists to solve.
    """
    modes = {"AS": None, "Limited AS": 3, "No AS": 1}
    tree = generate_tree(DEFAULT_TREE)
    rows = []
    for op in ops:
        row = {"op": op}
        for mode, cap in modes.items():
            env = Environment()
            handle = build_lambdafs(
                env, tree, seed=seed, deployments=deployments,
                faas_overrides={"max_instances_per_deployment": cap},
            )
            result = run_micro(handle, tree, op, clients, ops_per_client,
                               warmup_per_client, seed=seed)
            row[mode] = result.throughput
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 3 and Appendix D — subtree operations
# ---------------------------------------------------------------------------


def table3_subtree_mv(
    directory_sizes: Sequence[int] = (4_096, 8_192, 16_384),
    seed: int = 0,
    batch_size: int = 256,
    offload: bool = True,
) -> List[dict]:
    """Table 3: end-to-end latency of subtree ``mv`` (paper: 2^18–2^20
    files; here 2^10–2^12 — the store-bound linear scaling is the
    claim under test)."""
    rows = []
    for size in directory_sizes:
        tree = flat_directory("/big", size)
        row = {"files": size}
        for system in ("lambda", "hopsfs"):
            env = Environment()
            if system == "lambda":
                handle = build_lambdafs(env, tree, seed=seed)
                handle.system.subtree.config = SubtreeConfig(
                    batch_size=batch_size, offload_enabled=offload
                )
            else:
                handle = build_hopsfs(env, tree, seed=seed)
            client = handle.make_clients(1)[0]
            if handle.prewarm is not None:
                drive(env, handle.prewarm())

            def one_mv(client=client):
                start = env.now
                response = yield from client.mv("/big", "/big_moved")
                assert response.ok, response.error
                return env.now - start

            row[system] = drive(env, one_mv())
        rows.append(row)
    return rows


def appd_offload_ablation(
    directory_size: int = 4_096,
    batch_sizes: Sequence[int] = (64, 256, 1_024),
    seed: int = 0,
) -> List[dict]:
    """Appendix D: subtree latency vs batch size, offload on/off."""
    rows = []
    for batch in batch_sizes:
        row = {"batch_size": batch}
        for offload in (True, False):
            result = table3_subtree_mv(
                (directory_size,), seed=seed, batch_size=batch, offload=offload
            )[0]
            row["offload" if offload else "local"] = result["lambda"]
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 16 — λIndexFS vs IndexFS
# ---------------------------------------------------------------------------


def fig16_indexfs(
    client_counts: Sequence[int] = (8, 32, 128),
    writes_per_client: int = 200,
    reads_per_client: int = 200,
    fixed_total: int = 12_800,
    seed: int = 0,
) -> List[dict]:
    """Figure 16: tree-test on IndexFS vs λIndexFS (paper: 2→256
    clients, 10k ops/client variable, 1M+1M fixed)."""
    rows = []
    for fixed in (False, True):
        for count in client_counts:
            config = TreeTestConfig(
                writes_per_client=writes_per_client,
                reads_per_client=reads_per_client,
                fixed_total_writes=fixed_total,
                fixed_total_reads=fixed_total,
                seed=seed,
            )

            env = Environment()
            vanilla = IndexFSCluster(env, IndexFSConfig(seed=seed))
            clients = [vanilla.new_client() for _ in range(count)]
            vanilla_result = drive(
                env, TreeTest(env, config).run(clients, fixed_size=fixed)
            )

            env2 = Environment()
            ported = LambdaIndexFS(env2, LambdaIndexFSConfig(seed=seed))
            ported.start()
            drive(env2, ported.prewarm())
            lambda_clients = [ported.new_client() for _ in range(count)]
            lambda_result = drive(
                env2, TreeTest(env2, config).run(lambda_clients, fixed_size=fixed)
            )

            rows.append({
                "workload": "fixed" if fixed else "variable",
                "clients": count,
                "indexfs_write": vanilla_result.write_throughput,
                "indexfs_read": vanilla_result.read_throughput,
                "indexfs_agg": vanilla_result.aggregate_throughput,
                "lambda_write": lambda_result.write_throughput,
                "lambda_read": lambda_result.read_throughput,
                "lambda_agg": lambda_result.aggregate_throughput,
            })
    return rows


# ---------------------------------------------------------------------------
# Appendices B & C, replacement-probability sweep
# ---------------------------------------------------------------------------


def appb_straggler_ablation(
    clients: int = 128,
    ops_per_client: int = 192,
    kill_interval_ms: float = 500.0,
    seed: int = 3,
) -> Dict[str, dict]:
    """Appendix B: tail latency with straggler mitigation on/off while
    NameNodes are being killed under the workload."""
    tree = generate_tree(DEFAULT_TREE)
    out = {}
    for enabled in (True, False):
        env = Environment()
        handle = build_lambdafs(
            env, tree, seed=seed,
            client_overrides={"straggler_enabled": enabled},
        )
        client_objects = handle.make_clients(clients)
        drive(env, handle.prewarm())
        killer = NameNodeKiller(env, handle.system.platform, kill_interval_ms)
        killer.start()
        from repro.workloads import MicroBenchmark

        bench = MicroBenchmark(env, tree, seed=seed)
        result = drive(env, bench.run(client_objects, OpType.READ_FILE,
                                      ops_per_client, warmup_per_client=16))
        killer.stop()
        latencies = handle.metrics.latencies()
        out["on" if enabled else "off"] = {
            "throughput": result.throughput,
            "p99": percentile(latencies, 99),
            "p999": percentile(latencies, 99.9),
            "max": max(latencies),
        }
    return out


def appc_antithrash_ablation(
    clients: int = 96,
    ops_per_client: int = 160,
    vcpus: float = 56.0,
    seed: int = 5,
) -> Dict[str, dict]:
    """Appendix C: a vCPU cap too small for every deployment forces
    container churn; anti-thrashing mode suppresses the HTTP storms
    that drive it."""
    tree = generate_tree(DEFAULT_TREE)
    out = {}
    for enabled in (True, False):
        env = Environment()
        handle = build_lambdafs(
            env, tree, vcpus=vcpus, deployments=16, seed=seed,
            client_overrides={
                "antithrash_enabled": enabled,
                "replacement_probability": 0.05,
            },
            faas_overrides={"idle_reclaim_ms": 2_000.0},
        )
        result = run_micro(handle, tree, OpType.READ_FILE, clients,
                           ops_per_client, warmup_per_client=16, seed=seed)
        platform = handle.system.platform
        out["on" if enabled else "off"] = {
            "throughput": result.throughput,
            "cold_starts": platform.cold_starts,
            "evictions": platform.evictions,
        }
    return out


def replacement_probability_sweep(
    probabilities: Sequence[float] = (0.0, 0.001, 0.01, 0.1),
    clients: int = 192,
    ops_per_client: int = 160,
    seed: int = 0,
) -> List[dict]:
    """§3.4 ablation: the HTTP-TCP replacement probability trades
    latency (HTTP fraction) against elasticity (fleet size)."""
    tree = generate_tree(DEFAULT_TREE)
    rows = []
    for probability in probabilities:
        env = Environment()
        handle = build_lambdafs(
            env, tree, seed=seed,
            client_overrides={"replacement_probability": probability},
        )
        result = run_micro(handle, tree, OpType.READ_FILE, clients,
                           ops_per_client, warmup_per_client=32, seed=seed)
        rows.append({
            "probability": probability,
            "throughput": result.throughput,
            "namenodes": handle.active_servers(),
            "avg_latency": handle.metrics.average_latency(),
        })
    return rows


def concurrency_level_sweep(
    levels: Sequence[int] = (1, 2, 4, 8),
    clients: int = 160,
    ops_per_client: int = 96,
    warmup_per_client: int = 24,
    deployments: int = 4,
    seed: int = 0,
) -> List[dict]:
    """Figure 6's coarse-grained knob: per-instance ConcurrencyLevel.

    Small values scale the fleet aggressively (each HTTP invocation
    beyond the limit provisions another instance); large values
    absorb load on fewer instances.
    """
    tree = generate_tree(DEFAULT_TREE)
    rows = []
    for level in levels:
        env = Environment()
        handle = build_lambdafs(
            env, tree, seed=seed, deployments=deployments,
            faas_overrides={"concurrency_level": level},
            client_overrides={"replacement_probability": 0.05},
        )
        result = run_micro(handle, tree, OpType.READ_FILE, clients,
                           ops_per_client, warmup_per_client, seed=seed)
        rows.append({
            "concurrency_level": level,
            "throughput": result.throughput,
            "namenodes": handle.active_servers(),
            "cold_starts": handle.system.platform.cold_starts,
        })
    return rows
