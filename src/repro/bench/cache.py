"""Disk caching for heavy benchmark results.

The Spotify suites take minutes; figures derived from them run in
fresh pytest processes, so results are pickled to disk and reused.
The cache directory defaults to ``benchmarks/results`` but can be
redirected with the ``REPRO_BENCH_CACHE_DIR`` environment variable
(useful for CI scratch space and for keeping checkouts clean).
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Callable, Optional, Union

ENV_VAR = "REPRO_BENCH_CACHE_DIR"

PathLike = Union[str, Path]


def cache_dir(default: Optional[PathLike] = None) -> Path:
    """The benchmark cache directory.

    ``REPRO_BENCH_CACHE_DIR`` wins when set; otherwise ``default``
    (typically the suite's ``benchmarks/results``), otherwise
    ``benchmarks/results`` under the current working directory.
    """
    override = os.environ.get(ENV_VAR)
    if override:
        return Path(override)
    if default is not None:
        return Path(default)
    return Path.cwd() / "benchmarks" / "results"


def disk_cached(
    name: str,
    compute: Callable[[], Any],
    directory: Optional[PathLike] = None,
) -> Any:
    """Return ``compute()``'s value, cached at ``.cache_<name>.pkl``.

    A corrupt or unreadable cache file is discarded and recomputed.
    """
    base = cache_dir(directory)
    base.mkdir(parents=True, exist_ok=True)
    path = base / f".cache_{name}.pkl"
    if path.exists():
        try:
            return pickle.loads(path.read_bytes())
        except Exception:
            path.unlink()
    value = compute()
    path.write_bytes(pickle.dumps(value))
    return value
