"""Experiment drivers: one entry point per paper table/figure.

:mod:`repro.bench.harness` builds comparably configured systems and
runs workloads; :mod:`repro.bench.experiments` exposes
``fig8_spotify``, ``fig11_client_scaling`` … ``table3_subtree_mv``
returning structured results that the ``benchmarks/`` suite prints
as the paper's rows and series.

Experiments run at a documented scale-down (see EXPERIMENTS.md):
client counts and load targets are divided by a constant factor so a
full suite completes in minutes of wall time, while the *systems*
(NDB capacity, FaaS platform, latencies) keep paper-calibrated
constants — so ratios and crossovers are preserved.
"""

from repro.bench.harness import (
    SystemHandle,
    build_cephfs,
    build_hopsfs,
    build_hopsfs_cache,
    build_infinicache,
    build_lambdafs,
    drive,
    run_micro,
)

__all__ = [
    "SystemHandle",
    "build_cephfs",
    "build_hopsfs",
    "build_hopsfs_cache",
    "build_infinicache",
    "build_lambdafs",
    "drive",
    "run_micro",
]
