"""System builders and run helpers shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Generator, List, Optional

from repro.baselines import (
    CephFSCluster,
    CephFSConfig,
    HopsFSCachedCluster,
    HopsFSCluster,
    HopsFSConfig,
    make_infinicache,
)
from repro.core import LambdaFS, LambdaFSConfig, OpType
from repro.faas import FaaSConfig
from repro.metastore import NdbConfig
from repro.metrics import MetricsRecorder
from repro.namespace.treegen import GeneratedTree
from repro.sim import Environment
from repro.telemetry import Telemetry, install_telemetry
from repro.trace import install_tracer
from repro.workloads import MicroBenchmark


@dataclass
class SystemHandle:
    """A built system plus the uniform hooks experiments need."""

    name: str
    env: Environment
    metrics: MetricsRecorder
    make_clients: Callable[[int], List]
    cost_usd: Callable[[float], float]
    """duration_ms -> cumulative $ cost of the run so far."""
    active_servers: Callable[[], int]
    system: object = None
    prewarm: Optional[Callable[[], Generator]] = None
    tracer: Optional[object] = None
    """The :class:`repro.trace.Tracer` when built with ``trace=True``."""
    telemetry: Optional[Telemetry] = None
    """The :class:`repro.telemetry.Telemetry` bundle when built with
    ``telemetry=True``."""
    profiler: Optional[object] = None
    """The :class:`repro.profile.Profiler` when built with
    ``profile=True`` (implies ``trace=True``); call
    ``handle.profiler.analyze()`` after the workload."""


def _maybe_trace(env: Environment, trace: bool):
    """Install the tracing + invariant battery once per environment."""
    if not trace:
        return env.tracer
    if env.tracer is None:
        return install_tracer(env)
    return env.tracer


def _maybe_profile(tracer, profile: bool):
    """Attach a critical-path profiler to an installed tracer.

    Purely read-after-the-fact: the profiler holds a reference to the
    tracer and analyzes its spans on demand, so it cannot perturb the
    run (see :mod:`repro.profile`).
    """
    if not profile:
        return None
    from repro.profile import Profiler

    return Profiler(tracer)


def _maybe_telemetry(
    env: Environment, telemetry: bool, interval_ms: float
) -> Optional[Telemetry]:
    """Install the metrics registry + sampler once per environment.

    Must run *before* the system is built so constructors (store,
    platform, LambdaFS) see ``env.metrics`` and register their gauges.
    """
    if not telemetry:
        return None
    if env.metrics is None:
        return install_telemetry(env, interval_ms=interval_ms)
    return getattr(env.metrics, "bundle", None)


def drive(env: Environment, generator: Generator):
    """Run ``generator`` as a process to completion; return its value."""
    box = {}

    def proc(env):
        box["value"] = yield from generator

    done = env.process(proc(env))
    env.run(until=done)
    return box.get("value")


# -- builders --------------------------------------------------------------

def _lambda_config(
    vcpus: float,
    deployments: int,
    seed: int,
    ndb: Optional[NdbConfig],
    faas_overrides: dict,
    client_overrides: dict,
    namenode_overrides: dict,
    datanode_overrides: dict,
    resilience=None,
) -> LambdaFSConfig:
    base = LambdaFSConfig(num_deployments=deployments, seed=seed)
    faas = replace(base.faas, cluster_vcpus=float(vcpus), **faas_overrides)
    client = replace(base.client, **client_overrides)
    namenode = replace(base.namenode, **namenode_overrides)
    datanodes = replace(base.datanodes, **datanode_overrides)
    config = replace(
        base, faas=faas, client=client, namenode=namenode,
        datanodes=datanodes, resilience=resilience,
    )
    if ndb is not None:
        config = replace(config, ndb=ndb)
    return config


def build_lambdafs(
    env: Environment,
    tree: GeneratedTree,
    vcpus: float = 512.0,
    deployments: int = 16,
    seed: int = 0,
    ndb: Optional[NdbConfig] = None,
    faas_overrides: Optional[dict] = None,
    client_overrides: Optional[dict] = None,
    namenode_overrides: Optional[dict] = None,
    datanode_overrides: Optional[dict] = None,
    name: str = "λFS",
    trace: bool = False,
    telemetry: bool = False,
    telemetry_interval_ms: float = 500.0,
    profile: bool = False,
    resilience=None,
) -> SystemHandle:
    tracer = _maybe_trace(env, trace or profile)
    profiler = _maybe_profile(tracer, profile)
    bundle = _maybe_telemetry(env, telemetry, telemetry_interval_ms)
    config = _lambda_config(
        vcpus, deployments, seed, ndb,
        faas_overrides or {}, client_overrides or {}, namenode_overrides or {},
        datanode_overrides or {}, resilience=resilience,
    )
    # An admin sizes the deployment count to the platform's capacity
    # (n is configurable, §2 Terminology): more deployments than the
    # vCPU budget can host would guarantee container churn.
    fits = max(1, int(config.faas.cluster_vcpus // config.faas.vcpus_per_instance))
    if fits < config.num_deployments:
        config = replace(config, num_deployments=fits)
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    fs.install_namespace(tree.directories, tree.files)
    vms = {}

    def make_clients(count: int) -> List:
        # One VM per 128 clients, as in the paper's 1024-clients/8-VM
        # split.
        vm_count = max(1, count // 128)
        for index in range(vm_count):
            vms.setdefault(index, fs.new_vm())
        return [fs.new_client(vms[i % vm_count]) for i in range(count)]

    return SystemHandle(
        name=name,
        env=env,
        metrics=fs.metrics,
        make_clients=make_clients,
        cost_usd=lambda duration_ms: fs.cost_usd(),
        active_servers=fs.active_namenodes,
        system=fs,
        prewarm=lambda: fs.prewarm(1),
        tracer=tracer,
        telemetry=bundle,
        profiler=profiler,
    )


def build_infinicache(
    env: Environment,
    tree: GeneratedTree,
    vcpus: float = 512.0,
    deployments: int = 16,
    seed: int = 0,
    ndb: Optional[NdbConfig] = None,
    trace: bool = False,
    telemetry: bool = False,
    telemetry_interval_ms: float = 500.0,
    profile: bool = False,
) -> SystemHandle:
    tracer = _maybe_trace(env, trace or profile)
    profiler = _maybe_profile(tracer, profile)
    bundle = _maybe_telemetry(env, telemetry, telemetry_interval_ms)
    # A static fleet is sized to its resources up front: one function
    # per deployment, as many deployments as the vCPU budget fits.
    per_instance = FaaSConfig().vcpus_per_instance
    deployments = max(1, min(deployments, int(vcpus // per_instance)))
    base = LambdaFSConfig(
        num_deployments=deployments,
        seed=seed,
        faas=FaaSConfig(cluster_vcpus=float(vcpus)),
    )
    if ndb is not None:
        base = replace(base, ndb=ndb)
    fs = make_infinicache(env, base, deployments=deployments)
    fs.format()
    fs.start()
    fs.install_namespace(tree.directories, tree.files)
    vms = {}

    def make_clients(count: int) -> List:
        vm_count = max(1, count // 128)
        for index in range(vm_count):
            vms.setdefault(index, fs.new_vm())
        return [fs.new_client(vms[i % vm_count]) for i in range(count)]

    return SystemHandle(
        name="InfiniCache",
        env=env,
        metrics=fs.metrics,
        make_clients=make_clients,
        cost_usd=lambda duration_ms: fs.cost_usd(),
        active_servers=fs.active_namenodes,
        system=fs,
        prewarm=lambda: fs.prewarm(1),
        tracer=tracer,
        telemetry=bundle,
        profiler=profiler,
    )


def _build_hops(
    env: Environment,
    tree: GeneratedTree,
    cached: bool,
    vcpus: float,
    seed: int,
    ndb: Optional[NdbConfig],
    name: str,
    telemetry: bool = False,
    telemetry_interval_ms: float = 500.0,
) -> SystemHandle:
    bundle = _maybe_telemetry(env, telemetry, telemetry_interval_ms)
    namenodes = max(1, int(vcpus // 16))
    config = HopsFSConfig(
        num_namenodes=namenodes,
        vcpus_per_namenode=16,
        seed=seed,
        ndb=ndb if ndb is not None else NdbConfig(),
    )
    cluster_class = HopsFSCachedCluster if cached else HopsFSCluster
    cluster = cluster_class(env, config)
    cluster.format()
    cluster.install_namespace(tree.directories, tree.files)
    return SystemHandle(
        name=name,
        env=env,
        metrics=cluster.metrics,
        make_clients=lambda count: [cluster.new_client() for _ in range(count)],
        cost_usd=lambda duration_ms: cluster.cost_usd(duration_ms),
        active_servers=lambda: len(cluster.namenodes),
        system=cluster,
        telemetry=bundle,
    )


def build_hopsfs(
    env, tree, vcpus: float = 512.0, seed: int = 0, ndb=None,
    telemetry: bool = False,
) -> SystemHandle:
    return _build_hops(env, tree, False, vcpus, seed, ndb, "HopsFS",
                       telemetry=telemetry)


def build_hopsfs_cache(
    env, tree, vcpus: float = 512.0, seed: int = 0, ndb=None,
    name: str = "HopsFS+Cache", telemetry: bool = False,
) -> SystemHandle:
    return _build_hops(env, tree, True, vcpus, seed, ndb, name,
                       telemetry=telemetry)


def build_cephfs(env, tree, vcpus: float = 512.0, seed: int = 0) -> SystemHandle:
    mds_count = max(1, int(vcpus // 64))
    cluster = CephFSCluster(env, CephFSConfig(num_mds=mds_count, seed=seed))
    cluster.install_namespace(tree.directories, tree.files)
    return SystemHandle(
        name="CephFS",
        env=env,
        metrics=cluster.metrics,
        make_clients=lambda count: [cluster.new_client() for _ in range(count)],
        cost_usd=lambda duration_ms: cluster.cost_usd(duration_ms),
        active_servers=lambda: len(cluster.mds),
        system=cluster,
    )


# -- run helpers -------------------------------------------------------------

def run_micro(
    handle: SystemHandle,
    tree: GeneratedTree,
    op: OpType,
    clients: int,
    ops_per_client: int,
    warmup_per_client: int,
    seed: int = 0,
):
    """One microbenchmark point on a built system."""
    client_objects = handle.make_clients(clients)
    if handle.prewarm is not None:
        drive(handle.env, handle.prewarm())
    bench = MicroBenchmark(handle.env, tree, seed=seed)
    return drive(
        handle.env,
        bench.run(client_objects, op, ops_per_client, warmup_per_client),
    )
