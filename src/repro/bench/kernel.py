"""Wall-clock throughput benchmark for the simulation kernel itself.

Every other benchmark in this repository measures *simulated* systems;
this one measures the simulator.  It runs a pure-kernel workload — no
filesystem, no RPC fabric — shaped like the real traffic the kernel
serves: per-client think/send/service/receive timeout chains with a
periodic coordinator-style ``AllOf`` fan-in, at 1k/10k/100k concurrent
client processes.  Each op additionally arms fire-and-forget watchdog
timers (tens of sim-ms out), mirroring how the repository's subsystems
actually load the scheduler: every lock acquire arms a budget timer
(``request | timer`` in :mod:`repro.metastore.locks`), every RPC a
deadline guard — so at scale the *pending* set is dominated by armed
timers, several times larger than the set of runnable clients.  That
pending-set pressure is precisely what separates schedulers: a global
binary heap pays O(log n) cache-cold comparisons on it for every
event, a calendar queue does not.

The timed pass runs with the garbage collector's setup graph frozen
(``gc.freeze``) and a raised gen-0 threshold, restored afterwards.
This is benchmark methodology, applied identically to whichever kernel
is being measured: the workload produces no cyclic garbage, so default
GC heuristics only add full-heap scans whose cost says nothing about
the scheduler under test.

Reported numbers are **wall-clock** events/sec and
ops/sec plus peak memory, so kernel speedups are proven, not claimed:

* ``events`` — kernel events executed (read from the environment's
  step counter when present, cross-checked against the closed-form
  count of the workload; ``verify_count=True`` asserts both against an
  ``on_step`` counting hook);
* ``ops`` — client operations completed (one think+round-trip chain);
* ``rss_max_kb`` — process peak RSS via :mod:`resource` after the run;
* ``py_heap_peak_kb`` — peak Python heap from a separate, *untimed*
  :mod:`tracemalloc` probe at the same concurrency (2 ops/client), i.e.
  the kernel's per-pending-client footprint, measured without slowing
  the timed pass.

``compare_kernel_bench`` implements ``repro profile diff``-style
regression gating: candidate events/sec more than ``threshold`` below
the baseline at any shared scale point fails (exit 1 in the CLI), so
``scripts/smoke.sh`` can gate on the committed ``BENCH_kernel.json``.

The workload itself is fully deterministic (named, seeded RNG streams;
sim behaviour is independent of wall time), so same-seed runs execute
the identical event sequence — only the wall-clock figures vary.
"""

from __future__ import annotations

import contextlib
import gc
import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim import AllOf, Environment, RngStreams, Timeout

#: Mean client think time (sim-ms) between operations.
THINK_MEAN_MS = 8.0
#: Every FANIN_EVERY-th op runs a 3-way AllOf fan-in (coordinator shape).
FANIN_EVERY = 8
FANIN_WIDTH = 3
#: Fire-and-forget watchdog timers armed per op, mirroring the real
#: subsystems' per-op timer load: one deadline guard per RPC hop
#: (three hops per op), one lock-budget timer, one lease-renewal
#: timer, and one client-side op timeout.  They fire later as
#: zero-callback events, so what they exercise is the scheduler, not
#: dispatch.
GUARDS_PER_OP = 6
GUARD_MIN_MS = 20.0
GUARD_MAX_MS = 60.0


@dataclass(frozen=True)
class KernelScale:
    """One benchmark point: ``clients`` concurrent processes."""

    name: str
    clients: int
    ops_per_client: int

    def events_expected(self) -> int:
        """Closed-form kernel event count for this workload shape.

        Per client: one ``Initialize`` plus one process-end event; per
        op four timeouts (think/send/service/receive) plus
        ``GUARDS_PER_OP`` watchdog timers; and — on every
        ``FANIN_EVERY``-th op — ``FANIN_WIDTH`` ack timeouts plus the
        ``AllOf`` condition event itself.
        """
        ops = self.ops_per_client
        fanins = (ops + FANIN_EVERY - 1) // FANIN_EVERY
        per_client = 2 + (4 + GUARDS_PER_OP) * ops + (FANIN_WIDTH + 1) * fanins
        return self.clients * per_client

    def ops_total(self) -> int:
        return self.clients * self.ops_per_client


#: The standard scale ladder.  Ops per client shrink as client counts
#: grow so every point finishes in seconds while the pending-event set
#: (the part that stresses the scheduler) scales with the client count.
SCALES: Dict[str, KernelScale] = {
    scale.name: scale
    for scale in (
        KernelScale("1k", clients=1_000, ops_per_client=48),
        KernelScale("10k", clients=10_000, ops_per_client=12),
        KernelScale("100k", clients=100_000, ops_per_client=6),
    )
}

#: The scale the quick (smoke) gate runs.
QUICK_SCALES = ("10k",)


def _client(env: Environment, think, net, guard, ops: int):
    # Draws use the batched BufferedDraws APIs (one call per op for
    # the guard block, one raw triple per op for the hops) — the bench
    # measures the kernel, not Python call overhead in the workload.
    expovariate = think.expovariate
    net3 = net.random3
    guard2 = guard.uniform2
    guard4 = guard.uniform4
    rate = 1.0 / THINK_MEAN_MS
    for serial in range(ops):
        # Watchdogs armed, never awaited (GUARDS_PER_OP of them).
        g0, g1, g2, g3 = guard4(GUARD_MIN_MS, GUARD_MAX_MS)
        g4, g5 = guard2(GUARD_MIN_MS, GUARD_MAX_MS)
        Timeout(env, g0)
        Timeout(env, g1)
        Timeout(env, g2)
        Timeout(env, g3)
        Timeout(env, g4)
        Timeout(env, g5)
        yield Timeout(env, expovariate(rate))
        r0, r1, r2 = net3()
        yield Timeout(env, 0.25 + 0.30 * r0)         # request one-way
        yield Timeout(env, 0.10 + 0.80 * r1)         # service
        yield Timeout(env, 0.25 + 0.30 * r2)         # response one-way
        if not serial & 7:  # serial % FANIN_EVERY == 0
            # FANIN_WIDTH-way ack fan-in, unrolled.
            a0, a1, a2 = net3()
            yield AllOf(env, [
                Timeout(env, 0.10 + 0.30 * a0),
                Timeout(env, 0.10 + 0.30 * a1),
                Timeout(env, 0.10 + 0.30 * a2),
            ])


@contextlib.contextmanager
def _gc_quiesced():
    """Freeze the setup graph out of GC for the timed pass.

    The bench workload produces no cyclic garbage — everything dies by
    refcount — so collector passes over the (large, live) client graph
    measure the allocator's heuristics, not the kernel.  Freezing the
    already-built environment and raising the gen-0 threshold silences
    that noise; both are restored afterwards.  Applied identically to
    any kernel under measurement, old or new.
    """
    thresholds = gc.get_threshold()
    gc.collect()
    gc.freeze()
    gc.set_threshold(1_000_000, 50, 50)
    try:
        yield
    finally:
        gc.set_threshold(*thresholds)
        gc.unfreeze()
        gc.collect()


class _StepCounter:
    """A minimal ``on_step`` hook for cross-checking event counts."""

    def __init__(self) -> None:
        self.steps = 0

    def on_step(self, when, priority, eid, event) -> None:
        self.steps += 1


def run_kernel_point(
    scale: KernelScale,
    seed: int = 0,
    verify_count: bool = False,
    mem_probe: bool = True,
) -> Dict[str, object]:
    """Run one scale point; returns its result record."""
    expected = scale.events_expected()

    def build() -> Environment:
        env = Environment()
        streams = RngStreams(seed)
        think = streams.buffered("kernel.think", block=1024)
        net = streams.buffered("kernel.net", block=1024)
        guard = streams.buffered("kernel.guard", block=1024)
        for _ in range(scale.clients):
            env.process(_client(env, think, net, guard, scale.ops_per_client))
        return env

    counter = None
    if verify_count:
        env = build()
        counter = _StepCounter()
        env.tracer = counter
        env.run()
        env.tracer = None
        if counter.steps != expected:
            raise AssertionError(
                f"{scale.name}: hook counted {counter.steps} events, "
                f"closed form predicts {expected}"
            )

    env = build()
    with _gc_quiesced():
        start = time.perf_counter()
        env.run()
        wall_s = time.perf_counter() - start

    executed = getattr(env, "steps", None)
    events = executed if executed is not None else expected
    if executed is not None and executed != expected:
        raise AssertionError(
            f"{scale.name}: kernel executed {executed} events, "
            f"closed form predicts {expected}"
        )

    record: Dict[str, object] = {
        "clients": scale.clients,
        "ops_per_client": scale.ops_per_client,
        "events": events,
        "ops": scale.ops_total(),
        "final_sim_ms": env.now,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s if wall_s > 0 else float("inf"),
        "ops_per_sec": scale.ops_total() / wall_s if wall_s > 0 else float("inf"),
        "rss_max_kb": _rss_max_kb(),
    }
    if mem_probe:
        record["py_heap_peak_kb"] = _py_heap_peak_kb(scale, seed)
    return record


def _rss_max_kb() -> Optional[float]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    return peak / 1024.0 if sys.platform == "darwin" else float(peak)


def _py_heap_peak_kb(scale: KernelScale, seed: int) -> float:
    """Peak Python heap at this concurrency (untimed tracemalloc pass)."""
    import tracemalloc

    env = Environment()
    streams = RngStreams(seed)
    think = streams.buffered("kernel.think", block=1024)
    net = streams.buffered("kernel.net", block=1024)
    guard = streams.buffered("kernel.guard", block=1024)
    tracemalloc.start()
    try:
        for _ in range(scale.clients):
            env.process(_client(env, think, net, guard, 2))
        env.run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def run_kernel_bench(
    scales: Iterable[str] = tuple(SCALES),
    seed: int = 0,
    repeats: int = 2,
    verify_count: bool = False,
    mem_probe: bool = True,
) -> Dict[str, object]:
    """Run the requested scale points; best-of-``repeats`` per point."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    unknown = [name for name in scales if name not in SCALES]
    if unknown:
        raise ValueError(f"unknown kernel scale(s): {unknown} "
                         f"(known: {sorted(SCALES)})")
    points: Dict[str, Dict[str, object]] = {}
    for name in scales:
        scale = SCALES[name]
        best: Optional[Dict[str, object]] = None
        heap_kb: Optional[float] = None
        for attempt in range(repeats):
            record = run_kernel_point(
                scale, seed=seed,
                verify_count=verify_count and attempt == 0,
                mem_probe=mem_probe and attempt == 0,
            )
            if attempt == 0:
                heap_kb = record.get("py_heap_peak_kb")
            if best is None or record["wall_s"] < best["wall_s"]:
                best = record
        if heap_kb is not None:
            best["py_heap_peak_kb"] = heap_kb
        points[name] = best
    return {
        "version": 1,
        "seed": seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "points": points,
    }


def save_kernel_bench(result: Dict[str, object], path: str) -> str:
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    return path


def load_kernel_bench(path: str) -> Dict[str, object]:
    with open(path) as fh:
        result = json.load(fh)
    if "points" not in result:
        raise ValueError(f"{path} is not a kernel bench file (no 'points')")
    return result


@dataclass
class KernelDiff:
    """Comparison of two kernel bench results on shared scale points."""

    rows: List[List[object]]
    regressions: List[str]
    threshold: float

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_kernel_bench(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = 0.10,
) -> KernelDiff:
    """Gate ``candidate`` against ``baseline`` on events/sec.

    A shared scale point whose candidate events/sec falls more than
    ``threshold`` (relative) below the baseline is a regression.
    """
    rows: List[List[object]] = []
    regressions: List[str] = []
    base_points = baseline.get("points", {})
    cand_points = candidate.get("points", {})
    for name in cand_points:
        if name not in base_points:
            continue
        base = float(base_points[name]["events_per_sec"])
        cand = float(cand_points[name]["events_per_sec"])
        ratio = cand / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: {cand:,.0f} events/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {base:,.0f}"
            )
        rows.append([
            name, f"{base:,.0f}", f"{cand:,.0f}", f"{ratio:.2f}x", verdict,
        ])
    return KernelDiff(rows=rows, regressions=regressions, threshold=threshold)


def format_kernel_bench(result: Dict[str, object]) -> str:
    from repro.bench.report import tabulate

    rows = []
    for name, point in result["points"].items():
        heap = point.get("py_heap_peak_kb")
        rows.append([
            name,
            point["clients"],
            point["events"],
            f"{point['wall_s']:.3f}",
            f"{point['events_per_sec']:,.0f}",
            f"{point['ops_per_sec']:,.0f}",
            "-" if point.get("rss_max_kb") is None
            else f"{point['rss_max_kb'] / 1024:.0f}",
            "-" if heap is None else f"{heap / 1024:.0f}",
        ])
    return tabulate(
        ["scale", "clients", "events", "wall (s)", "events/s", "ops/s",
         "rss (MB)", "py heap (MB)"],
        rows,
    )


def format_kernel_diff(diff: KernelDiff) -> str:
    from repro.bench.report import tabulate

    table = tabulate(
        ["scale", "baseline ev/s", "candidate ev/s", "ratio", "verdict"],
        diff.rows,
    )
    if diff.ok:
        status = (f"kernel bench: PASS "
                  f"(no point >{diff.threshold * 100:.0f}% below baseline)")
    else:
        status = "kernel bench: FAIL\n" + "\n".join(
            f"  {line}" for line in diff.regressions
        )
    return f"{table}\n{status}"


def quick_scale_names(quick: bool, scales: Optional[Sequence[str]]) -> List[str]:
    """Resolve the CLI's scale selection."""
    if scales:
        return list(scales)
    return list(QUICK_SCALES if quick else SCALES)
