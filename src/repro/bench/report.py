"""Text-table rendering shared by the CLI and the benchmark suite."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def tabulate(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width text table."""
    str_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
