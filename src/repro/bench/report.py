"""Text-table rendering shared by the CLI and the benchmark suite."""

from __future__ import annotations

from typing import Iterable, Sequence


import math


def format_cell(cell) -> str:
    """One table cell as text.

    ``None`` renders as ``-`` (a missing measurement, e.g. a metric
    family a run never touched), non-finite floats by name, and large
    magnitudes — of either sign — with thousands separators.
    """
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if not math.isfinite(cell):
            return str(cell)  # "inf" / "-inf" / "nan"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def tabulate(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width text table.

    Short rows are padded to the header width (missing cells show as
    empty); extra cells beyond the headers are dropped.
    """
    columns = len(headers)
    str_rows = [
        [format_cell(cell) for cell in row[:columns]]
        + [""] * (columns - len(row))
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows
        else len(headers[i])
        for i in range(columns)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)
