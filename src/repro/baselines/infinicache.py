"""An InfiniCache-style FaaS cache baseline (§5.1).

InfiniCache [61] keeps a *static, fixed-size* deployment of cloud
functions and serves I/O via short-lived connections that require a
function **invocation for every operation** — i.e., an approximation
of λFS with no auto-scaling and no long-lived TCP RPC.  The paper
uses it to isolate the contribution of λFS' hybrid RPC + agile
scaling: InfiniCache fails both Spotify workloads because the
high-latency HTTP path and the fixed fleet cannot absorb the load.

We express it as a configuration of the λFS machinery:

* HTTP-TCP replacement probability 1.0 → every RPC is an HTTP
  invocation;
* at most one instance per deployment and eviction disabled → a
  static fleet;
* straggler mitigation and anti-thrashing off (not InfiniCache
  features).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.fs import LambdaFS, LambdaFSConfig
from repro.sim import Environment


def make_infinicache(
    env: Environment,
    base_config: Optional[LambdaFSConfig] = None,
    deployments: int = 16,
) -> LambdaFS:
    """Build an InfiniCache-configured metadata service."""
    base = base_config or LambdaFSConfig()
    faas = replace(
        base.faas,
        max_instances_per_deployment=1,
        allow_eviction=False,
        idle_reclaim_ms=float("inf"),
    )
    client = replace(
        base.client,
        replacement_probability=1.0,
        straggler_enabled=False,
        antithrash_enabled=False,
    )
    config = replace(
        base,
        num_deployments=deployments,
        faas=faas,
        client=client,
    )
    return LambdaFS(env, config)
