"""HopsFS and HopsFS+Cache baselines (§2, §5.1).

Vanilla HopsFS: a statically fixed cluster of *stateless* NameNodes
in front of MySQL NDB.  Statelessness means every metadata operation
— including reads — round-trips to the persistent store, so system
throughput is capped by NDB capacity and the NameNodes behave as
proxies with low CPU utilization (§5.3.2).

HopsFS+Cache: the paper's serverful cache baseline — the same fixed
cluster whose NameNodes carry λFS-style metadata caches, with
clients routing by consistent hashing on the parent directory.  The
fixed fleet cannot scale out, so hot directories bottleneck a single
NameNode (§5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Generator, List, Optional, Tuple

from repro._util import stable_hash
from repro.baselines.common import MetadataServer
from repro.core.errors import FsError
from repro.core.messages import MetadataRequest, MetadataResponse, OpType
from repro.core.operations import NamespaceOps
from repro.metastore import NdbConfig, NdbStore
from repro.metastore.errors import TransactionAborted
from repro.metrics import MetricsRecorder, vm_cost
from repro.namespace.cache import MetadataCache
from repro.namespace.inode import INode, dirent_key, inode_key
from repro.namespace.paths import is_descendant, normalize, parent_of, split
from repro.rpc import LatencyConfig, LatencyModel
from repro.sim import AllOf, Environment, RngStreams


@dataclass(frozen=True)
class HopsFSConfig:
    num_namenodes: int = 32
    vcpus_per_namenode: int = 16
    rpc_handlers: int = 200
    cpu_ms_per_op: float = 2.0
    """Serverful Java NameNodes burn ~2 vCPU-ms per op on the full
    RPC-handler stack (the paper observes they cannot fully utilize
    their resources, idling ~30% even at saturation); λFS' small
    function instances serve the same op in a fraction of that, which
    is where its latency edge over HopsFS+Cache comes from (§5.2.2:
    1.02 ms vs 3.35 ms) and why the cost-normalized H+C cluster fails
    the load bursts."""
    cache_capacity: int = 1_000_000
    subtree_batch_size: int = 512
    subtree_executor_threads: int = 4
    txn_retries: int = 8
    seed: int = 0
    ndb: NdbConfig = field(default_factory=NdbConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)


class HopsFSNameNode(MetadataServer):
    """One stateless HopsFS NameNode."""

    def __init__(self, cluster: "HopsFSCluster") -> None:
        super().__init__(
            cluster.env,
            cluster.config.vcpus_per_namenode,
            cluster.config.rpc_handlers,
            cluster.config.cpu_ms_per_op,
        )
        self.cluster = cluster

    # -- op execution -----------------------------------------------------
    def execute(self, request: MetadataRequest) -> Generator:
        try:
            if request.op.is_write:
                value = yield from self._execute_write(request)
                hit = False
            else:
                value, hit = yield from self._execute_read(request)
            return MetadataResponse(
                request_id=request.request_id, ok=True, value=value,
                served_by=self.id, cache_hit=hit,
            )
        except (FsError, TransactionAborted) as exc:
            return MetadataResponse(
                request_id=request.request_id, ok=False,
                error=f"{type(exc).__name__}: {exc}", served_by=self.id,
            )

    def _known(self, path: str) -> Dict[str, INode]:
        """Stateless NameNodes know nothing between requests."""
        return {}

    def _execute_read(self, request: MetadataRequest) -> Generator:
        ops = self.cluster.ops
        path = normalize(request.path)
        known = self._known(path)
        if request.op is OpType.LS:

            def body(txn):
                return ops.ls(txn, path, known)

            resolved, names = yield from self.cluster.store.run_transaction(
                body, retries=self.cluster.config.txn_retries
            )
            self._after_read(resolved)
            return names, False
        resolved = yield from self.cluster.store.run_transaction(
            lambda txn: ops.resolve(txn, path, known),
            retries=self.cluster.config.txn_retries,
        )
        self._after_read(resolved)
        return resolved[path], False

    def _after_read(self, resolved: Dict[str, INode]) -> None:
        """Hook for the cached variant."""

    def _execute_write(self, request: MetadataRequest) -> Generator:
        if request.op.is_subtree_capable and (
            yield from self._is_directory(request.path)
        ) and (request.op is OpType.MV or request.recursive):
            return (yield from self._subtree_op(request))

        ops = self.cluster.ops
        env = self.env
        attempt = 0
        while True:
            txn = self.cluster.store.begin(label=request.op.value)
            try:
                path = normalize(request.path)
                known = self._known(path)
                if request.op is OpType.CREATE_FILE:
                    inode, resolved = yield from ops.create_file(txn, path, known)
                    new_entries, removed, value = {path: inode}, [], inode
                elif request.op is OpType.MKDIRS:
                    target, resolved, created = yield from ops.mkdirs(txn, path, known)
                    new_entries = {p: i for p, i in resolved.items() if i in created}
                    removed, value = [], target
                elif request.op is OpType.DELETE:
                    target, resolved = yield from ops.delete_single(txn, path, known)
                    new_entries, removed, value = {}, [path], True
                elif request.op is OpType.MV:
                    dst = normalize(request.dst_path)
                    moved, resolved = yield from ops.mv_single(txn, path, dst, known)
                    new_entries, removed, value = {dst: moved}, [path], moved
                elif request.op is OpType.SET_PERMISSION:
                    updated, resolved = yield from ops.set_permission(
                        txn, path, request.payload, known
                    )
                    new_entries, removed, value = {path: updated}, [], updated
                else:  # pragma: no cover
                    raise FsError(f"unhandled write op {request.op}")
                yield from self._before_commit(request, new_entries, removed)
                yield from txn.commit()
                self._after_write(resolved, new_entries, removed)
                return value
            except TransactionAborted:
                txn.abort()
                attempt += 1
                if attempt > self.cluster.config.txn_retries:
                    raise FsError(f"{request.op.value} kept aborting")
                yield env.timeout(2.0 * (2 ** min(attempt, 6)))
            except BaseException:
                txn.abort()  # release locks on application errors
                raise

    def _before_commit(self, request, new_entries, removed) -> Generator:
        """Hook for the cached variant (peer invalidation)."""
        return
        yield  # pragma: no cover

    def _after_write(self, resolved, new_entries, removed) -> None:
        """Hook for the cached variant."""

    def _is_directory(self, path: str) -> Generator:
        try:
            resolved = yield from self.cluster.store.run_transaction(
                lambda txn: self.cluster.ops.resolve(txn, normalize(path))
            )
        except FsError:
            return False
        return resolved[normalize(path)].is_dir

    # -- subtree protocol (vanilla HopsFS, Appendix D baseline) ----------------
    def _subtree_op(self, request: MetadataRequest) -> Generator:
        """The three-phase HopsFS subtree protocol, executed locally."""
        store = self.cluster.store
        ops = self.cluster.ops
        root_path = normalize(request.path)

        def take_flag(txn):
            resolved = yield from ops.resolve(txn, root_path)
            root = resolved[root_path]
            if not root.is_dir:
                raise FsError(f"{root_path!r} is not a directory")
            flag = yield from txn.read(("st_lock", root.id))
            if flag:
                raise TransactionAborted("subtree op already active")
            yield from txn.write(("st_lock", root.id), True)
            return root

        root = yield from store.run_transaction(take_flag)
        try:
            collected = yield from store.run_transaction(
                lambda txn: ops.collect_subtree(txn, root_path)
            )
            descendants = [(p, i) for p, i in collected if p != root_path]
            if request.op is OpType.DELETE:
                actions = [
                    ("delete_inode", inode.id, inode.parent_id, split(path)[1])
                    for path, inode in descendants
                ]
            else:
                actions = [("touch_inode", inode.id) for _path, inode in descendants]
            yield from self._run_batches(actions)
            value = yield from self._apply_subtree_root(request, root_path, root)
            self._after_subtree(root_path)
            return value
        finally:
            yield from store.run_transaction(
                lambda txn: txn.delete(("st_lock", root.id))
            )

    def _run_batches(self, actions: List[Tuple]) -> Generator:
        """Phase 3: batched sub-operations on this NameNode.

        The orchestrating NameNode runs batches through a fixed-size
        executor pool (Appendix D: in-parallel *on the NameNode*), so
        its parallelism is bounded — the limitation λFS' serverless
        offloading removes.
        """
        if not actions:
            return
        size = self.cluster.config.subtree_batch_size
        window = self.cluster.config.subtree_executor_threads
        batches = [actions[i : i + size] for i in range(0, len(actions), size)]
        for start in range(0, len(batches), window):
            jobs = [
                self.env.process(self._exec_batch(batch))
                for batch in batches[start : start + window]
            ]
            yield AllOf(self.env, jobs)

    def _exec_batch(self, actions: List[Tuple]) -> Generator:
        yield from self.compute(0.2 + 0.05 * len(actions))

        def body(txn):
            for action in actions:
                if action[0] == "delete_inode":
                    _, target_id, parent_id, name = action
                    yield from txn.delete(dirent_key(parent_id, name))
                    yield from txn.delete(inode_key(target_id))
                else:
                    _, target_id = action
                    inode = txn._visible(inode_key(target_id))
                    if inode is not None:
                        yield from txn.write(inode_key(target_id), inode)
            return len(actions)

        return (yield from self.cluster.store.run_transaction(body))

    def _apply_subtree_root(self, request, root_path: str, root: INode) -> Generator:
        def body(txn):
            if request.op is OpType.DELETE:
                parent_path, name = split(root_path)
                resolved = yield from self.cluster.ops.resolve(txn, parent_path)
                parent = resolved[parent_path]
                yield from txn.delete(dirent_key(parent.id, name))
                yield from txn.delete(inode_key(root.id))
                return True
            moved, _ = yield from self.cluster.ops.mv_single(
                txn, root_path, normalize(request.dst_path)
            )
            return moved

        return (yield from self.cluster.store.run_transaction(body))

    def _after_subtree(self, root_path: str) -> None:
        """Hook for the cached variant."""


class HopsFSCachedNameNode(HopsFSNameNode):
    """A HopsFS NameNode with a λFS-style metadata cache."""

    def __init__(self, cluster: "HopsFSCluster") -> None:
        super().__init__(cluster)
        self.cache = MetadataCache(capacity=cluster.config.cache_capacity)
        self.cache.put("/", INode.root())
        self._listing_cache: Dict[str, List[str]] = {}

    def _known(self, path: str) -> Dict[str, INode]:
        return self.cache.get_path_prefix(path)

    # -- cached read fast path --------------------------------------------------
    def _execute_read(self, request: MetadataRequest) -> Generator:
        from repro.core.namenode import LambdaNameNode

        path = normalize(request.path)
        known = self.cache.get_path_prefix(path)
        full = LambdaNameNode._full_chain(path, known)
        if request.op is OpType.LS:
            listing = self._listing_cache.get(path)
            if listing is not None and full:
                self.cache.stats.record_lookup(hit=True)
                self.cluster.ops.check_traversal(path, known)
                self.cluster.ops.check_readable(path, known[path])
                return list(listing), True
            self.cache.stats.record_lookup(hit=False)
            resolved, names = yield from self.cluster.store.run_transaction(
                lambda txn: self.cluster.ops.ls(txn, path, known),
                retries=self.cluster.config.txn_retries,
            )
            self._after_read(resolved)
            if resolved[path].is_dir:
                self._listing_cache[path] = list(names)
            return names, False
        if full:
            self.cache.stats.record_lookup(hit=True)
            self.cluster.ops.check_traversal(path, known)
            self.cluster.ops.check_readable(path, known[path])
            return known[path], True
        self.cache.stats.record_lookup(hit=False)
        resolved = yield from self.cluster.store.run_transaction(
            lambda txn: self.cluster.ops.resolve(txn, path, known),
            retries=self.cluster.config.txn_retries,
        )
        self._after_read(resolved)
        return resolved[path], False

    def _after_read(self, resolved: Dict[str, INode]) -> None:
        for path, inode in resolved.items():
            self.cache.put(path, inode)

    # -- invalidation among the fixed fleet ---------------------------------------
    def _before_commit(self, request, new_entries, removed) -> Generator:
        affected = set(new_entries) | set(removed)
        affected.add(parent_of(normalize(request.path)))
        if request.dst_path:
            affected.add(parent_of(normalize(request.dst_path)))
        broadcast = request.op is OpType.SET_PERMISSION and any(
            inode.is_dir for inode in new_entries.values()
        )
        yield from self.cluster.invalidate_peers(self, affected, broadcast)

    def _after_write(self, resolved, new_entries, removed) -> None:
        for path in removed:
            self.cache.invalidate(path)
            self._listing_cache.pop(path, None)
            self._drop_parent_listing(path)
        for path, inode in resolved.items():
            if path not in removed:
                self.cache.put(path, inode)
        for path in new_entries:
            self._drop_parent_listing(path)

    def _after_subtree(self, root_path: str) -> None:
        self.cluster.invalidate_peers_prefix(root_path)

    def invalidate_paths(self, paths) -> None:
        for path in paths:
            self.cache.invalidate(path)
            self._listing_cache.pop(path, None)
            self._drop_parent_listing(path)

    def invalidate_prefix(self, prefix: str) -> None:
        self.cache.invalidate_prefix(prefix)
        for cached in list(self._listing_cache):
            if is_descendant(cached, prefix):
                del self._listing_cache[cached]
        self._drop_parent_listing(prefix)

    def _drop_parent_listing(self, path: str) -> None:
        if normalize(path) != "/":
            self._listing_cache.pop(parent_of(path), None)


class HopsFSCluster:
    """Vanilla HopsFS: fixed stateless NameNodes + NDB."""

    namenode_class = HopsFSNameNode

    def __init__(self, env: Environment, config: Optional[HopsFSConfig] = None) -> None:
        self.env = env
        self.config = config or HopsFSConfig()
        self.rngs = RngStreams(self.config.seed)
        self.latency = LatencyModel(self.rngs.stream("latency"), self.config.latency)
        self.store = NdbStore(env, self.config.ndb)
        self.ops = NamespaceOps(self.store)
        self.namenodes: List[HopsFSNameNode] = [
            self.namenode_class(self) for _ in range(self.config.num_namenodes)
        ]
        self.metrics = MetricsRecorder()
        if any(hasattr(nn, "cache") for nn in self.namenodes):
            self.metrics.attach_cache_stats(self.aggregate_cache_stats)
        self._invalidation_latency_ms = 0.4

    def aggregate_cache_stats(self):
        """Cluster-wide CacheStats rollup (cached variant only)."""
        from repro.namespace.cache import CacheStats

        return CacheStats.aggregate(
            namenode.cache.stats
            for namenode in self.namenodes
            if hasattr(namenode, "cache")
        )

    # -- lifecycle --------------------------------------------------------
    def format(self) -> None:
        self.ops.format()

    def install_namespace(self, directories: List[str], files: List[str]) -> None:
        self.ops.install_paths(directories, files)

    def new_client(self) -> "HopsFSClient":
        return HopsFSClient(self)

    # -- routing -----------------------------------------------------------
    def pick_namenode(self, path: str, rng) -> HopsFSNameNode:
        """Vanilla HopsFS load-balances requests across NameNodes."""
        return self.namenodes[rng.randrange(len(self.namenodes))]

    # -- cost ----------------------------------------------------------------
    def total_vcpus(self) -> float:
        return self.config.num_namenodes * self.config.vcpus_per_namenode

    def cost_usd(self, duration_ms: float) -> float:
        return vm_cost(self.total_vcpus(), duration_ms)

    # -- peer invalidation (cached variant) -----------------------------------
    def owner_of(self, path: str) -> HopsFSNameNode:
        anchor = "/" if normalize(path) == "/" else parent_of(normalize(path))
        return self.namenodes[stable_hash(anchor) % len(self.namenodes)]

    def invalidate_peers(
        self, leader: HopsFSNameNode, paths, broadcast: bool = False
    ) -> Generator:
        """Synchronously invalidate every peer cache before commit."""
        targets: Dict[HopsFSNameNode, List[str]] = {}
        if broadcast:
            for namenode in self.namenodes:
                targets[namenode] = list(paths)
        else:
            for path in paths:
                owner = self.owner_of(path)
                targets.setdefault(owner, []).append(path)
        others = [t for t in targets if t is not leader]
        if others:
            yield self.env.timeout(self._invalidation_latency_ms)
            for peer in others:
                if isinstance(peer, HopsFSCachedNameNode):
                    peer.invalidate_paths(targets[peer])
        if leader in targets and isinstance(leader, HopsFSCachedNameNode):
            leader.invalidate_paths(targets[leader])

    def invalidate_peers_prefix(self, prefix: str) -> None:
        for namenode in self.namenodes:
            if isinstance(namenode, HopsFSCachedNameNode):
                namenode.invalidate_prefix(prefix)


class HopsFSCachedCluster(HopsFSCluster):
    """HopsFS+Cache: cached NameNodes, consistent-hash routing."""

    namenode_class = HopsFSCachedNameNode

    def pick_namenode(self, path: str, rng) -> HopsFSNameNode:
        # Consistent hashing on the parent directory: cache-friendly
        # but hot directories all land on one fixed NameNode.
        return self.owner_of(path)


class HopsFSClient:
    """A HopsFS client: TCP RPCs against the fixed NameNode fleet."""

    _ids = count(1)

    def __init__(self, cluster: HopsFSCluster) -> None:
        self.cluster = cluster
        self.id = f"hops-client{next(self._ids)}"
        self._rng = cluster.rngs.stream(f"client:{self.id}")

    def execute(
        self,
        op: OpType,
        path: str,
        dst_path: Optional[str] = None,
        recursive: bool = False,
        payload=None,
    ) -> Generator:
        env = self.cluster.env
        start = env.now
        request = MetadataRequest(
            op=op, path=path, dst_path=dst_path, recursive=recursive,
            client_id=self.id, payload=payload,
        )
        namenode = self.cluster.pick_namenode(path, self._rng)
        yield env.timeout(self.cluster.latency.tcp_oneway())
        response = yield from namenode.serve(lambda: namenode.execute(request))
        yield env.timeout(self.cluster.latency.tcp_oneway())
        self.cluster.metrics.record(
            op=op.value, start_ms=start, end_ms=env.now,
            ok=response.ok, via="tcp", cache_hit=response.cache_hit,
        )
        return response

    # Convenience wrappers mirroring the λFS client API.
    def create_file(self, path):
        return (yield from self.execute(OpType.CREATE_FILE, path))

    def mkdirs(self, path):
        return (yield from self.execute(OpType.MKDIRS, path))

    def read_file(self, path):
        return (yield from self.execute(OpType.READ_FILE, path))

    def stat(self, path):
        return (yield from self.execute(OpType.STAT, path))

    def ls(self, path):
        return (yield from self.execute(OpType.LS, path))

    def delete(self, path, recursive=False):
        return (yield from self.execute(OpType.DELETE, path, recursive=recursive))

    def mv(self, src, dst):
        return (yield from self.execute(OpType.MV, src, dst_path=dst))

    def set_permission(self, path, mode):
        return (yield from self.execute(OpType.SET_PERMISSION, path, payload=mode))
