"""Shared machinery for serverful metadata-server baselines."""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Generator

from repro.sim import Environment, Resource


class MetadataServer:
    """One serverful metadata server (a VM-hosted Java process).

    CPU is a slot pool sized by vCPUs; ``rpc_handlers`` caps how many
    requests are concurrently in flight (HopsFS NameNodes run 200
    handler threads).  Excess requests queue at the handler pool, so
    overload shows up as latency, exactly like a saturated server.
    """

    _ids = count(1)

    def __init__(
        self,
        env: Environment,
        vcpus: int,
        rpc_handlers: int,
        cpu_ms_per_op: float,
    ) -> None:
        self.env = env
        self.id = f"mds{next(self._ids)}"
        self.cpu = Resource(env, capacity=max(1, int(vcpus)))
        self.handlers = Resource(env, capacity=rpc_handlers)
        self.cpu_ms_per_op = cpu_ms_per_op
        self.requests_served = 0
        self.busy_cpu_ms = 0.0

    def serve(self, body: Callable[[], Generator]) -> Generator:
        """Admit one request: handler slot, base CPU, then ``body``."""
        with self.handlers.request() as handler:
            yield handler
            yield from self.compute(self.cpu_ms_per_op)
            result = yield from body()
            self.requests_served += 1
            return result

    def compute(self, cpu_ms: float) -> Generator:
        if cpu_ms <= 0:
            return
        with self.cpu.request() as slot:
            yield slot
            self.busy_cpu_ms += cpu_ms
            yield self.env.timeout(cpu_ms)


class ServerfulRpc:
    """Client-side TCP RPC to a serverful server (fixed addresses)."""

    def __init__(self, env: Environment, latency_model: Any) -> None:
        self.env = env
        self.latency = latency_model

    def call(self, server: MetadataServer, body: Callable[[], Generator]) -> Generator:
        yield self.env.timeout(self.latency.tcp_oneway())
        result = yield from server.serve(body)
        yield self.env.timeout(self.latency.tcp_oneway())
        return result
