"""IndexFS on BeeGFS, and λIndexFS — the λFS port of it (§4, §5.7).

Vanilla IndexFS is a scaled-out MDS middleware co-located with the
DFS client VMs; it packs metadata into LevelDB SSTables.  Following
§4, the port (a) decouples in-memory metadata handling from LevelDB
by moving it into serverless functions, keeping LevelDB only as the
persistent metadata store, and (b) replaces the GIGA+ partitioning
with hashing directories across LevelDB instances by directory name.

The Figure 16 experiment drives both with IndexFS' ``tree-test``
benchmark: ``mknod`` writes followed by random ``getattr`` reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Generator, List, Optional, Tuple

from repro._util import stable_hash
from repro.baselines.common import MetadataServer
from repro.coordination import make_coordinator
from repro.core.errors import AlreadyExistsError, NotFoundError
from repro.faas import FaaSConfig, FaaSPlatform
from repro.metastore import SSTableConfig, SSTableStore
from repro.metrics import MetricsRecorder
from repro.namespace.paths import normalize, parent_of, split
from repro.rpc import ClientVM, LatencyConfig, LatencyModel
from repro.sim import Environment, RngStreams


def _meta_key(path: str) -> Tuple[str, str, str]:
    path = normalize(path)
    directory, name = split(path)
    return ("meta", directory, name)


@dataclass(frozen=True)
class IndexFSConfig:
    num_servers: int = 4
    """IndexFS servers co-located with the BeeGFS client VMs."""
    vcpus_per_server: int = 8
    rpc_handlers: int = 64
    cpu_ms_per_op: float = 1.20
    """Vanilla IndexFS couples in-memory metadata handling with
    LevelDB/SSTable management and GIGA+ splitting on the server;
    the λFS port moves that logic into lean serverless functions
    (§4), which is why its per-op CPU is lower."""
    tcp_oneway_ms: float = 0.30
    seed: int = 0
    sstable: SSTableConfig = field(default_factory=SSTableConfig)


class _IndexFSServer(MetadataServer):
    """One IndexFS server with its LevelDB instance."""

    def __init__(self, env: Environment, config: IndexFSConfig) -> None:
        super().__init__(
            env, config.vcpus_per_server, config.rpc_handlers, config.cpu_ms_per_op
        )
        self.db = SSTableStore(env, config.sstable)


class IndexFSCluster:
    """Vanilla IndexFS: fixed servers, LevelDB-resident metadata."""

    def __init__(self, env: Environment, config: Optional[IndexFSConfig] = None) -> None:
        self.env = env
        self.config = config or IndexFSConfig()
        self.rngs = RngStreams(self.config.seed)
        self.servers: List[_IndexFSServer] = [
            _IndexFSServer(env, self.config) for _ in range(self.config.num_servers)
        ]
        self.metrics = MetricsRecorder()

    def server_for(self, path: str) -> _IndexFSServer:
        directory = parent_of(normalize(path))
        return self.servers[stable_hash(directory) % len(self.servers)]

    def install_namespace(self, files: List[str]) -> None:
        by_server: Dict[_IndexFSServer, Dict] = {}
        for path in files:
            server = self.server_for(path)
            by_server.setdefault(server, {})[_meta_key(path)] = {"path": path}
        for server, rows in by_server.items():
            server.db.load_bulk(rows)

    def new_client(self) -> "IndexFSClient":
        return IndexFSClient(self)


class IndexFSClient:
    """tree-test style client: mknod writes, getattr reads."""

    _ids = count(1)

    def __init__(self, cluster: IndexFSCluster) -> None:
        self.cluster = cluster
        self.id = f"ifs-client{next(self._ids)}"

    def _call(self, path: str, body) -> Generator:
        env = self.cluster.env
        server = self.cluster.server_for(path)
        yield env.timeout(self.cluster.config.tcp_oneway_ms)
        result = yield from server.serve(lambda: body(server))
        yield env.timeout(self.cluster.config.tcp_oneway_ms)
        return result

    def mknod(self, path: str) -> Generator:
        start = self.cluster.env.now

        def body(server):
            existing = yield from server.db.get(_meta_key(path))
            if existing is not None:
                raise AlreadyExistsError(path)
            yield from server.db.put(_meta_key(path), {"path": path})
            return True

        try:
            result = yield from self._call(path, body)
            ok = True
        except AlreadyExistsError:
            result, ok = False, False
        self.cluster.metrics.record(
            op="mknod", start_ms=start, end_ms=self.cluster.env.now, ok=ok,
        )
        return result

    def getattr(self, path: str) -> Generator:
        start = self.cluster.env.now

        def body(server):
            row = yield from server.db.get(_meta_key(path))
            if row is None:
                raise NotFoundError(path)
            return row

        try:
            result = yield from self._call(path, body)
            ok = True
        except NotFoundError:
            result, ok = None, False
        self.cluster.metrics.record(
            op="getattr", start_ms=start, end_ms=self.cluster.env.now, ok=ok,
        )
        return result


# ---------------------------------------------------------------------------
# λIndexFS: the port of λFS onto IndexFS (§4, Figure 7b).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LambdaIndexFSConfig:
    num_deployments: int = 8
    num_leveldb_partitions: int = 4
    """One LevelDB instance per BeeGFS client VM (§5.7)."""
    cpu_ms_per_op: float = 0.25
    replacement_probability: float = 0.01
    seed: int = 0
    faas: FaaSConfig = field(default_factory=lambda: FaaSConfig(
        cluster_vcpus=64.0,
        vcpus_per_instance=4.0,
        concurrency_level=2,
    ))
    sstable: SSTableConfig = field(default_factory=SSTableConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)


class _LambdaIndexFSFunction:
    """The serverless function: in-memory metadata over LevelDB."""

    def __init__(self, instance, system: "LambdaIndexFS") -> None:
        self.instance = instance
        self.system = system
        self.cache: Dict[Tuple, dict] = {}

    @property
    def member_id(self) -> str:
        return self.instance.id

    @property
    def deployment_name(self) -> str:
        return self.instance.deployment_name

    def on_start(self):
        self.system.coordinator.register(
            self.deployment_name, self.member_id, self._on_invalidation
        )
        return None

    def on_terminate(self) -> None:
        self.system.coordinator.deregister(self.deployment_name, self.member_id)

    def _on_invalidation(self, inv) -> None:
        for path in inv.paths:
            self.cache.pop(_meta_key(path), None)

    def handle(self, request, via) -> Generator:
        kind, path = request
        yield from self.instance.compute(self.system.config.cpu_ms_per_op)
        key = _meta_key(path)
        db = self.system.db_for(path)
        if kind == "getattr":
            row = self.cache.get(key)
            if row is not None:
                return ("ok", row, True)
            row = yield from db.get(key)
            if row is None:
                return ("err", "NotFound", False)
            self.cache[key] = row
            return ("ok", row, False)
        # mknod: coherence first (peers drop the entry), then persist.
        existing = self.cache.get(key)
        if existing is None:
            existing = yield from db.get(key)
        if existing is not None:
            return ("err", "AlreadyExists", False)
        yield from self.system.coordinator.invalidate(
            self.deployment_name, paths=[path], exclude=[self.member_id]
        )
        row = {"path": path}
        yield from db.put(key, row)
        self.cache[key] = row
        return ("ok", True, False)


class LambdaIndexFS:
    """λIndexFS: serverless metadata functions over LevelDB."""

    def __init__(self, env: Environment, config: Optional[LambdaIndexFSConfig] = None) -> None:
        self.env = env
        self.config = config or LambdaIndexFSConfig()
        self.rngs = RngStreams(self.config.seed)
        self.latency = LatencyModel(self.rngs.stream("latency"), self.config.latency)
        self.coordinator = make_coordinator(env)
        self.platform = FaaSPlatform(env, self.config.faas, rng=self.rngs.stream("faas"))
        self.dbs: List[SSTableStore] = [
            SSTableStore(env, self.config.sstable)
            for _ in range(self.config.num_leveldb_partitions)
        ]
        self.metrics = MetricsRecorder()
        self._deployments = [
            f"IndexNN{index}" for index in range(self.config.num_deployments)
        ]
        for name in self._deployments:
            self.platform.register_deployment(
                name, lambda instance: _LambdaIndexFSFunction(instance, self)
            )

    def start(self) -> None:
        self.platform.start()

    def prewarm(self, instances_per_deployment: int = 2):
        """Provision and await warm function instances (generator)."""
        from repro.sim import AllOf

        started = []
        for name in self._deployments:
            deployment = self.platform.deployments[name]
            for _ in range(instances_per_deployment):
                if self.platform.can_provision(deployment):
                    started.append(self.platform.provision(deployment).started)
        if started:
            yield AllOf(self.env, started)

    def deployment_for(self, path: str) -> str:
        directory = parent_of(normalize(path))
        return self._deployments[stable_hash(directory) % len(self._deployments)]

    def db_for(self, path: str) -> SSTableStore:
        directory = parent_of(normalize(path))
        return self.dbs[stable_hash(directory) % len(self.dbs)]

    def install_namespace(self, files: List[str]) -> None:
        by_db: Dict[int, Dict] = {}
        for path in files:
            index = stable_hash(parent_of(normalize(path))) % len(self.dbs)
            by_db.setdefault(index, {})[_meta_key(path)] = {"path": path}
        for index, rows in by_db.items():
            self.dbs[index].load_bulk(rows)

    def new_vm(self) -> ClientVM:
        return ClientVM(self.env, self.latency)

    def new_client(self, vm: Optional[ClientVM] = None) -> "LambdaIndexFSClient":
        return LambdaIndexFSClient(self, vm if vm is not None else self.new_vm())


class LambdaIndexFSClient:
    """λIndexFS client: the λFS hybrid RPC pattern."""

    _ids = count(1)

    def __init__(self, system: LambdaIndexFS, vm: ClientVM) -> None:
        self.system = system
        self.vm = vm
        self.server = vm.assign_server()
        self.id = f"lifs-client{next(self._ids)}"
        self._rng = system.rngs.stream(f"client:{self.id}")

    def _submit(self, kind: str, path: str) -> Generator:
        env = self.system.env
        deployment = self.system.deployment_for(path)
        request = (kind, path)
        for _attempt in range(8):
            connection = yield from self.vm.find_shared(deployment, self.server)
            use_tcp = connection is not None and (
                self._rng.random() >= self.system.config.replacement_probability
            )
            try:
                if use_tcp:
                    return (yield from connection.call(request))
                latency = self.system.latency
                yield env.timeout(latency.http_oneway() + latency.gateway())
                result, instance = yield from self.system.platform.invoke(
                    deployment, request
                )
                self.server.connect_from(instance)
                yield env.timeout(latency.http_oneway())
                return result
            except Exception:  # noqa: BLE001 - dropped conn / dead instance
                yield env.timeout(5.0)
        raise RuntimeError(f"{kind} on {path!r} kept failing")

    def mknod(self, path: str) -> Generator:
        start = self.system.env.now
        status, value, hit = yield from self._submit("mknod", path)
        self.system.metrics.record(
            op="mknod", start_ms=start, end_ms=self.system.env.now,
            ok=status == "ok", cache_hit=hit,
        )
        return status == "ok"

    def getattr(self, path: str) -> Generator:
        start = self.system.env.now
        status, value, hit = yield from self._submit("getattr", path)
        self.system.metrics.record(
            op="getattr", start_ms=start, end_ms=self.system.env.now,
            ok=status == "ok", cache_hit=hit,
        )
        return value if status == "ok" else None
