"""A CephFS-flavoured MDS baseline (§5.1, §5.3).

CephFS keeps metadata in MDS memory (backed by RADOS) and hands out
*capabilities* that make write handling cheaper than the lock-heavy
permission system of HopsFS/λFS (§5.3.1).  Its MDS daemons are,
however, effectively single-threaded dispatchers in a statically
fixed cluster, so aggregate throughput plateaus once the dispatch
pipelines saturate — which is exactly the paper's observed shape:
CephFS wins reads at small client counts (lowest per-op latency) and
stops scaling beyond ~2^7 clients.

The namespace here is an in-memory tree ("MDS RAM"); journaled
writes contend on a shared journal resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, Generator, List, Optional, Set

from repro._util import stable_hash
from repro.core.errors import (
    AlreadyExistsError,
    FsError,
    NotADirectoryError,
    NotDirEmptyError,
    NotFoundError,
)
from repro.core.messages import MetadataRequest, MetadataResponse, OpType
from repro.metrics import MetricsRecorder, vm_cost
from repro.namespace.inode import INode, ROOT_INODE_ID
from repro.namespace.paths import is_descendant, normalize, parent_of, split
from repro.sim import Environment, Resource, RngStreams


@dataclass(frozen=True)
class CephFSConfig:
    num_mds: int = 8
    vcpus_per_mds: int = 16
    dispatch_threads: int = 1
    """Ceph's MDS is effectively a single-threaded dispatcher."""
    dispatch_ms: float = 0.04
    cpu_ms_read: float = 0.10
    cpu_ms_write: float = 0.18
    journal_workers: int = 8
    journal_service_ms: float = 0.20
    tcp_oneway_ms: float = 0.22
    seed: int = 0


class _CephMDS:
    """One MDS daemon."""

    _ids = count(1)

    def __init__(self, env: Environment, config: CephFSConfig) -> None:
        self.env = env
        self.id = f"ceph-mds{next(self._ids)}"
        self.dispatch = Resource(env, capacity=config.dispatch_threads)
        self.cpu = Resource(env, capacity=max(1, config.vcpus_per_mds))
        self.config = config
        self.requests_served = 0

    def admit(self, cpu_ms: float) -> Generator:
        with self.dispatch.request() as slot:
            yield slot
            yield self.env.timeout(self.config.dispatch_ms)
        with self.cpu.request() as core:
            yield core
            yield self.env.timeout(cpu_ms)
        self.requests_served += 1


class CephFSCluster:
    """A fixed cluster of CephFS MDS daemons."""

    def __init__(self, env: Environment, config: Optional[CephFSConfig] = None) -> None:
        self.env = env
        self.config = config or CephFSConfig()
        self.rngs = RngStreams(self.config.seed)
        self.mds: List[_CephMDS] = [
            _CephMDS(env, self.config) for _ in range(self.config.num_mds)
        ]
        self.journal = Resource(env, capacity=self.config.journal_workers)
        self.metrics = MetricsRecorder()
        self._inodes: Dict[str, INode] = {}
        self._children: Dict[str, Set[str]] = {}
        self._next_id = ROOT_INODE_ID + 1
        self.format()

    # -- namespace state (MDS memory) -----------------------------------
    def format(self) -> None:
        self._inodes = {"/": INode.root()}
        self._children = {"/": set()}

    def install_namespace(self, directories: List[str], files: List[str]) -> None:
        for directory in directories:
            self._install(directory, is_dir=True)
        for file_path in files:
            self._install(file_path, is_dir=False)

    def _install(self, path: str, is_dir: bool) -> None:
        path = normalize(path)
        if path in self._inodes:
            return
        parent_path = parent_of(path)
        if parent_path not in self._inodes:
            self._install(parent_path, is_dir=True)
        _, name = split(path)
        inode = INode(
            id=self._alloc(), parent_id=self._inodes[parent_path].id,
            name=name, is_dir=is_dir,
        )
        self._inodes[path] = inode
        self._children[parent_path].add(name)
        if is_dir:
            self._children[path] = set()

    def _alloc(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    # -- routing: dynamic subtree partitioning approximation ----------------
    def mds_for(self, path: str) -> _CephMDS:
        anchor = "/" if normalize(path) == "/" else parent_of(normalize(path))
        return self.mds[stable_hash(anchor) % len(self.mds)]

    def new_client(self) -> "CephFSClient":
        return CephFSClient(self)

    def total_vcpus(self) -> float:
        return self.config.num_mds * self.config.vcpus_per_mds

    def cost_usd(self, duration_ms: float) -> float:
        return vm_cost(self.total_vcpus(), duration_ms)

    # -- operations (executed after MDS admission) ----------------------------
    def _journal_write(self) -> Generator:
        with self.journal.request() as slot:
            yield slot
            yield self.env.timeout(self.config.journal_service_ms)

    def apply(self, request: MetadataRequest) -> Generator:
        op = request.op
        path = normalize(request.path)
        if op in (OpType.READ_FILE, OpType.STAT):
            inode = self._inodes.get(path)
            if inode is None:
                raise NotFoundError(f"{path!r} does not exist")
            return inode
        if op is OpType.LS:
            inode = self._inodes.get(path)
            if inode is None:
                raise NotFoundError(f"{path!r} does not exist")
            if not inode.is_dir:
                return [inode.name]
            return sorted(self._children.get(path, ()))
        if op is OpType.CREATE_FILE:
            yield from self._journal_write()
            return self._create(path, is_dir=False)
        if op is OpType.MKDIRS:
            yield from self._journal_write()
            return self._mkdirs(path)
        if op is OpType.DELETE:
            yield from self._journal_write()
            return self._delete(path, request.recursive)
        if op is OpType.MV:
            yield from self._journal_write()
            return self._mv(path, normalize(request.dst_path))
        raise FsError(f"unhandled op {op}")

    def _create(self, path: str, is_dir: bool) -> INode:
        if path in self._inodes:
            raise AlreadyExistsError(f"{path!r} already exists")
        parent_path = parent_of(path)
        parent = self._inodes.get(parent_path)
        if parent is None:
            raise NotFoundError(f"{parent_path!r} does not exist")
        if not parent.is_dir:
            raise NotADirectoryError(f"{parent_path!r} is not a directory")
        _, name = split(path)
        inode = INode(id=self._alloc(), parent_id=parent.id, name=name, is_dir=is_dir)
        self._inodes[path] = inode
        self._children[parent_path].add(name)
        if is_dir:
            self._children[path] = set()
        return inode

    def _mkdirs(self, path: str) -> INode:
        existing = self._inodes.get(path)
        if existing is not None:
            if not existing.is_dir:
                raise NotADirectoryError(f"{path!r} exists and is a file")
            return existing
        parent_path = parent_of(path)
        if parent_path not in self._inodes:
            self._mkdirs(parent_path)
        return self._create(path, is_dir=True)

    def _delete(self, path: str, recursive: bool) -> bool:
        inode = self._inodes.get(path)
        if inode is None:
            raise NotFoundError(f"{path!r} does not exist")
        if inode.is_dir and self._children.get(path) and not recursive:
            raise NotDirEmptyError(f"{path!r} is not empty")
        victims = [p for p in self._inodes if is_descendant(p, path)]
        for victim in victims:
            self._inodes.pop(victim, None)
            self._children.pop(victim, None)
        parent_path, name = split(path)
        self._children.get(parent_path, set()).discard(name)
        return True

    def _mv(self, src: str, dst: str) -> INode:
        inode = self._inodes.get(src)
        if inode is None:
            raise NotFoundError(f"{src!r} does not exist")
        if dst in self._inodes:
            raise AlreadyExistsError(f"{dst!r} already exists")
        dst_parent = parent_of(dst)
        parent = self._inodes.get(dst_parent)
        if parent is None or not parent.is_dir:
            raise NotADirectoryError(f"{dst_parent!r} is not a directory")
        moved_paths = [p for p in self._inodes if is_descendant(p, src)]
        _, dst_name = split(dst)
        renamed = {}
        for old in moved_paths:
            new = dst + old[len(src):]
            renamed[new] = self._inodes.pop(old)
            if old in self._children:
                self._children[new] = self._children.pop(old)
        moved = renamed[dst].with_updates(parent_id=parent.id, name=dst_name)
        renamed[dst] = moved
        self._inodes.update(renamed)
        src_parent, src_name = split(src)
        self._children.get(src_parent, set()).discard(src_name)
        self._children[dst_parent].add(dst_name)
        return moved


class CephFSClient:
    """A CephFS client issuing ops to the MDS cluster."""

    _ids = count(1)

    def __init__(self, cluster: CephFSCluster) -> None:
        self.cluster = cluster
        self.id = f"ceph-client{next(self._ids)}"

    def execute(
        self,
        op: OpType,
        path: str,
        dst_path: Optional[str] = None,
        recursive: bool = False,
    ) -> Generator:
        env = self.cluster.env
        config = self.cluster.config
        start = env.now
        request = MetadataRequest(
            op=op, path=path, dst_path=dst_path, recursive=recursive,
            client_id=self.id,
        )
        mds = self.cluster.mds_for(path)
        yield env.timeout(config.tcp_oneway_ms)
        cpu = config.cpu_ms_write if op.is_write else config.cpu_ms_read
        yield from mds.admit(cpu)
        try:
            value = yield from self.cluster.apply(request)
            response = MetadataResponse(
                request_id=request.request_id, ok=True, value=value,
                served_by=mds.id,
            )
        except FsError as exc:
            response = MetadataResponse(
                request_id=request.request_id, ok=False,
                error=f"{type(exc).__name__}: {exc}", served_by=mds.id,
            )
        yield env.timeout(config.tcp_oneway_ms)
        self.cluster.metrics.record(
            op=op.value, start_ms=start, end_ms=env.now, ok=response.ok,
        )
        return response

    def create_file(self, path):
        return (yield from self.execute(OpType.CREATE_FILE, path))

    def mkdirs(self, path):
        return (yield from self.execute(OpType.MKDIRS, path))

    def read_file(self, path):
        return (yield from self.execute(OpType.READ_FILE, path))

    def stat(self, path):
        return (yield from self.execute(OpType.STAT, path))

    def ls(self, path):
        return (yield from self.execute(OpType.LS, path))

    def delete(self, path, recursive=False):
        return (yield from self.execute(OpType.DELETE, path, recursive=recursive))

    def mv(self, src, dst):
        return (yield from self.execute(OpType.MV, src, dst_path=dst))
