"""Baseline systems the paper evaluates λFS against (§5.1).

* :class:`HopsFSCluster` — vanilla HopsFS: a fixed cluster of
  *stateless* NameNodes in front of MySQL NDB; every metadata
  operation round-trips to the store.
* :class:`HopsFSCachedCluster` — "HopsFS+Cache": the same serverful
  cluster with λFS-style NameNode metadata caches and client-side
  consistent hashing (the serverful cache-based baseline).
* :func:`make_infinicache` — an InfiniCache-style FaaS cache: a
  static, fixed-size deployment invoked over HTTP for every
  operation (no auto-scaling, no long-lived TCP).
* :class:`CephFSCluster` — a CephFS-flavoured MDS: in-memory
  metadata with journaled writes and capability-based (cheap) write
  handling, but a statically fixed MDS cluster.
* :class:`IndexFSCluster` / :class:`LambdaIndexFS` — IndexFS on a
  BeeGFS-like substrate with LevelDB SSTables, and the λFS port of
  it (§5.7).
"""

from repro.baselines.cephfs import CephFSClient, CephFSCluster, CephFSConfig
from repro.baselines.hopsfs import (
    HopsFSCachedCluster,
    HopsFSClient,
    HopsFSCluster,
    HopsFSConfig,
)
from repro.baselines.indexfs import (
    IndexFSClient,
    IndexFSCluster,
    IndexFSConfig,
    LambdaIndexFS,
    LambdaIndexFSClient,
    LambdaIndexFSConfig,
)
from repro.baselines.infinicache import make_infinicache

__all__ = [
    "CephFSClient",
    "CephFSCluster",
    "CephFSConfig",
    "HopsFSCachedCluster",
    "HopsFSClient",
    "HopsFSCluster",
    "HopsFSConfig",
    "IndexFSClient",
    "IndexFSCluster",
    "IndexFSConfig",
    "LambdaIndexFS",
    "LambdaIndexFSClient",
    "LambdaIndexFSConfig",
    "make_infinicache",
]
