"""Figure 10: latency CDFs per operation type for the Spotify runs."""

from repro.metrics import percentile

from _shared import report, spotify_runs_25k, tabulate

OPS = ["read file", "stat file/dir", "ls file/dir", "create file", "mv file/dir"]
QUANTILES = [50, 90, 99, 99.9]


def test_fig10_latency_cdfs(benchmark):
    runs = benchmark.pedantic(spotify_runs_25k, rounds=1, iterations=1)

    rows = []
    for op in OPS:
        for key, run in runs.items():
            lats = run.latencies_by_op.get(op)
            if not lats:
                continue
            rows.append(
                [op, run.name] + [percentile(lats, q) for q in QUANTILES]
            )
    report(
        "fig10",
        "Figure 10 — latency percentiles (ms) by op (CDF summary)",
        tabulate(["op", "system"] + [f"p{q}" for q in QUANTILES], rows),
    )

    lam = runs["lambda"].latencies_by_op
    hops = runs.get("hopsfs")
    if hops is not None:
        # §5.2.2: λFS reads are several times faster than HopsFS
        # (6.93x–20.13x in the paper).
        assert percentile(lam["read file"], 50) < percentile(
            hops.latencies_by_op["read file"], 50
        ) / 2
    cache = runs.get("hopsfs_cache")
    if cache is not None:
        # Serverful writes are faster than λFS' (the coherence
        # protocol's INV/ACK round sits on λFS' write path).  The
        # cache-based serverful baseline is the fair reference here:
        # vanilla HopsFS spends our scaled run saturated, so its
        # write latencies are queueing-dominated.
        assert percentile(lam["create file"], 50) > percentile(
            cache.latencies_by_op["create file"], 50
        )
