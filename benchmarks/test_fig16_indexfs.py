"""Figure 16: λIndexFS vs IndexFS on the tree-test benchmark."""

from repro.bench.experiments import fig16_indexfs

from _shared import QUICK, report, tabulate

KW = dict(writes_per_client=150, reads_per_client=150, fixed_total=9_600)
if QUICK:
    KW = dict(client_counts=(8, 32), writes_per_client=80,
              reads_per_client=80, fixed_total=2_560)


def test_fig16_indexfs(benchmark):
    rows = benchmark.pedantic(fig16_indexfs, kwargs=KW, rounds=1, iterations=1)
    report(
        "fig16",
        "Figure 16 — λIndexFS vs IndexFS, tree-test (ops/s)",
        tabulate(
            ["workload", "clients", "IndexFS W", "λIndexFS W",
             "IndexFS R", "λIndexFS R", "IndexFS Agg", "λIndexFS Agg"],
            [
                [r["workload"], r["clients"], r["indexfs_write"],
                 r["lambda_write"], r["indexfs_read"], r["lambda_read"],
                 r["indexfs_agg"], r["lambda_agg"]]
                for r in rows
            ],
        ),
    )
    largest = max(r["clients"] for r in rows)
    big = [r for r in rows if r["clients"] == largest]
    for r in big:
        # §5.7: λIndexFS significantly outperforms IndexFS for writes
        # at scale (auto-scaling) and consistently for reads (caching).
        assert r["lambda_write"] > 1.5 * r["indexfs_write"]
        assert r["lambda_read"] > r["indexfs_read"]
