"""Appendix D: subtree sub-operation batch size and offloading."""

from repro.bench.experiments import appd_offload_ablation

from _shared import QUICK, report, tabulate


def test_appd_offloading(benchmark):
    kwargs = dict(directory_size=1_024, batch_sizes=(64, 256)) if QUICK else {}
    rows = benchmark.pedantic(
        appd_offload_ablation, kwargs=kwargs, rounds=1, iterations=1
    )
    report(
        "appd",
        "Appendix D — subtree mv latency (ms) vs batch size",
        tabulate(
            ["batch size", "offloaded", "local only"],
            [[r["batch_size"], r["offload"], r["local"]] for r in rows],
        ),
    )
    # Offloading sub-operation batches to helper NameNodes beats
    # executing everything on the (small) leader.
    wins = sum(1 for r in rows if r["offload"] <= r["local"] * 1.05)
    assert wins >= len(rows) - 1
