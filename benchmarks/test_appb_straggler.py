"""Appendix B: straggler mitigation ablation under NameNode churn."""

from repro.bench.experiments import appb_straggler_ablation

from _shared import QUICK, report, tabulate


def test_appb_straggler(benchmark):
    kwargs = dict(clients=64, ops_per_client=96) if QUICK else {}
    out = benchmark.pedantic(
        appb_straggler_ablation, kwargs=kwargs, rounds=1, iterations=1
    )
    report(
        "appb",
        "Appendix B — straggler mitigation (reads under NN churn)",
        tabulate(
            ["mitigation", "ops/s", "p99 (ms)", "p99.9 (ms)", "max (ms)"],
            [
                [mode, row["throughput"], row["p99"], row["p999"], row["max"]]
                for mode, row in out.items()
            ],
        ),
    )
    # Straggler mitigation cuts the tail: abandoned requests are
    # resubmitted instead of waiting out dead peers.  (The absolute
    # max is a cold start, which mitigation cannot remove.)
    assert out["on"]["p99"] < out["off"]["p99"]
