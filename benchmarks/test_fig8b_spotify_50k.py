"""Figure 8(b): Spotify workload, base = 50k analogue (2x Fig 8a)."""

from _shared import report, spotify_runs_50k, tabulate


def test_fig8b_spotify_50k(benchmark):
    runs = benchmark.pedantic(spotify_runs_50k, rounds=1, iterations=1)

    rows = [
        [run.name, run.avg_throughput, run.peak_throughput,
         run.avg_latency_ms, f"${run.final_cost_usd:.4f}"]
        for run in runs.values()
    ]
    report(
        "fig8b_summary",
        "Figure 8(b) — Spotify workload (50k-base analogue): summary",
        tabulate(["system", "avg ops/s", "peak ops/s", "avg lat (ms)", "cost"], rows),
    )

    lam, hops = runs["lambda"], runs["hopsfs"]
    # §5.2.2 at the 50k base: HopsFS cannot reach the base rate and
    # spends the run catching up; λFS' peak is several times higher
    # and its average latency several times lower.
    assert lam.avg_throughput > 1.5 * hops.avg_throughput
    assert lam.peak_throughput > 2.0 * hops.peak_throughput
    assert lam.avg_latency_ms < 0.5 * hops.avg_latency_ms
