"""Shared helpers for the benchmark suite.

Heavy experiments (the Spotify suite) are computed once and shared by
every figure that derives from them.  Tables print to stdout (run
``pytest benchmarks/ --benchmark-only -s`` to see them) and are also
written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
"""Set REPRO_BENCH_QUICK=1 to shrink every experiment further."""


from repro.bench.cache import disk_cached  # noqa: E402
from repro.bench.report import tabulate  # noqa: E402  (shared renderer)


def report(name: str, title: str, table: str) -> None:
    """Print a result table and persist it under results/."""
    block = f"\n=== {title} ===\n{table}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(block)


def _disk_cached(name, compute):
    """Cache heavy suite results on disk so re-runs of dependent
    figures (in fresh processes) skip the multi-minute recompute.
    Honors REPRO_BENCH_CACHE_DIR (see :mod:`repro.bench.cache`)."""
    return disk_cached(name, compute, RESULTS_DIR)


@lru_cache(maxsize=None)
def spotify_runs_25k():
    """The Figure 8(a) suite (paper's 25k-base analogue), shared by
    figs 8(a), 8(c), 9, and 10."""
    from repro.bench.experiments import fig8_spotify

    if QUICK:
        return fig8_spotify(duration_ms=20_000.0, clients=96,
                            systems=("lambda", "hopsfs", "hopsfs_cache"))
    return _disk_cached("spotify25k", fig8_spotify)


@lru_cache(maxsize=None)
def spotify_runs_50k():
    """The Figure 8(b) suite (paper's 50k-base analogue).

    Runs 2x the Figure 8(a) base with 2x the clients — the paper also
    scales client parallelism with load; with too few clients the
    closed-loop backlog makes the simulation grind.
    """
    from repro.bench.experiments import fig8_spotify

    if QUICK:
        return fig8_spotify(base_throughput=12_000.0, duration_ms=20_000.0,
                            clients=192, systems=("lambda", "hopsfs"))
    return _disk_cached("spotify50k", lambda: fig8_spotify(
        base_throughput=12_000.0,
        duration_ms=20_000.0,
        clients=384,
        systems=("lambda", "hopsfs", "hopsfs_cache"),
    ))
