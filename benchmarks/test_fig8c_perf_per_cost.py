"""Figure 8(c): per-second performance-per-cost, λFS vs HopsFS+Cache."""

from _shared import QUICK, report, spotify_runs_25k, spotify_runs_50k, tabulate


def _ppc_rows(runs):
    lam = runs["lambda"].perf_per_cost_timeline()
    cache_run = runs.get("hopsfs_cache")
    cache = cache_run.perf_per_cost_timeline() if cache_run else []
    cache_by_t = dict(cache)
    return [
        [int(t / 1000), ppc, cache_by_t.get(t, "")]
        for t, ppc in lam[::3]
    ]


def test_fig8c_perf_per_cost(benchmark):
    runs25 = benchmark.pedantic(spotify_runs_25k, rounds=1, iterations=1)
    report(
        "fig8c_25k",
        "Figure 8(c) — performance-per-cost (ops/s/$), 25k analogue",
        tabulate(["t (s)", "λFS", "HopsFS+Cache"], _ppc_rows(runs25)),
    )
    if not QUICK:
        runs50 = spotify_runs_50k()
        if "hopsfs_cache" in runs50:
            report(
                "fig8c_50k",
                "Figure 8(c) — performance-per-cost (ops/s/$), 50k analogue",
                tabulate(["t (s)", "λFS", "HopsFS+Cache"], _ppc_rows(runs50)),
            )

    lam = runs25["lambda"]
    cache = runs25.get("hopsfs_cache")
    if cache is not None:
        lam_total = lam.avg_throughput / max(lam.final_cost_usd, 1e-12)
        cache_total = cache.avg_throughput / max(cache.final_cost_usd, 1e-12)
        # §5.2.5: λFS achieves significantly higher perf-per-cost
        # (3.33x in the paper) than HopsFS+Cache.
        assert lam_total > 1.5 * cache_total
