"""Figure 13: perf-per-cost for read ops, λFS vs HopsFS+Cache."""

from repro.bench.experiments import fig13_perf_per_cost

from _shared import QUICK, report, tabulate

CLIENT_COUNTS = (8, 32, 128) if not QUICK else (8, 32)


def test_fig13_read_perf_per_cost(benchmark):
    rows = benchmark.pedantic(
        fig13_perf_per_cost,
        kwargs=dict(client_counts=CLIENT_COUNTS, ops_per_client=128,
                    warmup_per_client=48),
        rounds=1, iterations=1,
    )
    report(
        "fig13",
        "Figure 13 — perf-per-cost (ops/s/$), read ops",
        tabulate(
            ["op", "clients", "λFS ops/s", "λFS ppc", "H+C ops/s", "H+C ppc"],
            [
                [r["op"].value, r["clients"], r["lambda_throughput"],
                 r["lambda_ppc"], r["hopsfs_cache_throughput"],
                 r["hopsfs_cache_ppc"]]
                for r in rows
            ],
        ),
    )
    # §5.3.3: λFS achieves higher perf-per-cost for read file and ls
    # across problem sizes (λFS costed with the simplified model).
    read_rows = [r for r in rows if r["op"].value == "read file"]
    wins = sum(1 for r in read_rows if r["lambda_ppc"] > r["hopsfs_cache_ppc"])
    assert wins >= len(read_rows) - 1
