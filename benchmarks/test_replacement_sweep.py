"""§3.4 ablation: the HTTP-TCP replacement probability knob."""

from repro.bench.experiments import replacement_probability_sweep

from _shared import QUICK, report, tabulate


def test_replacement_sweep(benchmark):
    kwargs = dict(clients=96, ops_per_client=96) if QUICK else {}
    rows = benchmark.pedantic(
        replacement_probability_sweep, kwargs=kwargs, rounds=1, iterations=1
    )
    report(
        "replacement_sweep",
        "§3.4 — HTTP-TCP replacement probability sweep (reads)",
        tabulate(
            ["probability", "ops/s", "NameNodes", "avg latency (ms)"],
            [
                [r["probability"], r["throughput"], r["namenodes"],
                 r["avg_latency"]]
                for r in rows
            ],
        ),
    )
    by_p = {r["probability"]: r for r in rows}
    # More replacement -> a bigger fleet (the elasticity signal) ...
    assert by_p[0.1]["namenodes"] >= by_p[0.0]["namenodes"]
    # ... but a high probability pays HTTP latency on the request path.
    assert by_p[0.1]["avg_latency"] > by_p[0.001]["avg_latency"]
