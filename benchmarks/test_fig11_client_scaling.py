"""Figure 11: client-driven scaling at fixed 512 vCPUs.

Paper: 8→1024 clients, 3072 ops each; here 8→128 clients, 128 ops
each after warmup (ratios and crossovers are the claims under test).
"""

import pytest

from repro.bench.experiments import fig11_client_scaling
from repro.core import OpType

from _shared import QUICK, report, tabulate

CLIENT_COUNTS = (8, 64, 256) if not QUICK else (8, 32)
SYSTEMS = ("lambda", "hopsfs", "hopsfs_cache", "infinicache", "cephfs")


@pytest.fixture(scope="module")
def points():
    return fig11_client_scaling(
        client_counts=CLIENT_COUNTS,
        systems=SYSTEMS,
        ops_per_client=96,
        warmup_per_client=32,
    )


def _by(points, op):
    table = {}
    for point in points:
        if point.op is op:
            table.setdefault(point.clients, {})[point.system] = point
    return table


def test_fig11_client_scaling(benchmark, points):
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    for op in (OpType.READ_FILE, OpType.LS, OpType.STAT,
               OpType.CREATE_FILE, OpType.MKDIRS):
        table = _by(points, op)
        rows = [
            [count] + [table[count][s].throughput for s in SYSTEMS]
            for count in sorted(table)
        ]
        report(
            f"fig11_{op.name.lower()}",
            f"Figure 11 — client scaling, {op.value} (ops/s)",
            tabulate(["clients"] + list(SYSTEMS), rows),
        )

    largest = max(CLIENT_COUNTS)
    reads = _by(points, OpType.READ_FILE)
    # λFS read throughput is many times HopsFS' (28.91x at paper
    # scale) at the largest client count.
    assert reads[largest]["lambda"].throughput > 4 * reads[largest]["hopsfs"].throughput
    # CephFS wins reads at the smallest scale, λFS at the largest.
    assert reads[min(CLIENT_COUNTS)]["cephfs"].throughput > \
        reads[min(CLIENT_COUNTS)]["lambda"].throughput
    assert reads[largest]["lambda"].throughput > reads[largest]["cephfs"].throughput
    # InfiniCache's invoke-per-op model trails λFS badly.
    assert reads[largest]["lambda"].throughput > 3 * reads[largest]["infinicache"].throughput

    creates = _by(points, OpType.CREATE_FILE)
    # §5.3.1: λFS ~1.49x HopsFS for create; CephFS above both.
    assert creates[largest]["lambda"].throughput > creates[largest]["hopsfs"].throughput
    assert creates[largest]["cephfs"].throughput > creates[largest]["lambda"].throughput
