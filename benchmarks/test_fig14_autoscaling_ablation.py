"""Figure 14: throughput with auto-scaling enabled/limited/disabled."""

from repro.bench.experiments import fig14_autoscaling_ablation
from repro.core import OpType

from _shared import QUICK, report, tabulate

OPS = (
    (OpType.READ_FILE, OpType.STAT, OpType.LS, OpType.CREATE_FILE, OpType.MKDIRS)
    if not QUICK else (OpType.READ_FILE, OpType.CREATE_FILE)
)


def test_fig14_autoscaling_ablation(benchmark):
    rows = benchmark.pedantic(
        fig14_autoscaling_ablation,
        kwargs=dict(ops=OPS, clients=160, ops_per_client=96, warmup_per_client=32),
        rounds=1, iterations=1,
    )
    report(
        "fig14",
        "Figure 14 — auto-scaling ablation (ops/s)",
        tabulate(
            ["op", "AS", "Limited AS", "No AS"],
            [[r["op"].value, r["AS"], r["Limited AS"], r["No AS"]] for r in rows],
        ),
    )
    by_op = {r["op"]: r for r in rows}
    # §5.4: reads gain severalfold from auto-scaling; the write gap is
    # smaller because the store is the write bottleneck.
    read = by_op[OpType.READ_FILE]
    assert read["AS"] > 1.4 * read["No AS"]
    # At moderate load AS ≈ Limited AS (both have headroom); the gap
    # against No AS is the paper's core claim.
    assert read["AS"] >= read["Limited AS"] * 0.85
    assert read["Limited AS"] > read["No AS"]
    create = by_op[OpType.CREATE_FILE]
    read_gain = read["AS"] / max(read["No AS"], 1e-9)
    create_gain = create["AS"] / max(create["No AS"], 1e-9)
    assert create_gain < read_gain
