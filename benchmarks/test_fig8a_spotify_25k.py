"""Figure 8(a): Spotify workload throughput, base = 25k analogue.

Regenerates the Figure 8(a) series: per-second throughput for λFS,
HopsFS, HopsFS+Cache, reduced-cache λFS and cost-normalized
HopsFS+Cache, plus the active-NameNode count on the secondary axis.
"""

from _shared import report, spotify_runs_25k, tabulate


def test_fig8a_spotify_25k(benchmark):
    runs = benchmark.pedantic(spotify_runs_25k, rounds=1, iterations=1)

    rows = []
    for key, run in runs.items():
        rows.append([
            run.name, run.avg_throughput, run.peak_throughput,
            run.avg_latency_ms, f"${run.final_cost_usd:.4f}",
            f"{run.completed}/{run.issued}",
        ])
    report(
        "fig8a_summary",
        "Figure 8(a) — Spotify workload (25k-base analogue): summary",
        tabulate(
            ["system", "avg ops/s", "peak ops/s", "avg lat (ms)", "cost", "ops done"],
            rows,
        ),
    )

    lam = runs["lambda"]
    series_rows = []
    nn_by_t = dict(lam.nn_timeline)
    for t, ops in lam.throughput_timeline[::3]:
        row = [int(t / 1000), ops]
        for key in runs:
            if key == "lambda":
                continue
            timeline = dict(runs[key].throughput_timeline)
            row.append(timeline.get(t, 0.0))
        row.append(nn_by_t.get(t, ""))
        series_rows.append(row)
    headers = ["t (s)", "λFS"] + [runs[k].name for k in runs if k != "lambda"] + ["λFS NNs"]
    report(
        "fig8a_timeline",
        "Figure 8(a) — throughput timeline (ops/s, sampled every 3 s)",
        tabulate(headers, series_rows),
    )

    hops = runs.get("hopsfs")
    if hops is not None:
        # Shape assertions from §5.2.2: λFS sustains the bursts that
        # HopsFS cannot, at far lower latency, and lower cost.
        assert lam.peak_throughput > 1.3 * hops.peak_throughput
        assert lam.avg_latency_ms < hops.avg_latency_ms
        assert lam.final_cost_usd < hops.final_cost_usd
    cache = runs.get("hopsfs_cache")
    if cache is not None:
        # λFS ≈ HopsFS+Cache throughput at a fraction of the cost.
        assert lam.avg_throughput > 0.8 * cache.avg_throughput
        assert lam.final_cost_usd < 0.6 * cache.final_cost_usd
    # λFS scaled out beyond its initial fleet during the burst.
    assert max(c for _, c in lam.nn_timeline) > 16
