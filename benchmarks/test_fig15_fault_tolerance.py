"""Figure 15: the Spotify run while NameNodes are killed round-robin."""

from repro.bench.experiments import fig15_fault_tolerance

from _shared import QUICK, report, tabulate


def test_fig15_fault_tolerance(benchmark):
    # trace=True: the fault-tolerance run doubles as the invariant
    # battery's stress test — kills mid-INV-round must never let a
    # write commit early or a stale cache entry be served.
    kwargs = dict(trace=True)
    if QUICK:
        kwargs.update(duration_ms=20_000.0, clients=96, kill_interval_ms=5_000.0)
    runs = benchmark.pedantic(
        fig15_fault_tolerance, kwargs=kwargs, rounds=1, iterations=1
    )
    failures, baseline = runs["failures"], runs["baseline"]

    base_by_t = dict(baseline.throughput_timeline)
    nn_by_t = dict(failures.nn_timeline)
    rows = [
        [int(t / 1000), ops, base_by_t.get(t, ""), nn_by_t.get(t, "")]
        for t, ops in failures.throughput_timeline[::3]
    ]
    report(
        "fig15",
        "Figure 15 — fault tolerance under the Spotify workload",
        tabulate(["t (s)", "λFS+Failures ops/s", "λFS ops/s", "NNs (failures run)"], rows),
    )
    # §5.6: despite a NameNode being killed every interval, λFS
    # completes the workload as generated (slight dips, quick
    # recovery): ≥90% of the failure-free average throughput.
    assert failures.avg_throughput > 0.9 * baseline.avg_throughput
    assert failures.completed == failures.issued
    for run in (failures, baseline):
        assert run.trace_report is not None
        assert run.trace_report["violations"] == 0, \
            run.trace_report["violation_detail"]
