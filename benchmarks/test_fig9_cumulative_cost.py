"""Figure 9: cumulative monetary cost over the 25k Spotify run."""

from _shared import report, spotify_runs_25k, tabulate


def test_fig9_cumulative_cost(benchmark):
    runs = benchmark.pedantic(spotify_runs_25k, rounds=1, iterations=1)
    lam = runs["lambda"]
    hops = runs.get("hopsfs")
    cache = runs.get("hopsfs_cache")

    hops_by_t = dict(hops.cost_timeline) if hops else {}
    cache_by_t = dict(cache.cost_timeline) if cache else {}
    # λFS (Simplified) is charged for provisioned lifetime; we scale
    # the final simplified figure along the pay-per-use curve, which
    # matches how the two accumulate in lockstep.
    scale = (
        lam.simplified_cost_usd / max(lam.final_cost_usd, 1e-12)
        if lam.simplified_cost_usd else 0.0
    )
    rows = [
        [int(t / 1000), cost, cost * scale, hops_by_t.get(t, ""), cache_by_t.get(t, "")]
        for t, cost in lam.cost_timeline[::3]
    ]
    report(
        "fig9",
        "Figure 9 — cumulative cost (USD)",
        tabulate(
            ["t (s)", "λFS", "λFS (Simplified)", "HopsFS", "HopsFS+Cache"], rows
        ),
    )

    if hops is not None:
        # The paper: $0.35 vs $2.50 (85.99% lower).  The shape claim:
        # λFS costs a small fraction of the serverful cluster.
        assert lam.final_cost_usd < 0.5 * hops.final_cost_usd
    # The simplified (provisioned-lifetime) model charges λFS several
    # times more than pay-per-use ("doubled the cost" in the paper).
    assert lam.simplified_cost_usd > 1.5 * lam.final_cost_usd
