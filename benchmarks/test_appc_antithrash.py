"""Appendix C: anti-thrashing mode under a tight cluster vCPU cap."""

from repro.bench.experiments import appc_antithrash_ablation

from _shared import report, tabulate


def test_appc_antithrash(benchmark):
    out = benchmark.pedantic(appc_antithrash_ablation, rounds=1, iterations=1)
    report(
        "appc",
        "Appendix C — anti-thrashing mode (tight vCPU cap)",
        tabulate(
            ["anti-thrash", "ops/s", "cold starts", "evictions"],
            [
                [mode, row["throughput"], row["cold_starts"], row["evictions"]]
                for mode, row in out.items()
            ],
        ),
    )
    # With anti-thrashing, clients stop issuing the HTTP invocations
    # that drive container churn, so the platform cold-starts and
    # evicts less while sustaining at least comparable throughput.
    assert out["on"]["cold_starts"] <= out["off"]["cold_starts"]
    assert out["on"]["throughput"] > 0.7 * out["off"]["throughput"]
