"""Table 3: end-to-end latency of subtree mv for growing directories."""

from repro.bench.experiments import table3_subtree_mv

from _shared import QUICK, report, tabulate

SIZES = (4_096, 8_192, 16_384) if not QUICK else (1_024, 4_096)


def test_table3_subtree_mv(benchmark):
    rows = benchmark.pedantic(
        table3_subtree_mv, kwargs=dict(directory_sizes=SIZES),
        rounds=1, iterations=1,
    )
    report(
        "table3",
        "Table 3 — subtree mv end-to-end latency (ms)",
        tabulate(
            ["files", "HopsFS", "λFS", "λFS advantage"],
            [
                [r["files"], r["hopsfs"], r["lambda"],
                 f"{(r['hopsfs'] - r['lambda']) / r['hopsfs'] * 100:.1f}%"]
                for r in rows
            ],
        ),
    )
    # §5.5: λFS completes mv faster at the smaller sizes; the
    # advantage shrinks as the persistent store becomes the bottleneck.
    assert rows[0]["lambda"] < rows[0]["hopsfs"]
    first_adv = (rows[0]["hopsfs"] - rows[0]["lambda"]) / rows[0]["hopsfs"]
    last_adv = (rows[-1]["hopsfs"] - rows[-1]["lambda"]) / rows[-1]["hopsfs"]
    assert last_adv < first_adv
    # Latency grows roughly linearly with directory size.
    assert rows[-1]["lambda"] > 2 * rows[0]["lambda"]
