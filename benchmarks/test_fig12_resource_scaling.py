"""Figure 12: resource scaling (vCPUs 16→512 in the paper)."""

import pytest

from repro.bench.experiments import fig12_resource_scaling
from repro.core import OpType

from _shared import QUICK, report, tabulate

VCPUS = (64.0, 256.0, 512.0) if not QUICK else (64.0, 256.0)
SYSTEMS = ("lambda", "hopsfs", "hopsfs_cache")
OPS = (OpType.READ_FILE, OpType.LS, OpType.STAT, OpType.CREATE_FILE, OpType.MKDIRS)


@pytest.fixture(scope="module")
def points():
    return fig12_resource_scaling(
        vcpu_list=VCPUS, ops=OPS, systems=SYSTEMS,
        clients=192, ops_per_client=128, warmup_per_client=48,
    )


def test_fig12_resource_scaling(benchmark, points):
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    for op in OPS:
        table = {}
        for point in points:
            if point.op is op:
                table.setdefault(point.vcpus, {})[point.system] = point
        rows = [
            [int(v)] + [table[v][s].throughput for s in SYSTEMS]
            for v in sorted(table)
        ]
        report(
            f"fig12_{op.name.lower()}",
            f"Figure 12 — resource scaling, {op.value} (ops/s)",
            tabulate(["vCPUs"] + list(SYSTEMS), rows),
        )

    reads = {
        (p.vcpus, p.system): p.throughput
        for p in points if p.op is OpType.READ_FILE
    }
    # λFS read throughput grows with allocated resources (more vCPUs
    # allow a higher degree of auto-scaling, §5.3.2) ...
    assert reads[(max(VCPUS), "lambda")] > reads[(min(VCPUS), "lambda")]
    # ... and beats HopsFS at every allocation.
    for vcpus in VCPUS:
        assert reads[(vcpus, "lambda")] > reads[(vcpus, "hopsfs")]
