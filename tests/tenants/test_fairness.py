"""Jain's index, interval extraction, bucket quantiles, burn rate."""

import pytest

from repro.telemetry.sampler import TimeSeries
from repro.tenants import fairness
from repro.tenants.fairness import (
    burn_rate,
    jain_index,
    jain_timeline,
    p99_timeline,
    quantile_from_counts,
    slo_violation_fraction,
    summarize,
    tenant_names,
)
from repro.tenants.telemetry import INF_LABEL

pytestmark = pytest.mark.tenant


# -- jain_index ---------------------------------------------------------

def test_jain_equal_shares_is_one():
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_empty_and_all_zero_are_vacuously_fair():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0


def test_jain_single_hog_approaches_one_over_n():
    assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_rejects_negative_shares():
    with pytest.raises(ValueError):
        jain_index([1.0, -0.5])


# -- synthetic time-series helpers --------------------------------------

def _key(name, **labels):
    from repro.telemetry.registry import label_key, series_key

    return series_key(name, label_key(labels))


def _synthetic_ts():
    """Two tenants: 'a' steady at 10 ops/interval, 'b' ramping."""
    ts = TimeSeries()
    a_total, b_total = 0.0, 0.0
    for index in range(5):
        a_total += 10.0
        b_total += 10.0 * index  # 0, 10, 20, 30, 40
        ts.append(250.0 * (index + 1), {
            _key("tenant_ops_total", op="read_file", tenant="a"): a_total,
            _key("tenant_ops_total", op="read_file", tenant="b"): b_total,
        })
    return ts


def test_tenant_names_from_series():
    assert tenant_names(_synthetic_ts()) == ["a", "b"]


def test_interval_ops_are_deltas():
    rows = fairness.interval_ops(_synthetic_ts())
    assert [row["a"] for _t, row in rows] == [10.0] * 5
    assert [row["b"] for _t, row in rows] == [0.0, 10.0, 20.0, 30.0, 40.0]


def test_jain_timeline_skips_idle_and_tracks_imbalance():
    timeline = jain_timeline(_synthetic_ts())
    assert len(timeline) == 5  # tenant 'a' is never idle
    # First interval: 10 vs 0 → 0.5; equal interval (10 vs 10) → 1.0.
    assert timeline[0][1] == pytest.approx(0.5)
    assert timeline[1][1] == pytest.approx(1.0)
    assert timeline[-1][1] < 1.0


def test_jain_timeline_weight_normalization():
    # b doing k× the ops of a is perfectly fair if b's weight is k.
    ts = TimeSeries()
    ts.append(250.0, {
        _key("tenant_ops_total", op="stat", tenant="a"): 10.0,
        _key("tenant_ops_total", op="stat", tenant="b"): 30.0,
    })
    unweighted = jain_timeline(ts)
    weighted = jain_timeline(ts, weights={"b": 3.0})
    assert unweighted[0][1] < 1.0
    assert weighted[0][1] == pytest.approx(1.0)


def test_multiple_op_series_per_tenant_are_summed():
    ts = TimeSeries()
    ts.append(250.0, {
        _key("tenant_ops_total", op="stat", tenant="a"): 4.0,
        _key("tenant_ops_total", op="read_file", tenant="a"): 6.0,
        _key("tenant_ops_total", op="stat", tenant="b"): 10.0,
    })
    rows = fairness.interval_ops(ts)
    assert rows[0][1] == {"a": 10.0, "b": 10.0}


# -- bucket quantiles ---------------------------------------------------

BOUNDS = ["1.0", "5.0", "25.0", INF_LABEL]


def test_quantile_from_counts_upper_bound_style():
    counts = [50.0, 30.0, 15.0, 5.0]
    assert quantile_from_counts(BOUNDS, counts, 0.5) == 1.0
    assert quantile_from_counts(BOUNDS, counts, 0.8) == 5.0
    assert quantile_from_counts(BOUNDS, counts, 0.99) == float("inf")
    assert quantile_from_counts(BOUNDS, [0.0] * 4, 0.99) == 0.0
    with pytest.raises(ValueError):
        quantile_from_counts(BOUNDS, counts, 1.5)


def test_bucket_delta_rows_de_cumulates_both_axes():
    ts = TimeSeries()
    # Cumulative over time AND over the bucket axis.
    for t, (le1, le5, inf) in [(250.0, (4, 6, 6)), (500.0, (5, 9, 10))]:
        ts.append(t, {
            _key("tenant_latency_bucket", tenant="a", le="1.0"): le1,
            _key("tenant_latency_bucket", tenant="a", le="5.0"): le5,
            _key("tenant_latency_bucket", tenant="a", le=INF_LABEL): inf,
        })
    bounds, rows = fairness.bucket_delta_rows(ts, ["a"])
    assert bounds == ["1.0", "5.0", INF_LABEL]
    assert rows[0][1] == [4.0, 2.0, 0.0]
    assert rows[1][1] == [1.0, 2.0, 1.0]  # interval 2: 1 fast, 2 mid, 1 slow


def test_p99_timeline_skips_empty_intervals():
    ts = TimeSeries()
    for t, count in [(250.0, 10.0), (500.0, 10.0), (750.0, 30.0)]:
        ts.append(t, {
            _key("tenant_latency_bucket", tenant="a", le="1.0"): count,
            _key("tenant_latency_bucket", tenant="a", le=INF_LABEL): count,
        })
    timeline = p99_timeline(ts, ["a"])
    # Interval 2 saw no ops → skipped; the others report the p99 bound.
    assert [t for t, _v in timeline] == [250.0, 750.0]
    assert all(v == 1.0 for _t, v in timeline)


def test_slo_violation_fraction_and_burn_rate():
    counts = [90.0, 10.0]
    assert slo_violation_fraction(["10.0", INF_LABEL], counts, 10.0) == (
        pytest.approx(0.1)
    )
    ts = TimeSeries()
    ts.append(250.0, {
        _key("tenant_latency_bucket", tenant="a", le="10.0"): 90.0,
        _key("tenant_latency_bucket", tenant="a", le=INF_LABEL): 100.0,
    })
    # 10% violations over a 5% budget → burn rate 2.
    assert burn_rate(ts, "a", slo_ms=10.0, error_budget=0.05) == (
        pytest.approx(2.0)
    )


def test_summarize_builds_full_report():
    ts = _synthetic_ts()
    report = summarize(ts)
    assert [stats.name for stats in report.tenants] == ["a", "b"]
    assert report.tenants[0].ops == 50.0
    assert report.tenants[1].ops == 100.0
    assert 0.0 < report.jain_min <= report.jain_mean <= 1.0
    assert "tenant" in report.render()
    payload = report.as_dict()
    assert {t["name"] for t in payload["tenants"]} == {"a", "b"}
