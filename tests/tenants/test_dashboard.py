

def test_tenant_row_tolerates_nonfinite_samples():
    # p99 over an empty interval yields NaN; the row must render a
    # hole glyph and keep finite min/max.
    from repro.tenants.dashboard import _row
    nan = float("nan")
    row = _row("t0", [(0.0, 5.0), (1.0, nan), (2.0, 7.0)], width=8)
    assert "·" in row
    assert "min 5" in row and "max 7" in row
    row = _row("t0", [(0.0, nan)], width=8)
    assert "min 0" in row and "last nan" in row
