"""The ML-training workload: epoch structure, counts, determinism."""

import pytest

from repro.core.messages import OpType
from repro.sim import Environment
from repro.workloads import MLTrainConfig, MLTrainWorkload

pytestmark = pytest.mark.tenant


class CountingClient:
    """Records operations without any simulated cost."""

    def __init__(self, env):
        self.env = env
        self.ops = []

    def _record(self, op, path):
        self.ops.append((op, path))
        yield self.env.timeout(0.01)

        class R:
            ok = True
        return R()

    def read_file(self, path):
        return (yield from self._record(OpType.READ_FILE, path))

    def stat(self, path):
        return (yield from self._record(OpType.STAT, path))

    def create_file(self, path):
        return (yield from self._record(OpType.CREATE_FILE, path))


def _run(env, workload, clients):
    done = {}

    def main():
        done["result"] = yield from workload.run(clients)

    env.process(main())
    env.run()
    return done["result"]


def test_counts_match_config():
    env = Environment()
    config = MLTrainConfig(epochs=2, dataset_files=24, checkpoint_files=10)
    workload = MLTrainWorkload(env, config)
    clients = [CountingClient(env) for _ in range(4)]
    result = _run(env, workload, clients)
    assert result.epochs == 2
    assert result.reads == 2 * 24
    assert result.stats == 2 * 24  # stat-before-read doubles the touches
    assert result.creates == 2 * 10
    assert result.failed == 0
    assert result.total_ops == 2 * (24 + 24 + 10)


def test_stat_before_read_can_be_disabled():
    env = Environment()
    config = MLTrainConfig(epochs=1, dataset_files=8, checkpoint_files=4,
                           stat_before_read=False)
    workload = MLTrainWorkload(env, config)
    result = _run(env, workload, [CountingClient(env)])
    assert result.stats == 0
    assert result.reads == 8


def test_namespace_preinstalls_checkpoint_dirs():
    env = Environment()
    config = MLTrainConfig(epochs=3, dataset_files=4, root="/t/ml")
    tree = MLTrainWorkload(env, config).namespace()
    assert "/t/ml/ckpt_e0" in tree.directories
    assert "/t/ml/ckpt_e2" in tree.directories
    assert len(tree.files) == 4


def test_shuffle_is_seeded_and_epochs_differ():
    def op_order(seed):
        env = Environment()
        config = MLTrainConfig(epochs=2, dataset_files=16,
                               checkpoint_files=0, seed=seed,
                               stat_before_read=False)
        workload = MLTrainWorkload(env, config)
        client = CountingClient(env)
        _run(env, workload, [client])
        return [path for _op, path in client.ops]

    first, second = op_order(1), op_order(1)
    assert first == second  # same seed → byte-identical order
    assert op_order(1) != op_order(2)  # seed matters
    half = len(first) // 2
    assert first[:half] != first[half:]  # epochs reshuffle
    assert sorted(first[:half]) == sorted(first[half:])  # same files


def test_checkpoint_files_split_across_clients():
    env = Environment()
    config = MLTrainConfig(epochs=1, dataset_files=4, checkpoint_files=7)
    workload = MLTrainWorkload(env, config)
    clients = [CountingClient(env) for _ in range(3)]
    _run(env, workload, clients)
    creates = [
        sum(1 for op, _p in c.ops if op is OpType.CREATE_FILE)
        for c in clients
    ]
    assert sum(creates) == 7
    assert max(creates) - min(creates) <= 1  # near-even split
