"""Noisy-neighbor chaos: the QoS gate passes, the runaway is caught."""

import pytest

from repro.chaos import (
    EXPECTED_FAIL,
    TENANT_MATRIX,
    ChaosRunConfig,
    FaultSpec,
    RecoverySLO,
    Scenario,
    builtin_scenarios,
    run_scenario,
    scenario_needs_tenants,
)
from repro.namespace.treegen import TreeSpec
from repro.tenants import TenantSpec

pytestmark = [pytest.mark.tenant, pytest.mark.chaos, pytest.mark.slow]


SMALL_TREE = TreeSpec(depth=2, dirs_per_dir=2, files_per_dir=4)

CAST = (
    TenantSpec("hog", workload="readstorm", clients=4, think_ms=20.0,
               tree=SMALL_TREE),
    TenantSpec("vic-a", workload="mixed", clients=3, think_ms=20.0,
               tree=SMALL_TREE),
    TenantSpec("vic-b", workload="readstorm", clients=3, think_ms=20.0,
               tree=SMALL_TREE),
)

CONFIG = ChaosRunConfig(
    deployments=2,
    vcpus=128.0,
    drain_ms=2_000.0,
    telemetry_interval_ms=200.0,
    slo=RecoverySLO(window_ms=2_500.0),
    tenants=CAST,
)


def _flood(disable_isolation: bool) -> Scenario:
    params = {"tenant": "hog", "think_ms": 0.0}
    if disable_isolation:
        params["disable_isolation"] = True
    return Scenario("nn-small", faults=(
        FaultSpec("tenant_flood", at_ms=1_200.0, duration_ms=1_500.0,
                  params=params),
    ))


def test_catalog_wiring():
    scenarios = builtin_scenarios()
    for name in TENANT_MATRIX:
        assert name in scenarios
        assert scenario_needs_tenants(scenarios[name])
    assert "noisy-neighbor-runaway" in EXPECTED_FAIL
    assert not scenario_needs_tenants(scenarios["nn-kills"])


def test_governed_flood_recovers(reset_sim_counters):
    result = run_scenario(_flood(False), CONFIG)
    assert result.passed, result.report.render()
    assert result.tenant_counts is not None
    assert result.tenant_counts["hog"].issued > 0
    assert result.tenant_counts["vic-a"].issued > 0
    report = result.report
    assert any("fairness" in check for check in report.checks)
    assert report.jain_recovered is not None
    assert report.jain_recovered >= CONFIG.slo.jain_floor
    assert report.fairness_recovery_ms is not None
    # The engine-wired governor actually throttled the flood.
    assert result.engine.governor is not None
    assert result.engine.governor.throttled.get("hog", 0) > 0


def test_runaway_flood_is_caught(reset_sim_counters):
    """disable_isolation kills the governor and latches the flood past
    its window — the fairness gate must fail the run."""
    result = run_scenario(_flood(True), CONFIG)
    assert not result.passed
    assert any("fairness" in failure for failure in result.report.failures)
    assert result.engine.governor is not None
    assert result.engine.governor.enabled is False
    assert result.engine.tenant_flood_latch == {"hog": 0.0}
    # The hog kept flooding after the window: it dwarfs the victims.
    hog = result.tenant_counts["hog"].issued
    victims = (result.tenant_counts["vic-a"].issued
               + result.tenant_counts["vic-b"].issued)
    assert hog > victims
    assert result.report.jain_min is not None
    assert result.report.jain_min < CONFIG.slo.jain_floor


def test_same_seed_same_hashes_in_tenant_mode(reset_sim_counters):
    first = run_scenario(_flood(False), CONFIG)
    reset_sim_counters()
    second = run_scenario(_flood(False), CONFIG)
    assert first.event_hash == second.event_hash
    assert first.log_hash == second.log_hash


def test_non_tenant_scenario_report_has_no_fairness_line(
    reset_sim_counters,
):
    """The fairness gate engages only for tenant_flood scenarios —
    existing single-tenant runs keep their exact report shape."""
    scenario = Scenario("plain", faults=(
        FaultSpec("tcp_drop", at_ms=500.0, duration_ms=600.0,
                  params={"p": 0.2}),
    ))
    config = ChaosRunConfig(
        clients=6, deployments=2, vcpus=128.0, think_ms=20.0,
        drain_ms=2_000.0, slo=RecoverySLO(window_ms=1_500.0),
    )
    result = run_scenario(scenario, config)
    assert result.tenant_counts is None
    assert not any("fairness" in check for check in result.report.checks)
