"""The per-tenant dashboard renderer and the ``repro tenants`` CLI."""

import json

import pytest

from repro.telemetry.sampler import TimeSeries
from repro.telemetry.registry import label_key, series_key
from repro.tenants import render_tenant_dashboard

pytestmark = pytest.mark.tenant


def _key(name, **labels):
    return series_key(name, label_key(labels))


def _ts():
    ts = TimeSeries()
    total = 0.0
    for index in range(4):
        total += 12.0
        ts.append(200.0 * (index + 1), {
            _key("tenant_ops_total", op="read_file", tenant="acme"): total,
            _key("tenant_ops_total", op="read_file", tenant="umbrella"):
                total / 2,
            _key("tenant_latency_bucket", tenant="acme", le="5.0"): total,
            _key("tenant_latency_bucket", tenant="acme", le="+Inf"): total,
        })
    return ts


def test_dashboard_renders_per_tenant_rows():
    out = render_tenant_dashboard(_ts())
    assert "acme" in out and "umbrella" in out
    assert "ops/interval" in out
    assert "p99 ms" in out  # acme has bucket series
    assert "fairness (Jain index per interval)" in out
    assert "Jain overall" in out


def test_dashboard_empty_fallback():
    out = render_tenant_dashboard(TimeSeries())
    assert "no tenant-labelled series" in out


@pytest.mark.slow
def test_tenants_cli_end_to_end(tmp_path, capsys, reset_sim_counters):
    from repro.cli import main

    out_dir = tmp_path / "exports"
    report_json = tmp_path / "report.json"
    code = main([
        "tenants", "--duration", "1500", "--deployments", "2",
        "--interval", "200",
        "--out", str(out_dir), "--json", str(report_json),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "mltrain" in out and "analytics" in out
    assert "Jain overall" in out
    assert (out_dir / "tenants.jsonl").exists()
    assert (out_dir / "tenants.prom").exists()
    payload = json.loads(report_json.read_text())
    assert payload["version"] == 1
    assert {t["name"] for t in payload["report"]["tenants"]} >= {
        "mltrain", "prod"
    }
    assert payload["counts"]["mltrain"]["issued"] > 0


def test_tenants_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["tenants"])
    assert args.duration == 10_000.0
    assert args.governed is False
    assert args.profile is False
