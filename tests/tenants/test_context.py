"""TenantSpec validation, namespace building, and the QoS governor."""

import pytest

from repro.sim import Environment
from repro.tenants import (
    TenantGovernor,
    TenantSpec,
    build_tenant_namespaces,
    chaos_tenants,
    default_tenants,
    tag_clients,
)

pytestmark = pytest.mark.tenant


# -- spec validation ----------------------------------------------------

def test_spec_defaults():
    spec = TenantSpec("acme")
    assert spec.subtree_root() == "/tenants/acme"
    assert spec.workload == "mixed"
    assert spec.demand_ops_per_ms() == pytest.approx(6 / 40.0)


def test_spec_rejects_bad_shapes():
    with pytest.raises(ValueError):
        TenantSpec("")
    with pytest.raises(ValueError):
        TenantSpec("a", workload="cryptomining")
    with pytest.raises(ValueError):
        TenantSpec("a", clients=0)
    with pytest.raises(ValueError):
        TenantSpec("a", weight=0.0)
    with pytest.raises(ValueError):
        TenantSpec("a", burst_on_ms=100.0)  # off-phase missing


def test_burst_duty_cycle_scales_demand():
    steady = TenantSpec("s", clients=4, think_ms=20.0)
    bursty = TenantSpec("b", clients=4, think_ms=20.0,
                        burst_on_ms=500.0, burst_off_ms=1_500.0)
    assert bursty.demand_ops_per_ms() == pytest.approx(
        0.25 * steady.demand_ops_per_ms()
    )


def test_builtin_casts_are_valid_and_disjoint():
    for specs in (default_tenants(), chaos_tenants()):
        roots = [spec.subtree_root() for spec in specs]
        assert len(set(roots)) == len(roots)


# -- namespace building -------------------------------------------------

def test_build_namespaces_disjoint_and_merged():
    specs = (
        TenantSpec("ml", workload="mltrain", dataset_files=16),
        TenantSpec("web", workload="mixed"),
    )
    merged, per_tenant = build_tenant_namespaces(specs, seed=7)
    assert set(per_tenant) == {"ml", "web"}
    ml, web = per_tenant["ml"], per_tenant["web"]
    assert all(path.startswith("/tenants/ml/") for path in ml.files)
    assert all(path.startswith("/tenants/web/") for path in web.files)
    assert len(ml.files) == 16
    assert "/tenants/ml/ckpt" in ml.directories
    assert set(merged.files) == set(ml.files) | set(web.files)
    assert "/tenants" in merged.directories


def test_build_namespaces_rejects_shared_subtree():
    specs = (
        TenantSpec("one", subtree="/shared"),
        TenantSpec("two", subtree="/shared"),
    )
    with pytest.raises(ValueError, match="share subtree"):
        build_tenant_namespaces(specs)


def test_tag_clients_sets_tenant():
    class FakeClient:
        tenant = None

    clients = [FakeClient(), FakeClient()]
    tag_clients(clients, TenantSpec("acme"))
    assert all(c.tenant == "acme" for c in clients)


# -- the token-bucket governor ------------------------------------------

def _drain(env, gen):
    """Run one acquire() generator to completion on the sim clock."""
    proc = env.process(gen)
    env.run()
    return proc


def test_governor_burst_then_throttle():
    env = Environment()
    governor = TenantGovernor(env, {"t": 0.01}, burst_ms=200.0)  # 2 tokens
    _drain(env, governor.acquire("t"))
    _drain(env, governor.acquire("t"))
    assert env.now == 0.0  # burst allowance: no waiting
    _drain(env, governor.acquire("t"))
    # Third op had zero tokens: waits one full token time (1/rate).
    assert env.now == pytest.approx(100.0)
    assert governor.throttled["t"] == 1
    assert governor.throttled_ms["t"] == pytest.approx(100.0)


def test_governor_refills_while_idle():
    env = Environment()
    governor = TenantGovernor(env, {"t": 0.01}, burst_ms=100.0)  # 1 token
    _drain(env, governor.acquire("t"))

    def idle():
        yield env.timeout(100.0)

    _drain(env, idle())
    start = env.now
    _drain(env, governor.acquire("t"))
    assert env.now == start  # refilled during the idle gap


def test_governor_disabled_and_unknown_are_passthrough():
    env = Environment()
    governor = TenantGovernor(env, {"t": 0.001}, burst_ms=100.0)
    _drain(env, governor.acquire("nobody"))  # unknown tenant: no gate
    governor.enabled = False
    for _ in range(50):
        _drain(env, governor.acquire("t"))
    assert env.now == 0.0
    assert governor.throttled == {}


def test_governor_no_float_spin_at_large_now():
    """Regression: refill round-off must not strand acquire in a
    zero-sim-time loop once ``env.now`` is large enough that a ~1e-16
    wait underflows (now + wait == now)."""
    env = Environment()
    governor = TenantGovernor(env, {"t": 8 / 15.0}, burst_ms=250.0)

    def spin():
        yield env.timeout(5_000.0)
        for _ in range(500):
            yield from governor.acquire("t")

    env.process(spin())
    env.run()
    assert env.now > 5_000.0


def test_for_tenants_budgets_headroom():
    specs = (TenantSpec("a", clients=4, think_ms=20.0),)
    governor = TenantGovernor.for_tenants(
        Environment(), specs, headroom=2.0
    )
    assert governor.rates["a"] == pytest.approx(2.0 * 4 / 20.0)


def test_governor_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        TenantGovernor(Environment(), {"t": 0.0})
