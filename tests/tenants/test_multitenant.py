"""The multi-tenant driver end-to-end: telemetry, hashes, profiles."""

import pytest

from repro.bench.harness import build_lambdafs, drive
from repro.namespace.treegen import TreeSpec
from repro.sim import Environment
from repro.tenants import (
    TenantRunConfig,
    TenantSpec,
    install_tenant_telemetry,
    run_tenants,
)
from repro.tenants.telemetry import TENANT_FAMILIES
from repro.workloads import WORKLOAD_MIXES, MultiTenantWorkload

pytestmark = [pytest.mark.tenant, pytest.mark.slow]


SMALL_TREE = TreeSpec(depth=2, dirs_per_dir=2, files_per_dir=4)

SMALL_CAST = (
    TenantSpec("alpha", workload="mixed", clients=2, think_ms=20.0,
               tree=SMALL_TREE),
    TenantSpec("beta", workload="readstorm", clients=2, think_ms=20.0,
               tree=SMALL_TREE),
)

SMALL_RUN = TenantRunConfig(
    duration_ms=1_500.0, deployments=2, vcpus=128.0,
    telemetry_interval_ms=200.0,
)


def test_mix_weights_cover_every_archetype():
    from repro.tenants import WORKLOADS

    assert set(WORKLOAD_MIXES) == set(WORKLOADS)
    for mix in WORKLOAD_MIXES.values():
        assert all(weight > 0 for weight in mix.values())


def test_run_emits_per_tenant_series(reset_sim_counters):
    result = run_tenants(SMALL_CAST, SMALL_RUN)
    assert result.total_ops > 0
    for name in ("alpha", "beta"):
        assert result.counts[name].issued > 0
        assert result.counts[name].failed == 0
    keys = "\n".join(result.timeseries.keys())
    for family in ("tenant_ops_total", "tenant_op_latency_ms_count",
                   "tenant_latency_bucket", "tenant_cache_hits_total"):
        assert f'{family}' in keys
        assert 'tenant="alpha"' in keys and 'tenant="beta"' in keys
    stats = {s.name for s in result.report.tenants}
    assert stats == {"alpha", "beta"}


def test_same_seed_same_hash(reset_sim_counters):
    first = run_tenants(SMALL_CAST, SMALL_RUN)
    reset_sim_counters()
    second = run_tenants(SMALL_CAST, SMALL_RUN)
    assert first.event_hash == second.event_hash
    assert {n: c.issued for n, c in first.counts.items()} == {
        n: c.issued for n, c in second.counts.items()
    }


def _hash_of_run(tagged: bool, reset) -> str:
    """One multi-tenant run with tracing on and telemetry OFF; with
    ``tagged=False`` the clients carry no tenant identity."""
    reset()
    env = Environment()
    workload = MultiTenantWorkload(env, SMALL_CAST, seed=3)
    handle = build_lambdafs(
        env, workload.namespace(),
        deployments=2, vcpus=128.0, seed=3, trace=True,
    )
    drive(env, handle.system.prewarm(1))
    clients = handle.make_clients(workload.total_clients())
    fleets = workload.partition_clients(clients)
    if not tagged:
        for client in clients:
            client.tenant = None
    drive(env, workload.run(fleets, 1_200.0))
    return handle.tracer.event_hash()


def test_tenant_labels_do_not_perturb_event_hash(reset_sim_counters):
    """The acceptance gate: with telemetry off, tagging clients with
    tenant identities (span attrs only) must leave the kernel
    event-sequence hash byte-identical."""
    tagged = _hash_of_run(True, reset_sim_counters)
    untagged = _hash_of_run(False, reset_sim_counters)
    assert tagged == untagged


def test_per_tenant_stage_sums_tile_op_latency(reset_sim_counters):
    from dataclasses import replace

    result = run_tenants(SMALL_CAST, replace(SMALL_RUN, profile=True))
    by_tenant = result.profile.by_tenant()
    assert set(by_tenant) >= {"alpha", "beta"}
    for tenant in ("alpha", "beta"):
        ops = by_tenant[tenant]
        assert ops
        for op in ops:
            assert op.tenant == tenant
            span_ms = op.end_ms - op.start_ms
            assert sum(op.stages.values()) == pytest.approx(
                span_ms, abs=1e-6
            )


def test_governed_compliant_run_hash_matches_ungoverned(
    reset_sim_counters,
):
    """A compliant cast never hits its budget, so attaching the
    governor must not change the event sequence."""
    from dataclasses import replace

    plain = run_tenants(SMALL_CAST, SMALL_RUN)
    reset_sim_counters()
    governed = run_tenants(SMALL_CAST, replace(SMALL_RUN, governed=True))
    assert plain.event_hash == governed.event_hash
    assert governed.throttled == {}


def test_partition_requires_enough_clients():
    env = Environment()
    workload = MultiTenantWorkload(env, SMALL_CAST, seed=0)
    with pytest.raises(ValueError, match="need 4 clients"):
        workload.partition_clients([object(), object()])
