import pytest

from tests.chaos.conftest import reset_sim_counters  # noqa: F401


@pytest.fixture(autouse=True)
def _fresh_sim_counters(reset_sim_counters):
    """Every tenants test starts from counter 1, and monkeypatch
    restores the module-level counters afterwards — so these tests
    neither depend on nor perturb the id sequences other test modules
    observe."""
    yield
