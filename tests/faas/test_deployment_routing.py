"""Unit tests for deployment-level instance selection."""

import random

from repro.faas import FaaSConfig, FaaSPlatform
from repro.sim import Environment


class NullApp:
    def __init__(self, instance):
        self.instance = instance

    def handle(self, request, via):
        yield from self.instance.compute(1.0)
        return request


def make(env, concurrency=2):
    platform = FaaSPlatform(env, FaaSConfig(
        concurrency_level=concurrency,
        cold_start_min_ms=5.0, cold_start_max_ms=5.0, app_init_ms=0.0,
    ), rng=random.Random(0))
    deployment = platform.register_deployment("D", NullApp)
    return platform, deployment


def warm_instances(env, platform, deployment, count):
    instances = [platform.provision(deployment) for _ in range(count)]
    env.run(until=20)
    return instances


def test_pick_available_prefers_least_loaded():
    env = Environment()
    platform, deployment = make(env)
    a, b = warm_instances(env, platform, deployment, 2)
    a.http_in_flight = 1
    assert deployment.pick_available() is b


def test_pick_available_none_when_all_at_limit():
    env = Environment()
    platform, deployment = make(env, concurrency=1)
    a, b = warm_instances(env, platform, deployment, 2)
    a.http_in_flight = 1
    b.http_in_flight = 1
    assert deployment.pick_available() is None
    assert deployment.least_loaded() in (a, b)


def test_least_loaded_empty_deployment():
    env = Environment()
    _platform, deployment = make(env)
    assert deployment.least_loaded() is None
    assert deployment.pick_available() is None


def test_instance_gone_removes_and_notifies():
    env = Environment()
    platform, deployment = make(env)
    (instance,) = warm_instances(env, platform, deployment, 1)
    waited = []

    def waiter(env):
        yield deployment.change_event()
        waited.append(env.now)

    def killer(env):
        yield env.timeout(5)
        instance.terminate()

    env.process(waiter(env))
    env.process(killer(env))
    env.run()
    assert deployment.live_count() == 0
    assert waited == [25.0]  # parked invocations get woken


def test_used_vcpus_tracks_live_instances():
    env = Environment()
    platform, deployment = make(env)
    warm_instances(env, platform, deployment, 2)
    assert platform.used_vcpus() == 2 * platform.config.vcpus_per_instance
    deployment.live_instances()[0].terminate()
    assert platform.used_vcpus() == platform.config.vcpus_per_instance
