"""Tests for FaaS platform presets and fault injection."""

import pytest

from repro.faas import FaaSConfig, FaaSPlatform
from repro.faas.chaos import NameNodeKiller
from repro.faas.presets import aws_lambda, nuclio, openwhisk, preset
from repro.sim import Environment


def test_presets_have_distinct_envelopes():
    ow = openwhisk()
    nc = nuclio()
    al = aws_lambda()
    assert nc.cold_start_max_ms < ow.cold_start_max_ms
    assert al.idle_reclaim_ms < ow.idle_reclaim_ms
    assert nc.idle_reclaim_ms > ow.idle_reclaim_ms


def test_preset_lookup_and_overrides():
    config = preset("nuclio", concurrency_level=8)
    assert config.concurrency_level == 8
    assert config.cold_start_min_ms == 250.0
    with pytest.raises(ValueError):
        preset("knative")


def test_preset_preserves_base_fields():
    base = FaaSConfig(cluster_vcpus=99.0)
    config = openwhisk(base)
    assert config.cluster_vcpus == 99.0


class EchoApp:
    def __init__(self, instance):
        self.instance = instance

    def handle(self, request, via):
        yield from self.instance.compute(1.0)
        return request


def test_killer_terminates_round_robin():
    env = Environment()
    platform = FaaSPlatform(env, FaaSConfig(
        cold_start_min_ms=10.0, cold_start_max_ms=10.0, app_init_ms=0.0,
    ))
    for name in ("A", "B"):
        deployment = platform.register_deployment(name, EchoApp)
        platform.provision(deployment)
    env.run(until=50)  # instances warm

    killer = NameNodeKiller(env, platform, interval_ms=100.0)
    killer.start()
    env.run(until=450)
    killer.stop()

    assert len(killer.kills) == 2  # one instance per deployment existed
    assert {kill.deployment for kill in killer.kills} == {"A", "B"}
    assert platform.total_live_instances() == 0


def test_killer_skips_deployments_with_no_warm_instances():
    env = Environment()
    platform = FaaSPlatform(env, FaaSConfig())
    platform.register_deployment("empty", EchoApp)
    killer = NameNodeKiller(env, platform, interval_ms=50.0)
    killer.start()
    env.run(until=300)
    killer.stop()
    assert killer.kills == []


def test_killer_stop_is_idempotent():
    env = Environment()
    platform = FaaSPlatform(env, FaaSConfig())
    killer = NameNodeKiller(env, platform, interval_ms=50.0)
    killer.start()
    killer.stop()
    killer.stop()


def test_killer_rejects_bad_interval():
    env = Environment()
    platform = FaaSPlatform(env, FaaSConfig())
    with pytest.raises(ValueError):
        NameNodeKiller(env, platform, interval_ms=0.0)
