"""Unit tests for the FaaS platform."""

import random

import pytest

from repro.faas import FaaSConfig, FaaSPlatform
from repro.sim import Environment


class EchoApp:
    """Trivial application: fixed service time, echoes requests."""

    def __init__(self, instance, service_ms=2.0):
        self.instance = instance
        self.service_ms = service_ms
        self.started = False
        self.terminated = False

    def on_start(self):
        self.started = True
        return None

    def on_terminate(self):
        self.terminated = True

    def handle(self, request, via):
        yield from self.instance.compute(self.service_ms)
        return ("echo", request, via)


def make_platform(env, **overrides):
    defaults = dict(
        cluster_vcpus=64.0,
        vcpus_per_instance=8.0,
        concurrency_level=2,
        cold_start_min_ms=100.0,
        cold_start_max_ms=100.0,
        app_init_ms=10.0,
        idle_reclaim_ms=1_000.0,
        reclaim_sweep_ms=100.0,
    )
    defaults.update(overrides)
    platform = FaaSPlatform(env, FaaSConfig(**defaults), rng=random.Random(0))
    return platform


def test_invoke_cold_starts_first_instance():
    env = Environment()
    platform = make_platform(env)
    deployment = platform.register_deployment("NN0", EchoApp)
    results = []

    def client(env):
        response, instance = yield from platform.invoke("NN0", "r1")
        results.append((env.now, response, instance.id))

    env.process(client(env))
    env.run()
    # 100 boot + 10 init + 2 service = 112 ms.
    assert results[0][0] == pytest.approx(112.0)
    assert results[0][1] == ("echo", "r1", "http")
    assert deployment.live_count() == 1
    assert platform.cold_starts == 1


def test_warm_instance_reused():
    env = Environment()
    platform = make_platform(env)
    platform.register_deployment("NN0", EchoApp)
    times = []

    def client(env):
        yield from platform.invoke("NN0", "r1")
        start = env.now
        yield from platform.invoke("NN0", "r2")
        times.append(env.now - start)

    env.process(client(env))
    env.run()
    assert times[0] == pytest.approx(2.0)  # warm path: service only
    assert platform.cold_starts == 1


def test_concurrency_level_triggers_scale_out():
    env = Environment()
    platform = make_platform(env, concurrency_level=1)
    deployment = platform.register_deployment("NN0", EchoApp)

    def client(env, delay):
        yield env.timeout(delay)
        yield from platform.invoke("NN0", "r")

    # Both in flight at once with ConcurrencyLevel=1 => 2 instances.
    env.process(client(env, 0))
    env.process(client(env, 1))
    env.run()
    assert len(deployment.all_instances) == 2


def test_vcpu_cap_blocks_provisioning():
    env = Environment()
    platform = make_platform(env, cluster_vcpus=8.0, concurrency_level=1)
    deployment = platform.register_deployment("NN0", EchoApp)

    def client(env, delay):
        yield env.timeout(delay)
        yield from platform.invoke("NN0", "r")

    env.process(client(env, 0))
    env.process(client(env, 1))
    env.run()
    # Cap allows a single 8-vCPU instance; second request overloads it.
    assert len(deployment.all_instances) == 1


def test_max_instances_per_deployment():
    env = Environment()
    platform = make_platform(env, concurrency_level=1,
                             max_instances_per_deployment=1)
    deployment = platform.register_deployment("NN0", EchoApp)

    def client(env, delay):
        yield env.timeout(delay)
        yield from platform.invoke("NN0", "r")

    for delay in (0, 1, 2):
        env.process(client(env, delay))
    env.run()
    assert len(deployment.all_instances) == 1


def test_idle_reclaim_scales_in():
    env = Environment()
    platform = make_platform(env, idle_reclaim_ms=500.0, reclaim_sweep_ms=50.0)
    deployment = platform.register_deployment("NN0", EchoApp)
    platform.start()

    def client(env):
        yield from platform.invoke("NN0", "r")

    env.process(client(env))
    env.run(until=5_000)
    assert deployment.live_count() == 0
    app = deployment.all_instances[0].app
    assert app.terminated


def test_eviction_frees_capacity_for_other_deployment():
    env = Environment()
    platform = make_platform(env, cluster_vcpus=8.0, allow_eviction=True)
    d_a = platform.register_deployment("A", EchoApp)
    d_b = platform.register_deployment("B", EchoApp)
    results = []

    def client_a(env):
        yield from platform.invoke("A", "ra")

    def client_b(env):
        yield env.timeout(700)  # A has been idle past the eviction guard
        response, _ = yield from platform.invoke("B", "rb")
        results.append(response)

    env.process(client_a(env))
    env.process(client_b(env))
    env.run()
    assert results == [("echo", "rb", "http")]
    assert platform.evictions == 1
    assert d_a.live_count() == 0
    assert d_b.live_count() == 1


def test_no_eviction_when_disabled():
    env = Environment()
    platform = make_platform(env, cluster_vcpus=8.0, allow_eviction=False,
                             concurrency_level=4)
    platform.register_deployment("A", EchoApp)
    d_b = platform.register_deployment("B", EchoApp)
    finished = []

    def client_a(env):
        yield from platform.invoke("A", "ra")

    def client_b(env):
        yield env.timeout(500)
        yield from platform.invoke("B", "rb")
        finished.append(env.now)

    env.process(client_a(env))
    env.process(client_b(env))
    env.run(until=2_000)
    # B has no instance and no capacity: the invocation parks forever.
    assert finished == []
    assert d_b.live_count() == 0


def test_terminate_mid_request_raises():
    env = Environment()
    platform = make_platform(env)
    deployment = platform.register_deployment("NN0", EchoApp)
    errors = []

    def client(env):
        try:
            yield from platform.invoke("NN0", "r")
        except Exception as exc:  # noqa: BLE001
            errors.append(type(exc).__name__)

    def killer(env):
        yield env.timeout(111)  # after warm, during the 2 ms service
        deployment.instances[0].terminate(reason="fault")

    env.process(client(env))
    env.process(killer(env))
    env.run()
    assert errors == ["InstanceTerminated"]


def test_billing_busy_time_tracked():
    env = Environment()
    platform = make_platform(env)
    deployment = platform.register_deployment("NN0", EchoApp)

    def client(env):
        yield from platform.invoke("NN0", "r1")
        yield env.timeout(100)
        yield from platform.invoke("NN0", "r2")

    env.process(client(env))
    env.run()
    instance = deployment.all_instances[0]
    # Two 2 ms requests; the idle gap must not be billed busy.
    assert instance.busy_ms == pytest.approx(4.0)
    assert instance.requests_served == 2


def test_scale_events_recorded():
    env = Environment()
    platform = make_platform(env, idle_reclaim_ms=200.0, reclaim_sweep_ms=50.0)
    platform.register_deployment("NN0", EchoApp)
    platform.start()

    def client(env):
        yield from platform.invoke("NN0", "r")

    env.process(client(env))
    env.run(until=2_000)
    kinds = [event.kind for event in platform.scale_events]
    assert kinds == ["provision", "terminate"]


def test_duplicate_deployment_rejected():
    env = Environment()
    platform = make_platform(env)
    platform.register_deployment("NN0", EchoApp)
    with pytest.raises(ValueError):
        platform.register_deployment("NN0", EchoApp)
