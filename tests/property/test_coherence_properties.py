"""Property-based end-to-end test: λFS never serves stale metadata.

Random sequences of namespace operations are issued through two
clients (whose NameNodes cache independently); after every operation
the responses must agree with a plain dict model of the namespace.
The coherence protocol (INV/ACK before persist) is what makes this
hold — any missed invalidation shows up as a stale stat/ls.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LambdaFS, LambdaFSConfig
from repro.faas import FaaSConfig
from repro.sim import Environment

NAMES = ["a", "b", "c"]
DIRS = ["/d0", "/d1"]

operation = st.one_of(
    st.tuples(st.just("create"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("delete"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("mv"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("stat"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("ls"), st.sampled_from(DIRS), st.just("")),
)


def build_fs(env):
    config = LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(
            cluster_vcpus=32.0, vcpus_per_instance=4.0,
            cold_start_min_ms=10.0, cold_start_max_ms=15.0, app_init_ms=2.0,
        ),
    )
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    fs.install_namespace(DIRS, [])
    return fs


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, min_size=1, max_size=25), st.randoms())
def test_two_client_view_matches_model(ops, rng):
    env = Environment()
    fs = build_fs(env)
    clients = [fs.new_client(fs.new_vm()), fs.new_client(fs.new_vm())]
    model = {directory: set() for directory in DIRS}
    failures = []

    def scenario(env):
        for kind, directory, name in ops:
            client = clients[rng.randrange(2)]
            path = f"{directory}/{name}"
            if kind == "create":
                response = yield from client.create_file(path)
                expected_ok = name not in model[directory]
                if response.ok != expected_ok:
                    failures.append(("create", path, response.ok, expected_ok))
                if response.ok:
                    model[directory].add(name)
            elif kind == "delete":
                response = yield from client.delete(path)
                expected_ok = name in model[directory]
                if response.ok != expected_ok:
                    failures.append(("delete", path, response.ok, expected_ok))
                if response.ok:
                    model[directory].discard(name)
            elif kind == "mv":
                other = DIRS[1 - DIRS.index(directory)]
                response = yield from client.mv(path, f"{other}/{name}")
                expected_ok = (
                    name in model[directory] and name not in model[other]
                )
                if response.ok != expected_ok:
                    failures.append(("mv", path, response.ok, expected_ok))
                if response.ok:
                    model[directory].discard(name)
                    model[other].add(name)
            elif kind == "stat":
                response = yield from client.stat(path)
                expected_ok = name in model[directory]
                if response.ok != expected_ok:
                    failures.append(("stat", path, response.ok, expected_ok))
            else:  # ls
                response = yield from client.ls(directory)
                if sorted(response.value) != sorted(model[directory]):
                    failures.append(
                        ("ls", directory, response.value, sorted(model[directory]))
                    )

    done = env.process(scenario(env))
    env.run(until=done)
    assert failures == []
